#!/usr/bin/env python
"""Render a full audit report, charts included, from one campaign.

Measures the simulated Manhattan marketplace across the evening rush and
prints the one-shot §4/§5 report: supply/demand chart, surge statistics,
the discovered 5-minute clock, EWT sparkline, and jitter findings.

Run:  python examples/audit_report.py
"""

from repro.marketplace import MarketplaceEngine, manhattan_config
from repro.marketplace.types import CarType
from repro.measurement import Fleet, MarketplaceWorld, place_clients
from repro.analysis.report import audit_campaign


def main() -> None:
    config = manhattan_config(jitter_probability=0.25)
    engine = MarketplaceEngine(config, seed=404)
    fleet = Fleet(
        place_clients(config.region),
        car_types=[CarType.UBERX],
        ping_interval_s=5.0,
    )
    print("measuring midtown Manhattan: warm-up to 4pm, "
          "then 2.5 h of 5 s pings...")
    log = fleet.run(
        MarketplaceWorld(engine),
        duration_s=2.5 * 3600.0,
        city="midtown_manhattan",
        warmup_s=16 * 3600.0,
    )
    report = audit_campaign(log, boundary=config.region.boundary)
    print()
    print(report.render())

    # Ground truth check, for the demo's sake: did the audit recover the
    # real clock?  (Real auditors could not do this — we can.)
    print()
    print(f"[ground truth: the engine reprices every "
          f"{config.surge.interval_s:.0f} s at phase "
          f"{config.surge.update_phase_s:.0f}-"
          f"{config.surge.update_phase_s + config.surge.update_band_s:.0f}"
          " s]")


if __name__ == "__main__":
    main()
