#!/usr/bin/env python
"""Driver collusion: withholding supply to induce surge (§8, ref [2]).

The paper closes by warning that a black-box surge algorithm "makes it
vulnerable to exploitation by passengers (as we show), or possibly by
colluding groups of drivers."  This experiment stages that attack on the
simulated marketplace:

1. run the SF morning rush normally (control);
2. re-run it with a cartel of idle drivers signing off together for one
   surge interval, then signing back on once the multiplier spikes;
3. compare the multiplier trajectory and per-driver earnings.

Run:  python examples/driver_collusion.py
"""

import statistics

from repro.marketplace import MarketplaceEngine, sf_config
from repro.marketplace.types import CarType

ATTACK_START_H = 8.0      # mid morning-rush
CARTEL_SIZE = 130         # idle UberX drivers signing off together
WITHHOLD_S = 650.0        # stay dark past two surge updates
OBSERVE_S = 3600.0


def run(colluding: bool, seed: int = 11):
    engine = MarketplaceEngine(sf_config(jitter_probability=0.0),
                               seed=seed)
    engine.run(ATTACK_START_H * 3600.0)
    cartel = []
    if colluding:
        cartel = engine.withhold_supply(CarType.UBERX, CARTEL_SIZE)
    engine.run(WITHHOLD_S)
    if colluding:
        engine.release_supply(cartel)
    mark = len(engine.completed_trips)
    earnings_before = {
        d.driver_id: d.earnings_usd for d in engine.drivers
    }
    engine.run(OBSERVE_S)
    # Compare multipliers over the attack window only (matched
    # intervals between runs), not the whole tail of the day.
    window_end = ATTACK_START_H * 3600.0 + WITHHOLD_S + 1800.0
    mults = [
        m
        for t in engine.truth
        if ATTACK_START_H * 3600.0 <= t.start_s < window_end
        for m in t.multipliers.values()
    ]
    harvest = [
        d.earnings_usd - earnings_before[d.driver_id]
        for d in engine.drivers
        if d.driver_id in set(cartel)
    ]
    trips = engine.completed_trips[mark:]
    return {
        "peak_mult": max(mults),
        "mean_mult": statistics.mean(mults),
        "trips_after": len(trips),
        "mean_trip_mult": (
            statistics.mean(t.surge_multiplier for t in trips)
            if trips else 1.0
        ),
        "cartel_hourly": (
            statistics.mean(harvest) / (OBSERVE_S / 3600.0)
            if harvest else 0.0
        ),
    }


def main() -> None:
    print("control run (no collusion)...")
    control = run(colluding=False)
    print("attack run (cartel of "
          f"{CARTEL_SIZE} drivers withholds supply {WITHHOLD_S:.0f}s)...")
    attack = run(colluding=True)

    print(f"\n{'':24s}{'control':>10s}{'attack':>10s}")
    print(f"{'peak multiplier':24s}{control['peak_mult']:>10.1f}"
          f"{attack['peak_mult']:>10.1f}")
    print(f"{'mean multiplier':24s}{control['mean_mult']:>10.2f}"
          f"{attack['mean_mult']:>10.2f}")
    print(f"{'mean trip multiplier':24s}"
          f"{control['mean_trip_mult']:>10.2f}"
          f"{attack['mean_trip_mult']:>10.2f}")
    print(f"{'cartel member $/hour':24s}{'-':>10s}"
          f"{attack['cartel_hourly']:>10.2f}")

    if attack["peak_mult"] > control["peak_mult"]:
        print("\nThe cartel successfully spiked the multiplier — the "
              "attack the paper warned about works against a supply-"
              "reactive black-box algorithm.")
    else:
        print("\nNo multiplier spike: this market had enough slack to "
              "absorb the withheld supply.")


if __name__ == "__main__":
    main()
