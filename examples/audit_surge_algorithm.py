#!/usr/bin/env python
"""Black-box audit of the surge algorithm (§5), end to end.

Runs a half-day measurement campaign on the downtown-SF marketplace and
then — using only the observation log and the REST API — recovers:

1. the 5-minute update clock (update moments cluster in a tight band);
2. the jitter bug (short per-client reversions to the previous value);
3. the surge-area partition (lock-step multiplier clustering);
4. the supply/demand coupling (cross-correlation at Δt = 0).

Everything printed here is *inferred from observations*; the script never
reads the simulator's internal surge state.

Run:  python examples/audit_surge_algorithm.py   (takes a few minutes)
"""

from collections import Counter

from repro.api import RateLimiter, RestApi
from repro.geo.grid import grid_cover
from repro.marketplace import MarketplaceEngine, sf_config
from repro.marketplace.types import CarType
from repro.measurement import Fleet, MarketplaceWorld, place_clients
from repro.analysis import (
    cross_correlation,
    detect_jitter_events,
    discover_surge_areas,
    estimate_supply_demand,
    interval_multipliers,
    simultaneity_histogram,
    update_moments,
)
from repro.analysis.areas import probe_multipliers
from repro.analysis.correlate import strongest_shift
from repro.analysis.timeseries import interval_means


def main() -> None:
    config = sf_config(jitter_probability=0.25)
    engine = MarketplaceEngine(config, seed=2015)
    world = MarketplaceWorld(engine)
    positions = place_clients(config.region)
    fleet = Fleet(positions, car_types=[CarType.UBERX], ping_interval_s=5.0)

    print(f"measuring downtown SF with {len(positions)} clients, "
          "5 s pings, warm-up to 7am + 5 h campaign...")
    log = fleet.run(world, duration_s=5 * 3600.0, city="downtown_sf",
                    warmup_s=7 * 3600.0)

    # ---- 1. the update clock --------------------------------------
    moments = []
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        moments.extend(update_moments(series))
    if moments:
        lo, hi = min(moments), max(moments)
        clustered = sorted(moments)[len(moments) // 10:-len(moments) // 10]
        print(f"\n[clock] {len(moments)} multiplier changes observed; "
              f"central 80% land {clustered[0]:.0f}-{clustered[-1]:.0f} s "
              f"into the 5-minute interval (full range {lo:.0f}-{hi:.0f} s)")

    # ---- 2. jitter --------------------------------------------------
    events_by_client = {}
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        events = detect_jitter_events(series, client_id=cid)
        if events:
            events_by_client[cid] = events
    all_events = [e for evs in events_by_client.values() for e in evs]
    if all_events:
        stale_match = sum(
            1 for e in all_events if e.matches_previous_interval
        )
        drops = sum(1 for e in all_events if e.lowered_price)
        hist = simultaneity_histogram(events_by_client)
        solo = hist.get(1, 0) / sum(hist.values())
        print(f"[jitter] {len(all_events)} events; "
              f"{100 * stale_match / len(all_events):.0f}% equal the "
              f"previous interval's multiplier; "
              f"{100 * drops / len(all_events):.0f}% lowered the price; "
              f"{100 * solo:.0f}% seen by a single client")
    else:
        print("[jitter] no events observed (quiet market)")

    # ---- 3. surge areas ---------------------------------------------
    api = RestApi(engine, RateLimiter(limit=100_000))
    probes = grid_cover(config.region.boundary,
                        radius_m=600.0).points
    print(f"\n[areas] probing {len(probes)} API points for 12 intervals...")
    series = probe_multipliers(world, api, list(probes), rounds=12)
    components = discover_surge_areas(list(probes), series,
                                      neighbor_distance_m=1300.0)
    meaningful = [c for c in components if len(c) > 1]
    print(f"[areas] discovered {len(meaningful)} surge areas "
          f"(ground truth: {len(config.region.surge_areas)}; singletons "
          f"and never-surging regions may merge or fragment)")

    # ---- 4. supply/demand coupling ----------------------------------
    estimates = estimate_supply_demand(
        log, car_type=CarType.UBERX, boundary=config.region.boundary
    )
    cid = log.client_ids[len(log.client_ids) // 2]
    surge_series = interval_multipliers(
        log.multiplier_series(cid, CarType.UBERX)
    )
    sd_diff = {
        e.interval_index: float(e.supply - e.demand) for e in estimates
    }
    surging_only = {
        i: m for i, m in surge_series.items() if m > 1.0
    }
    if len(surging_only) >= 10:
        points = cross_correlation(surging_only, sd_diff,
                                   max_shift_intervals=6)
        best = strongest_shift(points)
        print(f"\n[coupling] (supply - demand) vs surge: r = "
              f"{best.coefficient:+.2f} at Δt = {best.shift_minutes:+.0f} "
              f"min (p = {best.p_value:.1e})")
    else:
        print("\n[coupling] not enough surging intervals at this client")


if __name__ == "__main__":
    main()
