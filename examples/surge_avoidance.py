#!/usr/bin/env python
"""Surge avoidance (§6): walk one block, pay half.

Stages the paper's motivating scenario: the user stands near Times Square
during a strong local surge while the neighbouring surge areas are
cheaper.  The avoider queries the (rate-limited) REST API for adjacent
areas' multipliers and EWTs, and recommends a pickup the user can walk to
before the car arrives.

Run:  python examples/surge_avoidance.py
"""

from repro.api import RateLimiter, RestApi
from repro.marketplace import MarketplaceEngine, manhattan_config
from repro.marketplace.types import CarType
from repro.strategy import SurgeAvoider


def describe(outcome) -> None:
    print(f"  your multiplier: {outcome.origin_multiplier:.1f}x")
    for option in outcome.options:
        ewt = (
            "no cars" if option.ewt_minutes is None
            else f"EWT {option.ewt_minutes:.1f} min"
        )
        feasible = (
            option.multiplier < outcome.origin_multiplier
            and option.feasible_given
        )
        marker = "->" if (outcome.best is not None
                          and option is outcome.best) else "  "
        print(
            f"  {marker} area {option.area_id}: {option.multiplier:.1f}x, "
            f"{ewt}, walk {option.walk_minutes:.1f} min "
            f"{'(feasible)' if feasible else ''}"
        )
    if outcome.saved:
        print(
            f"  verdict: reserve in area {outcome.best.area_id} and walk — "
            f"save {outcome.reduction:.1f}x "
            f"({100 * outcome.reduction / outcome.origin_multiplier:.0f}% "
            f"of the fare)"
        )
    else:
        print("  verdict: stay put — no cheaper feasible pickup nearby")


def main() -> None:
    config = manhattan_config()
    engine = MarketplaceEngine(config, seed=7)
    print("warming up the marketplace to Friday evening rush...")
    engine.run(18 * 3600.0)

    api = RestApi(engine, RateLimiter(limit=1000))
    avoider = SurgeAvoider(api, config.region)
    times_square = config.region.hotspots[0].location
    my_area = config.region.area_of(times_square)
    print(f"standing at {config.region.hotspots[0].name}, surge area "
          f"{my_area.area_id} ({my_area.name})")

    print("\nscenario 1: localized 2.1x surge around you")
    engine.surge.force_multipliers(
        {my_area.area_id: 2.1}
    )
    describe(avoider.evaluate(times_square, CarType.UBERX))

    print("\nscenario 2: city-wide 1.8x surge (nowhere to run)")
    engine.surge.force_multipliers(
        {a.area_id: 1.8 for a in config.region.surge_areas}
    )
    describe(avoider.evaluate(times_square, CarType.UBERX))

    print("\nscenario 3: no surge at all")
    engine.surge.force_multipliers(
        {a.area_id: 1.0 for a in config.region.surge_areas}
    )
    describe(avoider.evaluate(times_square, CarType.UBERX))

    remaining = api.limiter.remaining("avoider", engine.clock.now)
    print(f"\nAPI budget left this hour: {remaining}/1000 requests")


if __name__ == "__main__":
    main()
