#!/usr/bin/env python
"""Quickstart: measure a simulated marketplace for one rush hour.

Builds the midtown-Manhattan marketplace, covers it with a measurement
fleet (the paper's 43-client apparatus), runs a one-hour campaign through
the morning rush, and prints what the audit sees: supply, demand, EWTs,
and surge multipliers — all recovered purely from `pingClient` responses.

Run:  python examples/quickstart.py
"""

from repro.marketplace import MarketplaceEngine, manhattan_config
from repro.marketplace.types import CarType
from repro.measurement import Fleet, MarketplaceWorld, place_clients
from repro.analysis import (
    estimate_supply_demand,
    interval_multipliers,
    mean_confidence_interval,
)
from repro.analysis.surge_stats import mean_multiplier, surge_fraction


def main() -> None:
    config = manhattan_config()
    engine = MarketplaceEngine(config, seed=42)
    positions = place_clients(config.region)
    print(f"city: {config.region.name}")
    print(f"clients: {len(positions)} on a "
          f"{config.region.client_radius_m:.0f} m visibility grid")

    fleet = Fleet(positions, car_types=[CarType.UBERX],
                  ping_interval_s=30.0)
    world = MarketplaceWorld(engine)
    print("running campaign: warm-up to 7am, then one hour of pings...")
    log = fleet.run(world, duration_s=3600.0, city=config.region.name,
                    warmup_s=7 * 3600.0)
    print(f"rounds recorded: {len(log.rounds)}")

    estimates = estimate_supply_demand(
        log, car_type=CarType.UBERX, boundary=config.region.boundary
    )
    supplies = [float(e.supply) for e in estimates[1:-1]]
    demands = [float(e.demand) for e in estimates[1:-1]]
    s_mean, s_ci = mean_confidence_interval(supplies)
    d_mean, d_ci = mean_confidence_interval(demands)
    print(f"measured UberX supply per 5-min interval: "
          f"{s_mean:.1f} ± {s_ci:.1f} unique cars")
    print(f"measured fulfilled demand per 5-min interval: "
          f"{d_mean:.1f} ± {d_ci:.1f} rides (upper bound)")

    cid = log.client_ids[0]
    series = log.multiplier_series(cid, CarType.UBERX)
    print(f"client {cid}: surge active {100 * surge_fraction(series):.0f}% "
          f"of the hour, mean multiplier {mean_multiplier(series):.2f}")
    clock = interval_multipliers(series)
    print("recovered 5-minute clock values:",
          [clock[i] for i in sorted(clock)])

    ewts = [
        value
        for _, value in log.ewt_series(cid, CarType.UBERX)
        if value is not None
    ]
    e_mean, e_ci = mean_confidence_interval(ewts)
    print(f"EWT at {cid}: {e_mean:.1f} ± {e_ci:.1f} minutes")


if __name__ == "__main__":
    main()
