#!/usr/bin/env python
"""Compare pricing policies: measured surge vs the paper's alternatives.

§5.5 of the paper proposes two fixes for surge's oscillation: smooth the
updates with a weighted moving average, or adopt Sidecar's free market
where drivers set their own prices.  This example runs the same SF
morning under all three rules and reports what riders and drivers each
experience.

Run:  python examples/compare_pricing_policies.py   (a few minutes)
"""

import dataclasses
import statistics

from repro.marketplace import (
    DriverSetPricingEngine,
    MarketplaceEngine,
    sf_config,
)
from repro.marketplace.types import CarType
from repro.analysis.earnings import (
    hourly_variability,
    summarize_earnings,
)


def run(name: str, hours: float = 8.0, seed: int = 7):
    config = sf_config(jitter_probability=0.0)
    if name == "smoothed":
        config = dataclasses.replace(
            config,
            surge=dataclasses.replace(config.surge, smoothing_alpha=0.3),
        )
    engine_cls = (
        DriverSetPricingEngine if name == "driver-set"
        else MarketplaceEngine
    )
    engine = engine_cls(config, seed=seed)
    engine.run(6 * 3600.0)
    probe = config.region.hotspots[0].location
    start = engine.clock.now
    prices = []
    end = start + hours * 3600.0
    while engine.clock.now < end:
        engine.run(300.0)
        prices.append(engine.true_multiplier(probe, CarType.UBERX))
    trips = [
        t for t in engine.completed_trips if t.completed_at >= start
    ]
    earnings = summarize_earnings(engine, window_hours=hours)
    return {
        "rider mean multiplier": statistics.mean(
            t.surge_multiplier for t in trips
        ),
        "price changes/hour": sum(
            1 for a, b in zip(prices, prices[1:]) if a != b
        ) / hours,
        "rides fulfilled": len(trips),
        "driver mean $/h": earnings.mean_hourly_usd,
        "driver gini": earnings.gini,
        "hourly earnings cv": hourly_variability(trips),
    }


def main() -> None:
    results = {}
    for name in ("surge", "smoothed", "driver-set"):
        print(f"running {name} policy...")
        results[name] = run(name)

    metrics = list(next(iter(results.values())))
    width = max(len(m) for m in metrics)
    header = f"{'':{width}}" + "".join(
        f"{name:>12}" for name in results
    )
    print("\n" + header)
    for metric in metrics:
        row = f"{metric:{width}}"
        for name in results:
            value = results[name][metric]
            row += (
                f"{value:12.0f}" if value > 100 else f"{value:12.2f}"
            )
        print(row)

    print(
        "\nthe trade the paper anticipated: smoothing and the free "
        "market both cut repricing churn; surge extracts more from "
        "riders at peak moments."
    )


if __name__ == "__main__":
    main()
