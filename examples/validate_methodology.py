#!/usr/bin/env python
"""Methodology validation against taxi ground truth (§3.5, Fig 4).

Generates a synthetic 2013-style NYC taxi trace, replays it behind the
same `pingClient` interface the marketplace exposes, measures it with a
dense client grid (the paper used 172 clients at 100 m for taxis), and
scores the fleet's supply/demand estimates against the trace's known
values.  The paper reports 97 % of cars and 95 % of deaths captured.

Run:  python examples/validate_methodology.py
"""

from repro.geo.regions import midtown_manhattan
from repro.measurement import Fleet, TaxiWorld, place_clients
from repro.taxi import TaxiGeneratorParams, TaxiReplayServer, TaxiTraceGenerator
from repro.validation import validate_against_taxis


def main() -> None:
    region = midtown_manhattan()
    print("generating synthetic taxi trace (one weekday, 300 cabs)...")
    generator = TaxiTraceGenerator(
        TaxiGeneratorParams(fleet_size=300, days=1.0), seed=2013,
        region=region,
    )
    trips = generator.generate()
    print(f"  {len(trips)} trips")

    replay = TaxiReplayServer(trips, seed=2013)
    positions = place_clients(region, radius_m=100.0)
    print(f"taxi clients: {len(positions)} at 100 m visibility "
          f"(the paper needed 172 — taxis are denser than Ubers)")

    fleet = Fleet(positions, ping_interval_s=10.0)
    print("measuring 3 midday hours...")
    log = fleet.run(
        TaxiWorld(replay), duration_s=3 * 3600.0,
        city="taxi-validation", warmup_s=10 * 3600.0,
    )

    report = validate_against_taxis(log, replay, boundary=region.boundary)
    print(f"\ncars captured:   {100 * report.car_capture:.1f}% "
          f"(paper: 97%)")
    print(f"deaths captured: {100 * report.death_capture:.1f}% "
          f"(paper: 95%)")
    print(f"supply series correlation: {report.supply_correlation:.3f}")
    print(f"demand series correlation: {report.demand_correlation:.3f}")

    print("\nper-interval comparison (first 6 intervals):")
    print("interval  measured/true supply   measured/true deaths")
    for idx, ms, ts, md, td in report.intervals[:6]:
        print(f"  {idx:6d}       {ms:4d} / {ts:4d}           "
              f"{md:4d} / {td:4d}")


if __name__ == "__main__":
    main()
