"""Every example script must at least parse and import-check cleanly."""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
class TestExamples:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(
            str(path), cfile=str(tmp_path / "out.pyc"), doraise=True
        )

    def test_has_main_guard_and_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        guards = [
            node for node in tree.body
            if isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
        ]
        assert guards, f"{path.name} lacks an __main__ guard"

    def test_imports_resolve(self, path):
        """Importing the example's dependencies must not explode."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    module = __import__(
                        node.module, fromlist=[a.name for a in node.names]
                    )
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{path.name}: {node.module}.{alias.name} "
                            "does not exist"
                        )


def test_there_are_at_least_five_examples():
    assert len(EXAMPLES) >= 5
