"""Behavioural tests for supply-side responses to surge (§5.5).

The paper measures two driver responses: a small positive effect on new
cars coming online, and (weak, inconsistent) flocking of idle drivers
toward surging areas.  Both are explicit policies in the engine; these
tests verify the mechanisms directly.
"""

import dataclasses

import pytest

from conftest import toy_config
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


class TestSurgeSupplyIncentive:
    def test_online_target_rises_with_surge(self):
        engine = MarketplaceEngine(toy_config(), seed=1)
        base = engine._target_online(CarType.UBERX)
        engine.surge.force_multipliers(
            {a: 3.0 for a in engine.surge.area_ids}
        )
        boosted = engine._target_online(CarType.UBERX)
        # incentive 0.25 * (3.0 - 1.0) = +50 %.
        assert boosted == pytest.approx(base * 1.5, rel=1e-6)

    def test_no_incentive_no_boost(self):
        config = toy_config()
        config = dataclasses.replace(
            config,
            driver=dataclasses.replace(
                config.driver, surge_supply_incentive=0.0
            ),
        )
        engine = MarketplaceEngine(config, seed=1)
        base = engine._target_online(CarType.UBERX)
        engine.surge.force_multipliers(
            {a: 3.0 for a in engine.surge.area_ids}
        )
        assert engine._target_online(CarType.UBERX) == pytest.approx(base)


class TestFlocking:
    def flock_counts(self, flock_probability: float, seed: int = 3):
        """Count idle drivers whose cruise target lies in the surging
        area after many decision rounds."""
        config = toy_config(surge_noise=0.0, pressure_floor=5.0)
        config = dataclasses.replace(
            config,
            driver=dataclasses.replace(
                config.driver, flock_probability=flock_probability,
                hotspot_attraction=0.0,
            ),
        )
        engine = MarketplaceEngine(config, seed=seed)
        engine.run(600.0)
        # Area 2 surges far above its neighbours.
        engine.surge.force_multipliers({2: 2.5})
        target_area = engine.config.region.area_by_id(2)
        into_surge = 0
        decisions = 0
        for driver in engine.idle_drivers(CarType.UBERX):
            area = engine.area_id_of(driver.location)
            if area == 2 or area is None:
                continue  # already there, or briefly outside the region
            engine._choose_cruise_target(driver)
            decisions += 1
            if driver.cruise_target is not None and target_area.contains(
                driver.cruise_target
            ):
                into_surge += 1
        return into_surge, decisions

    def test_flocking_targets_surging_area(self):
        with_flock, n1 = self.flock_counts(1.0)
        without, n2 = self.flock_counts(0.0)
        assert n1 > 5 and n2 > 5
        assert with_flock / n1 > 0.8  # p=1.0: everyone heads there
        # Without flocking, random wander rarely lands in area 2.
        assert without / n2 < 0.5

    def test_flocking_requires_margin(self):
        """A 0.1 gap is below the paper's 0.2 threshold: no flocking."""
        config = toy_config(surge_noise=0.0, pressure_floor=5.0)
        config = dataclasses.replace(
            config,
            driver=dataclasses.replace(
                config.driver, flock_probability=1.0,
                hotspot_attraction=0.0,
            ),
        )
        engine = MarketplaceEngine(config, seed=5)
        engine.run(600.0)
        engine.surge.force_multipliers({2: 1.1})
        target_area = engine.config.region.area_by_id(2)
        into_surge = 0
        decisions = 0
        for driver in engine.idle_drivers(CarType.UBERX):
            if engine.area_id_of(driver.location) == 2:
                continue
            engine._choose_cruise_target(driver)
            decisions += 1
            if driver.cruise_target is not None and target_area.contains(
                driver.cruise_target
            ):
                into_surge += 1
        assert decisions > 5
        assert into_surge / decisions < 0.5


class TestSessionChurn:
    def test_drivers_leave_after_sessions_expire(self):
        config = toy_config()
        config = dataclasses.replace(
            config,
            driver=dataclasses.replace(
                config.driver, mean_session_s=600.0
            ),
        )
        engine = MarketplaceEngine(config, seed=7)
        initial_tokens = {
            d.session_token for d in engine.idle_drivers(CarType.UBERX)
        }
        engine.run(2 * 3600.0)
        current_tokens = {
            d.session_token for d in engine.idle_drivers(CarType.UBERX)
        }
        # After 2 h with 10-minute sessions, the original identities are
        # essentially all gone (sessions ended or tokens refreshed).
        assert len(initial_tokens & current_tokens) <= 2

    def test_fleet_conservation_over_time(self):
        engine = MarketplaceEngine(toy_config(), seed=9)
        engine.run(3600.0)
        for car_type, count in engine.config.fleet.items():
            online = engine.online_count(car_type)
            offline = len(engine._offline_by_type[car_type])
            assert online + offline == count
