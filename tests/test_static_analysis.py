"""Tier-1 static-analysis gate.

Three layers, strongest always-on first:

1. **Lint** — ``repro.devtools.lint`` (both passes: determinism
   REP001-REP006 and concurrency REP101-REP105) over ``src/`` must
   report zero non-suppressed findings, and every suppression must carry
   a written justification.  Pure stdlib, so this gate always runs.
2. **Injection canaries** — deliberately planting the
   acceptance-criteria bugs must trip the gate: an unseeded
   ``random.random()`` in the engine, a ``math.hypot`` in the distance
   module, and the three historical concurrency bug shapes (an
   unlocked guarded-by attribute — the PR 6 RateLimiter split; a
   weakly-referenced ``create_task`` — the PR 7 RoundAccumulator GC
   bug; a blocking call in ``async def`` service code).  This keeps
   the gate honest: a linter that cannot catch the planted bug would
   pass an empty tree too.
3. **Tool gates** — strict mypy on
   ``repro.marketplace``/``repro.geo``/``repro.parallel``/
   ``repro.service``/``repro.devtools`` and the PR 2 coverage
   configuration.  The bare CI image ships without mypy/coverage, so
   these skip with an explicit reason there and run wherever the tools
   are installed.
"""

import importlib.util
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import (
    FLAG_MATRIX_FILES,
    render_text,
    run_lint,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


# ----------------------------------------------------------------------
# 1. The lint gate proper
# ----------------------------------------------------------------------
def test_source_tree_lints_clean():
    """Zero non-suppressed findings across src/ — the hard gate."""
    result = run_lint([SRC])
    assert result.files_checked > 50  # the walk really found the tree
    assert result.active == [], (
        "determinism lint must pass on src/:\n" + render_text(result)
    )


def test_every_suppression_is_justified():
    """No bare noqa anywhere: each suppression carries its reason.

    (A bare noqa would already fail the gate above via REP000; this
    test states the contract directly and keeps the justification text
    non-trivial.)
    """
    result = run_lint([SRC])
    for finding in result.suppressed:
        assert len(finding.justification) >= 10, (
            f"{finding.path}:{finding.line}: suppression needs a real "
            f"justification, got {finding.justification!r}"
        )


def test_flag_matrix_files_exist():
    """REP006's evidence files are where the linter expects them."""
    for rel in FLAG_MATRIX_FILES:
        assert (REPO / rel).is_file(), rel


# ----------------------------------------------------------------------
# 2. Injection canaries (the acceptance criteria, literally)
# ----------------------------------------------------------------------
def _lint_with_injection(tmp_path, source_rel, injected):
    """Copy one real source file, append a planted bug, lint the copy."""
    original = REPO / source_rel
    target_dir = tmp_path / Path(source_rel).parent.name
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / Path(source_rel).name
    shutil.copy(original, target)
    with target.open("a", encoding="utf-8") as fh:
        fh.write(injected)
    return run_lint([target])


def test_injected_unseeded_random_fails_gate(tmp_path):
    result = _lint_with_injection(
        tmp_path,
        "src/repro/marketplace/engine.py",
        "\n\ndef _injected_entropy():\n"
        "    return random.random()\n",
    )
    assert any(f.code == "REP001" for f in result.active), (
        "planting random.random() in the engine must trip REP001"
    )


def test_injected_hypot_fails_gate(tmp_path):
    result = _lint_with_injection(
        tmp_path,
        "src/repro/geo/latlon.py",
        "\n\ndef _injected_distance(dx: float, dy: float) -> float:\n"
        "    return math.hypot(dx, dy)\n",
    )
    assert any(f.code == "REP004" for f in result.active), (
        "planting math.hypot in the distance module must trip REP004"
    )


def test_injected_wall_clock_fails_gate(tmp_path):
    result = _lint_with_injection(
        tmp_path,
        "src/repro/marketplace/engine.py",
        "\n\nimport time\n\n"
        "def _injected_stamp():\n"
        "    return time.time()\n",
    )
    assert any(f.code == "REP002" for f in result.active)


def test_injected_unlocked_guarded_attr_fails_gate(tmp_path):
    """The PR 6 bug shape: a limiter whose read path forgot the lock."""
    result = _lint_with_injection(
        tmp_path,
        "src/repro/api/ratelimit.py",
        "\n\nclass _InjectedSplitLimiter:\n"
        "    def __init__(self) -> None:\n"
        "        self._histories: Dict[str, Deque[float]] = {}"
        "  # guarded-by: _lock\n"
        "        self._lock = threading.Lock()\n"
        "\n"
        "    def check(self, account: str, now: float) -> None:\n"
        "        with self._lock:\n"
        "            self._histories.setdefault(account, deque())"
        ".append(now)\n"
        "\n"
        "    def remaining(self, account: str) -> int:\n"
        "        return len(self._histories.get(account, ()))\n",
    )
    assert any(f.code == "REP101" for f in result.active), (
        "an unlocked read of a guarded-by attribute must trip REP101"
    )


def test_injected_weak_task_reference_fails_gate(tmp_path):
    """The PR 7 bug shape: a drain task spawned without a strong ref."""
    result = _lint_with_injection(
        tmp_path,
        "src/repro/service/rounds.py",
        "\n\nasync def _injected_schedule(accumulator:"
        " RoundAccumulator) -> None:\n"
        "    loop = asyncio.get_running_loop()\n"
        "    loop.create_task(accumulator._drain())\n",
    )
    assert any(f.code == "REP102" for f in result.active), (
        "a create_task whose result is dropped must trip REP102"
    )


def test_injected_blocking_call_in_async_fails_gate(tmp_path):
    """A time.sleep on the event loop in the service layer."""
    result = _lint_with_injection(
        tmp_path,
        "src/repro/service/rounds.py",
        "\n\nimport time\n\n"
        "async def _injected_wait(window_s: float) -> None:\n"
        "    time.sleep(window_s)\n",
    )
    assert any(f.code == "REP103" for f in result.active), (
        "a blocking sleep inside async service code must trip REP103"
    )


# ----------------------------------------------------------------------
# 3. Tool gates: skip-with-reason on the bare image
# ----------------------------------------------------------------------
def _have(module):
    return importlib.util.find_spec(module) is not None


@pytest.mark.skipif(
    not _have("mypy"),
    reason="mypy not installed on this image; strict typing gate runs "
           "wherever the tool is available (see pyproject [tool.mypy])",
)
def test_mypy_strict_on_contract_packages():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy",
         "-p", "repro.marketplace", "-p", "repro.geo",
         "-p", "repro.parallel", "-p", "repro.service",
         "-p", "repro.devtools"],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(SRC)},
    )
    assert proc.returncode == 0, (
        "strict mypy must pass on repro.marketplace + repro.geo "
        "+ repro.parallel + repro.service + repro.devtools:\n"
        + proc.stdout + proc.stderr
    )


@pytest.mark.skipif(
    not _have("coverage"),
    reason="coverage not installed on this image; the PR 2 coverage "
           "gate (fail_under=90 on repro.marketplace) runs wherever "
           "the tool is available (`make coverage`)",
)
def test_coverage_tool_reads_gate_config():
    proc = subprocess.run(
        [sys.executable, "-m", "coverage", "debug", "config"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "fail_under" in proc.stdout
    assert "90" in proc.stdout


def test_coverage_gate_config_is_committed():
    """The pyproject coverage gate stays intact even without the tool."""
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
        pytest.skip("tomllib unavailable to parse pyproject")
    config = tomllib.loads(
        (REPO / "pyproject.toml").read_text(encoding="utf-8")
    )
    assert config["tool"]["coverage"]["report"]["fail_under"] == 90
    assert "src/repro/marketplace" in (
        config["tool"]["coverage"]["run"]["source"]
    )
    # The mypy strict scope is committed alongside it.
    overrides = config["tool"]["mypy"]["overrides"]
    strict = [o for o in overrides
              if "repro.marketplace.*" in o["module"]]
    assert strict and strict[0]["disallow_untyped_defs"] is True
    assert "repro.geo.*" in strict[0]["module"]
    assert "repro.parallel.*" in strict[0]["module"]
    assert "repro.service.*" in strict[0]["module"]
    assert "repro.devtools.*" in strict[0]["module"]
