"""Tests for grid covers and the two city models."""

import pytest

from repro.geo.grid import coverage_fraction, grid_cover, hex_grid_cover
from repro.geo.latlon import LatLon
from repro.geo.polygon import BoundingBox
from repro.geo.regions import downtown_sf, midtown_manhattan

REGION = BoundingBox(
    south=40.700, west=-74.010, north=40.715, east=-73.993
).to_polygon()


class TestGridCover:
    def test_square_cover_has_full_coverage(self):
        spec = grid_cover(REGION, radius_m=200.0)
        assert spec.client_count > 4
        assert coverage_fraction(spec, samples_per_axis=25) == 1.0

    def test_hex_cover_has_full_coverage(self):
        spec = hex_grid_cover(REGION, radius_m=200.0)
        assert coverage_fraction(spec, samples_per_axis=25) == 1.0

    def test_hex_needs_fewer_clients_than_square(self):
        square = grid_cover(REGION, radius_m=150.0)
        hexagonal = hex_grid_cover(REGION, radius_m=150.0)
        assert hexagonal.client_count < square.client_count

    def test_larger_radius_needs_fewer_clients(self):
        small = grid_cover(REGION, radius_m=150.0)
        large = grid_cover(REGION, radius_m=350.0)
        assert large.client_count < small.client_count

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            grid_cover(REGION, radius_m=0.0)

    def test_all_points_near_region(self):
        spec = grid_cover(REGION, radius_m=200.0)
        for p in spec.points:
            assert (
                REGION.contains(p)
                or REGION.distance_to_boundary_m(p) <= 200.0
            )


class TestCityRegions:
    @pytest.mark.parametrize("region_fn", [midtown_manhattan, downtown_sf])
    def test_surge_areas_partition_region(self, region_fn):
        """Every interior sample point belongs to exactly one surge area."""
        region = region_fn()
        box = region.bounding_box
        hits = 0
        for i in range(15):
            for j in range(15):
                p = LatLon(
                    box.south + (box.north - box.south) * (i + 0.5) / 15,
                    box.west + (box.east - box.west) * (j + 0.5) / 15,
                )
                containing = [
                    a.area_id for a in region.surge_areas if a.contains(p)
                ]
                assert len(containing) <= 1
                if containing:
                    hits += 1
                    assert region.area_of(p).area_id == containing[0]
        # Partition boundaries can swallow individual samples; nearly all
        # interior points must land in exactly one area.
        assert hits >= 0.95 * 15 * 15

    @pytest.mark.parametrize("region_fn", [midtown_manhattan, downtown_sf])
    def test_four_areas_each(self, region_fn):
        assert len(region_fn().surge_areas) == 4

    @pytest.mark.parametrize("region_fn", [midtown_manhattan, downtown_sf])
    def test_hotspots_inside_boundary(self, region_fn):
        region = region_fn()
        for hotspot in region.hotspots:
            assert region.boundary.contains(hotspot.location), hotspot.name

    @pytest.mark.parametrize("region_fn", [midtown_manhattan, downtown_sf])
    def test_adjacency_is_symmetric(self, region_fn):
        adj = region_fn().adjacency()
        for area, neighbors in adj.items():
            for n in neighbors:
                assert area in adj[n]
            assert area not in neighbors  # no self-adjacency

    def test_quadrants_are_mutually_adjacent(self):
        # The quad split around a pivot makes all four areas touch.
        adj = midtown_manhattan().adjacency()
        for neighbors in adj.values():
            assert len(neighbors) == 3

    def test_sf_region_is_larger(self):
        sf = downtown_sf().boundary.area_m2()
        mhtn = midtown_manhattan().boundary.area_m2()
        assert sf > 1.5 * mhtn

    def test_sf_radius_is_larger(self):
        assert downtown_sf().client_radius_m > midtown_manhattan().client_radius_m

    def test_area_by_id_raises_on_unknown(self):
        with pytest.raises(KeyError):
            midtown_manhattan().area_by_id(99)

    def test_area_of_outside_returns_none(self):
        assert midtown_manhattan().area_of(LatLon(0.0, 0.0)) is None
