"""REP105 no-fire fixture: every future is kept and consumed.

Gathering into a list and calling .result(), awaiting
run_in_executor, attaching a done-callback, and returning the future
to the caller all surface worker exceptions.
"""


def map_ordered(executor, fn, tasks):
    futures = [executor.submit(fn, *task) for task in tasks]
    return [future.result() for future in futures]


def submit_with_callback(executor, task, on_done):
    future = executor.submit(task)
    future.add_done_callback(on_done)


async def dispatch_sync(loop, fn, arg):
    return await loop.run_in_executor(None, fn, arg)


def hand_to_caller(pool, task):
    return pool.submit(task)
