"""REP006 no-fire fixture: a branched flag that the matrix exercises.

``use_spatial_index`` is branched on here and appears in the repo's real
flag-matrix tests (tests/test_perf_regression.py /
benchmarks/bench_perf_engine.py), which the linter discovers by walking
up to pyproject.toml.
"""


class ToyEngine:
    def __init__(self, use_spatial_index: bool = True) -> None:
        self.index = object() if use_spatial_index else None
