"""REP006 fixture: a dead engine flag, absent from the flag matrix.

Lives under a ``marketplace/`` directory because REP006 scopes itself to
the marketplace package — engine speed flags are the ones bound by the
four-way bit-identity matrix.
"""


class ToyEngine:
    def __init__(self, use_turbo_mode: bool = True) -> None:
        # Stored but never branched on, and `use_turbo_mode` appears in
        # no flag-matrix test: both halves of REP006 fire.
        self.use_turbo_mode = use_turbo_mode
