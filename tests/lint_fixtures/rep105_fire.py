"""REP105 fire fixture: futures whose exceptions can vanish.

Expected findings: 3 (a discarded executor.submit, a submit result
bound to a name that is never read, and a discarded run_in_executor).
"""

from concurrent.futures import ThreadPoolExecutor


def fire_and_forget(executor: ThreadPoolExecutor, task):
    executor.submit(task)  # fire: a crash in task is silently dropped


def submit_and_drop(pool, tasks):
    for task in tasks:
        future = pool.submit(task)  # fire: `future` never read
    return len(tasks)


async def dispatch_sync(loop, fn, arg):
    loop.run_in_executor(None, fn, arg)  # fire: result never awaited
