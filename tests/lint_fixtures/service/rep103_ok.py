"""REP103 no-fire fixture: async service code using async primitives.

asyncio.sleep / open_connection are fine; blocking calls inside *sync*
helpers are fine too (the dispatcher decides where they run — e.g. via
run_in_executor), and so is blocking work outside any function.
"""

import asyncio
import time


async def poll_window(window_s):
    await asyncio.sleep(window_s)


async def probe_backend(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    writer.close()
    await writer.wait_closed()
    return reader


async def load_config(loop, path):
    return await loop.run_in_executor(None, _read_file, path)


def _read_file(path):
    with open(path) as handle:  # sync helper: allowed to block
        return handle.read()


def warm_up():
    time.sleep(0.001)  # sync module code: not the loop's problem
