"""REP103 fire fixture: blocking primitives inside async service code.

Lives under a ``service/`` directory because REP103 is scoped to the
service layer.  Expected findings: 4 (time.sleep, a socket.* call,
sync open(), and subprocess.run).
"""

import socket
import subprocess
import time


async def poll_window(window_s):
    time.sleep(window_s)  # fire: stalls the whole event loop


async def probe_backend(host, port):
    conn = socket.create_connection((host, port))  # fire: blocking connect
    conn.close()


async def load_config(path):
    with open(path) as handle:  # fire: sync file I/O on the loop
        return handle.read()


async def restart_worker(cmd):
    subprocess.run(cmd, check=True)  # fire: blocks until the child exits
