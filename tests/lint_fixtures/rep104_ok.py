"""REP104 no-fire fixture: the _move_rows disjoint-write contract.

Workers write shared arrays only through indices derived from their
own parameters (including masks computed *from* those indices), build
fresh locals from fancy-index reads, and return results for the
dispatching thread to merge.  Functions never dispatched to the pool
are not checked at all.
"""


class ShardedFleet:
    def __init__(self, pool, lat, lon, state, path_cnt):
        self.pool = pool
        self.lat = lat
        self.lon = lon
        self.state = state
        self.path_cnt = path_cnt
        self.history = []

    def begin_step(self, shards, now, dt):
        tasks = [(rows, now, dt) for rows, _ in shards]
        return self.pool.map_ordered(self.step_rows, tasks)

    def step_rows(self, rows, now, dt):
        lat = self.lat
        state = self.state
        la = lat[rows]  # fancy-index read: a fresh copy, not a view
        la = la + dt
        lat[rows] = la  # param-derived index: disjoint by contract
        arrived = rows[la[: len(rows)] > now]  # mask derived from rows
        state[arrived] = 2
        self._bump(arrived)
        return la.sum()

    def _bump(self, arrived):
        self.path_cnt[arrived] += 1  # derived index, still disjoint

    def merge(self, results):
        # Not a worker: the dispatching thread may mutate freely.
        self.history.append(sum(results))
        self.path_cnt[:] = 0
