"""REP005 fixture: mutable defaults and import-time capture."""

import random
import time

_SHARED_RNG = random.Random(2015)  # import-time RNG: shared across runs
_LOADED_AT = time.time()  # import-time clock capture


def collect(item, bucket=[]):  # one list shared across every call
    bucket.append(item)
    return bucket


def configure(options={}):  # one dict shared across every call
    return options


def stamp(value, at=time.time()):  # frozen at import, invisible to replay
    return (value, at)
