"""Suppression fixture: noqa without a justification does not suppress.

Expect two findings: the original REP004 *and* a REP000 for the bare
suppression.
"""

import math


def scalar_distance(dx, dy):
    return math.hypot(dx, dy)  # repro: noqa=REP004
