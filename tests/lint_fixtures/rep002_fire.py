"""REP002 fixture: wall-clock reads in replayable code."""

import time
from datetime import datetime
from time import perf_counter  # REP002 fires on the import


def stamp_observation(obs):
    obs["at"] = time.time()  # wall clock
    return obs


def label_run():
    return datetime.now().isoformat()  # wall clock


def measure(fn):
    t0 = perf_counter()  # imported wall-clock read
    fn()
    return perf_counter() - t0
