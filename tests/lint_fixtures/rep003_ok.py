"""REP003 no-fire fixture: sorted wrappers, or no RNG/log in scope."""


def relocate_some(drivers, rng):
    moved = []
    for driver in sorted(set(drivers)):  # order pinned before the draw
        if rng.random() < 0.5:
            moved.append(driver)
    return moved


def count_unique(items):
    # Iterating a set is fine here: no RNG draw, no truth/trip append —
    # order cannot leak into behaviour.
    total = 0
    for _ in set(items):
        total += 1
    return total
