"""REP004 fixture: bit-identity-hazard math in distance code."""

import math

import numpy as np


def scalar_distance(dx, dy):
    return math.hypot(dx, dy)  # numpy cannot reproduce bit-for-bit


def stable_sum(values):
    return math.fsum(values)  # extended precision: no numpy mirror


def mixed_sqrt(xs, dx, dy):
    a = np.sqrt(xs)
    b = (dx * dx + dy * dy) ** 0.5  # second sqrt formulation in one module
    return a, b
