"""REP005 no-fire fixture: None defaults, state built per run."""

import random


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def make_rng(seed=2015):  # immutable default, seeded construction inside
    return random.Random(seed)
