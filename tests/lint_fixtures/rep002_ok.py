"""REP002 no-fire fixture: time comes from the simulated clock."""

from datetime import datetime


def stamp_observation(obs, clock):
    obs["at"] = clock.now  # SimClock-derived, replayable
    return obs


def parse_header(text):
    # strptime *parses* a supplied timestamp; it does not read the clock.
    return datetime.strptime(text, "%Y-%m-%d")
