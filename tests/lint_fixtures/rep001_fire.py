"""REP001 fixture: every flavour of unseeded/global randomness."""

import random

import numpy as np
from random import randint  # noqa: F401  (REP001 fires on the import)


def roll():
    return random.random()  # global RNG draw


def pick(items):
    return random.choice(items)  # global RNG draw


def make_rng():
    return random.Random()  # no seed


def numpy_draws():
    a = np.random.rand(3)  # global numpy state
    rng = np.random.default_rng()  # no seed
    return a, rng
