"""Suppression fixture: a noqa matching no finding reports REP000."""


def plain_add(a, b):
    return a + b  # repro: noqa=REP001 -- stale excuse for nothing
