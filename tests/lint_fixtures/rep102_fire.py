"""REP102 fire fixture: weakly-referenced asyncio tasks.

Expected findings: 2 (a bare create_task statement — the exact
RoundAccumulator GC bug — and an ensure_future result assigned to a
local that is never read again).
"""

import asyncio


class Accumulator:
    def __init__(self):
        self._pending = []

    async def submit(self, item):
        self._pending.append(item)
        loop = asyncio.get_running_loop()
        loop.create_task(self._drain())  # fire: result dropped

    async def _drain(self):
        await asyncio.sleep(0)
        self._pending.clear()


async def kick_off(worker):
    task = asyncio.ensure_future(worker())  # fire: `task` never read
    await asyncio.sleep(0)
