"""REP101 no-fire fixture: every guarded access holds its lock.

Covers the full annotation grammar: locked attribute access, a
caller-must-hold-lock method called under the lock (and its own body
checked as if the lock were held), `<event-loop>` confinement from
async methods, an unannotated attribute that needs no discipline, and
__init__'s blanket exemption.
"""

import asyncio
import threading


class DisciplinedLimiter:
    def __init__(self):
        self._histories = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self.limit = 10  # unannotated: no discipline requested

    def check(self, account, now):
        with self._lock:
            self._histories.setdefault(account, []).append(now)

    def remaining(self, account):
        with self._lock:
            return len(self._histories.get(account, []))

    def _prune_locked(self, account):  # guarded-by: _lock
        self._histories.pop(account, None)

    def prune(self, account):
        with self._lock:
            self._prune_locked(account)

    def capacity(self):
        return self.limit


class LoopConfined:
    def __init__(self):
        self._pending = []  # guarded-by: <event-loop>

    async def submit(self, item):
        self._pending.append(item)
        await asyncio.sleep(0)

    async def drain(self):
        batch = self._pending
        self._pending = []
        return batch
