"""REP102 no-fire fixture: every spawned task is kept.

Storing on self (the PR 7 fix shape), awaiting the handle, returning
it, and passing it onward all count as strong references.
"""

import asyncio


class Accumulator:
    def __init__(self):
        self._pending = []
        self._drain_task = None

    async def submit(self, item):
        self._pending.append(item)
        loop = asyncio.get_running_loop()
        self._drain_task = loop.create_task(self._drain())

    async def _drain(self):
        await asyncio.sleep(0)
        self._pending.clear()
        self._drain_task = None


async def run_and_wait(worker):
    task = asyncio.ensure_future(worker())
    await task


async def hand_off(worker, registry):
    registry.append(asyncio.create_task(worker()))


def spawn_for_caller(loop, worker):
    return loop.create_task(worker())
