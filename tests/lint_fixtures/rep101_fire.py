"""REP101 fire fixture: guarded attributes touched outside the lock.

Expected findings: 3 (unlocked read, unlocked mutation, and a call to
a caller-must-hold-lock method without holding it).
"""

import threading


class SplitLimiter:
    """The PR 6 bug shape: check() locks, remaining() forgot to."""

    def __init__(self):
        self._histories = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def check(self, account, now):
        with self._lock:
            self._histories.setdefault(account, []).append(now)

    def remaining(self, account):
        return len(self._histories.get(account, []))  # fire: unlocked read

    def forget(self, account):
        self._histories.pop(account, None)  # fire: unlocked mutation

    def _prune_locked(self, account):  # guarded-by: _lock
        self._histories.pop(account, None)

    def prune(self, account):
        self._prune_locked(account)  # fire: caller does not hold _lock
