"""REP001 no-fire fixture: explicitly seeded plumbing only."""

import random

import numpy as np


def make_engine_rng(seed):
    return random.Random(seed)


def roll(rng):
    return rng.random()  # drawing from a threaded-in instance is fine


def numpy_generator(seed):
    return np.random.default_rng(seed)  # explicit seed
