"""REP004 no-fire fixture: one sqrt-form formulation everywhere."""

import math

import numpy as np


def scalar_distance(dx, dy):
    return math.sqrt(dx * dx + dy * dy)  # the sqrt form numpy mirrors


def array_distance(dx, dy):
    return np.sqrt(dx * dx + dy * dy)  # bit-identical to the scalar form
