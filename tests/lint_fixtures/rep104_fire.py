"""REP104 fire fixture: workers writing shared state out of contract.

``step_rows`` is dispatched via ``pool.map_ordered`` so it (and the
helper it calls) are checked as executor workers.  Expected findings: 4
(whole-array write, constant-index write, shared attribute rebind, and
in-place mutation of a shared container).
"""


class ShardedFleet:
    def __init__(self, pool, lat, state, seen):
        self.pool = pool
        self.lat = lat
        self.state = state
        self.seen = seen

    def begin_step(self, shards, now):
        tasks = [(rows, now) for rows, _ in shards]
        return self.pool.map_ordered(self.step_rows, tasks)

    def step_rows(self, rows, now):
        lat = self.lat
        lat[:] = 0.0  # fire: whole-array write, overlaps every shard
        self.state[0] = 1  # fire: constant index, not derived from rows
        self.last_step = now  # fire: attribute rebind from a worker
        self._note_rows(rows)

    def _note_rows(self, rows):
        self.seen.append(rows)  # fire: shared container mutation
