"""Suppression fixture: a justified noqa silences the finding.

Expect zero active findings and exactly one suppressed REP004.
"""

import math


def resultant_length(sin_sum, cos_sum):
    return math.hypot(sin_sum, cos_sum)  # repro: noqa=REP004 -- no numpy mirror path in this fixture; hypot's accuracy is free
