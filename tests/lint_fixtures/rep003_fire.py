"""REP003 fixture: unordered iteration where order is behaviour."""


def relocate_some(drivers, rng):
    moved = []
    for driver in set(drivers):  # set order feeds the draw order
        if rng.random() < 0.5:
            moved.append(driver)
    return moved


class Recorder:
    def __init__(self):
        self.trip_log = []

    def flush(self, pending):
        for area_id in pending.keys():  # .keys() order becomes row order
            self.trip_log.append(area_id)
