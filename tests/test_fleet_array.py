"""Differential tests: vectorized fleet stepping == scalar stepping.

``use_vectorized_step`` moves all driver movement into numpy
structure-of-arrays code (:mod:`repro.marketplace.fleet_array`) and
lazily syncs the ``Driver`` objects.  Its contract is *bit-identity*:
same seed in, identical marketplace out — ``IntervalTruth`` streams,
trip ledgers, ping replies, the shared RNG's state, and every field of
every ``Driver`` object.  These tests pin that contract:

* randomized-scenario property tests (hypothesis) run the same seed
  through both paths and compare everything;
* unit tests cover the array container itself — row mapping, ring
  buffers, lazy sync, and the nearest-k query against a reference scan.

See ``tests/test_rng_draw_order.py`` for the draw-order half of the
contract and ``tests/test_perf_regression.py`` for the tier-1 flag
matrix on a bigger scenario.
"""

from __future__ import annotations

import math
import sys
import tomllib
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import toy_config
from repro.geo.latlon import LatLon
from repro.api.ping import PingEndpoint
from repro.marketplace.driver import PATH_VECTOR_LEN, Driver, DriverState
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.fleet_array import FleetArray
from repro.marketplace.types import CarType
from repro.measurement.placement import place_clients


def _run_engine(cfg, seed: int, ticks: int, vectorized: bool,
                ping_every: int = 0):
    """One engine run; returns everything the contract compares."""
    engine = MarketplaceEngine(
        cfg, seed=seed, use_vectorized_step=vectorized
    )
    endpoint = PingEndpoint(engine)
    clients = list(place_clients(cfg.region, max_clients=4))
    replies = []
    for t in range(ticks):
        engine.tick()
        if ping_every and t % ping_every == 0:
            for i, loc in enumerate(clients):
                replies.append(endpoint.ping(f"p{i}", loc))
    engine.sync_fleet()
    return engine, replies


def assert_engines_identical(cfg, seed: int, ticks: int,
                             ping_every: int = 0) -> None:
    scalar, replies_s = _run_engine(cfg, seed, ticks, False, ping_every)
    vector, replies_v = _run_engine(cfg, seed, ticks, True, ping_every)
    assert vector.truth == scalar.truth
    assert vector.completed_trips == scalar.completed_trips
    assert replies_v == replies_s
    assert vector.rng.getstate() == scalar.rng.getstate()
    # Driver dataclass equality covers location, state, path deque,
    # session bookkeeping, trip, earnings — the lazy sync must leave
    # the objects indistinguishable from scalar-stepped ones.
    assert vector.drivers == scalar.drivers


# ----------------------------------------------------------------------
# Property tests: randomized scenarios, same seed, both paths.
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    elasticity=st.floats(min_value=0.5, max_value=3.0),
    peak=st.floats(min_value=60.0, max_value=320.0),
    noise=st.floats(min_value=0.0, max_value=0.2),
    ticks=st.integers(min_value=8, max_value=36),
)
def test_vectorized_matches_scalar_randomized(
    seed, elasticity, peak, noise, ticks
):
    cfg = toy_config(
        elasticity=elasticity,
        peak_requests_per_hour=peak,
        surge_noise=noise,
    )
    assert_engines_identical(cfg, seed, ticks)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    jitter=st.sampled_from([0.0, 0.3]),
    ticks=st.integers(min_value=10, max_value=30),
)
def test_vectorized_matches_scalar_with_pings(seed, jitter, ticks):
    """Ping replies (car views, EWTs, multipliers) are bit-identical
    even with the jitter bug active."""
    cfg = toy_config(jitter_probability=jitter)
    assert_engines_identical(cfg, seed, ticks, ping_every=3)


def test_long_run_identical_with_flat_demand_off():
    """A longer single-seed soak through the diurnal profile."""
    cfg = toy_config(flat=False)
    assert_engines_identical(cfg, seed=99, ticks=120, ping_every=10)


# ----------------------------------------------------------------------
# FleetArray unit behaviour
# ----------------------------------------------------------------------
def _tiny_fleet(n: int = 5) -> list:
    return [
        Driver(
            driver_id=i + 1,
            car_type=CarType.UBERX if i % 2 == 0 else CarType.UBERBLACK,
            location=LatLon(40.70 + 0.001 * i, -74.00 + 0.001 * i),
            speed_mps=5.0,
        )
        for i in range(n)
    ]


def test_fleet_array_requires_contiguous_ids():
    drivers = _tiny_fleet(3)
    drivers[2].driver_id = 9
    with pytest.raises(ValueError, match="contiguous"):
        FleetArray(drivers)


def test_rows_mirror_initial_state():
    drivers = _tiny_fleet(4)
    fleet = FleetArray(drivers)
    for i, d in enumerate(drivers):
        assert d._row == i
        assert d._fleet is fleet
        assert fleet.lat[i] == d.location.lat
        assert fleet.lon[i] == d.location.lon
    # Per-type row sets partition all rows.
    rows = sorted(
        r for arr in fleet.rows_by_type.values() for r in arr.tolist()
    )
    assert rows == list(range(len(drivers)))


def test_ring_buffer_matches_deque_semantics():
    """After more appends than PATH_VECTOR_LEN the ring serves the last
    PATH_VECTOR_LEN entries, oldest first — exactly like the deque."""
    import random

    drivers = _tiny_fleet(1)
    fleet = FleetArray(drivers)
    d = drivers[0]
    d.come_online(0.0, 3600.0, random.Random(1))
    fleet.on_online(d, 0.0)
    import numpy as np

    rows = np.array([0])
    expected = [(0.0, d.location.lat, d.location.lon)]
    for k in range(1, PATH_VECTOR_LEN + 3):
        fleet.lat[0] = 40.70 + 0.0001 * k
        fleet.lon[0] = -74.00 - 0.0001 * k
        fleet._ring_append(rows, float(k))
        expected.append((float(k), 40.70 + 0.0001 * k, -74.00 - 0.0001 * k))
    triples = d.path_triples()
    assert triples == tuple(expected[-PATH_VECTOR_LEN:])
    # The deque accessor agrees after a lazy refresh.
    assert tuple((t, p.lat, p.lon) for t, p in d.path_vector()) == triples


def test_ring_reset_after_wrap_starts_fresh():
    """``on_back_idle`` after the ring has wrapped must restart the
    path vector at exactly one point — the wrapped history may not
    leak through the reset."""
    import random

    import numpy as np

    drivers = _tiny_fleet(1)
    fleet = FleetArray(drivers)
    d = drivers[0]
    d.come_online(0.0, 3600.0, random.Random(7))
    fleet.on_online(d, 0.0)
    rows = np.array([0])
    for k in range(1, PATH_VECTOR_LEN + 4):
        fleet.lat[0] = 40.70 + 0.0001 * k
        fleet._ring_append(rows, float(k))
        fleet.stale_loc[0] = True
    assert fleet.path_cnt[0] > PATH_VECTOR_LEN  # ring actually wrapped
    # The real call site: the object resets its deque identity first,
    # then the fleet resets the ring.
    d.come_back_idle(99.0, random.Random(8))
    fleet.on_back_idle(d, 99.0)
    assert fleet.path_cnt[0] == 1
    triples = d.path_triples()
    assert triples == ((99.0, fleet.lat[0], fleet.lon[0]),)
    # And it grows normally from the fresh origin.
    fleet.lat[0] += 0.0005
    fleet._ring_append(rows, 100.0)
    assert len(d.path_triples()) == 2


def test_path_triples_memoized_at_exact_capacity():
    """The ring-version memo: at exactly PATH_VECTOR_LEN appends the
    full window is served oldest-first, repeated reads hit the cache
    (same tuple object), and the next append invalidates it."""
    import random

    import numpy as np

    drivers = _tiny_fleet(1)
    fleet = FleetArray(drivers)
    d = drivers[0]
    d.come_online(0.0, 3600.0, random.Random(11))
    fleet.on_online(d, 0.0)
    rows = np.array([0])
    for k in range(1, PATH_VECTOR_LEN):  # online point + these = LEN
        fleet.lat[0] = 40.70 + 0.0001 * k
        fleet._ring_append(rows, float(k))
    assert fleet.path_cnt[0] == PATH_VECTOR_LEN
    first = d.path_triples()
    assert len(first) == PATH_VECTOR_LEN
    assert first[0][0] == 0.0  # oldest entry still present, first
    assert d.path_triples() is first  # memo hit, no rebuild
    fleet._ring_append(rows, float(PATH_VECTOR_LEN))
    second = d.path_triples()
    assert second is not first
    assert len(second) == PATH_VECTOR_LEN
    assert second[0][0] == 1.0  # oldest evicted by the wrap


def test_headings_all_nan_when_no_ring_has_two_points():
    """A fleet where nobody has moved (every ring has at most one
    point) short-circuits to the all-NaN vector."""
    drivers = _tiny_fleet(3)
    fleet = FleetArray(drivers)
    headings = fleet.headings_deg()
    assert headings.shape == (3,)
    assert all(math.isnan(h) for h in headings)


def test_heading_nan_for_stationary_two_point_ring():
    """Two ring points at the same position (a driver pinged twice
    without moving) is 'stationary', not heading 0."""
    import numpy as np

    drivers = _tiny_fleet(2)
    fleet = FleetArray(drivers)
    fleet._reset_ring(0, 0.0)
    fleet._ring_append(np.array([0]), 1.0)  # no position change
    fleet._reset_ring(1, 0.0)
    fleet.lon[1] += 0.001  # due east
    fleet._ring_append(np.array([1]), 1.0)
    headings = fleet.headings_deg()
    assert math.isnan(headings[0])
    assert abs(headings[1] - 90.0) < 1e-6


def test_nearest_rows_matches_reference_scan():
    import random

    drivers = _tiny_fleet(40)
    rng = random.Random(5)
    for d in drivers:
        d.location = LatLon(
            40.70 + rng.random() * 0.01, -74.00 + rng.random() * 0.01
        )
    fleet = FleetArray(drivers)
    for d in drivers:
        d.come_online(0.0, 3600.0, rng)
        fleet.on_online(d, 0.0)
    query = LatLon(40.705, -74.005)
    for car_type in (CarType.UBERX, CarType.UBERBLACK):
        for k in (1, 3, 8, 100):
            got = fleet.nearest_rows(query, car_type, k)
            ref = sorted(
                (
                    (d.location.fast_distance_m(query), d.driver_id - 1)
                    for d in drivers
                    if d.car_type is car_type and d.is_dispatchable
                ),
            )[:k]
            assert got == ref
    assert fleet.nearest_rows(query, CarType.UBERX, 0) == []


def test_nearest_rows_shared_distance_cache_tracks_movement():
    """The per-location distance memo must invalidate when anything
    moves — a query after a position write sees the new world."""
    drivers = _tiny_fleet(4)
    fleet = FleetArray(drivers)
    import random

    rng = random.Random(2)
    for d in drivers:
        d.come_online(0.0, 3600.0, rng)
        fleet.on_online(d, 0.0)
    query = LatLon(40.7022, -73.9982)
    first = fleet.nearest_rows(query, CarType.UBERX, 1)
    assert first[0][1] == 2  # row 2 starts closest to the query
    # Teleport the other UberX right onto the query point.
    drivers[0].location = LatLon(40.7022, -73.9982)
    second = fleet.nearest_rows(query, CarType.UBERX, 1)
    assert second[0] == (0.0, 0)


def test_lazy_location_sync_roundtrip():
    drivers = _tiny_fleet(2)
    fleet = FleetArray(drivers)
    d = drivers[0]
    # Array-side move marks the row stale; the property refreshes.
    fleet.lat[0] = 40.7099
    fleet.lon[0] = -74.0001
    fleet.stale_loc[0] = True
    loc = d.location
    assert (loc.lat, loc.lon) == (40.7099, -74.0001)
    assert not fleet.stale_loc[0]
    # Object-side write flows back into the arrays.
    d.location = LatLon(40.701, -74.002)
    assert fleet.lat[0] == 40.701
    assert fleet.lon[0] == -74.002


def test_headings_derive_from_last_ring_segment():
    import numpy as np

    drivers = _tiny_fleet(2)
    fleet = FleetArray(drivers)
    # Driver 0: two ring points moving due north => heading ~0 deg.
    fleet.path_cnt[0] = 0
    fleet._reset_ring(0, 0.0)
    fleet.lat[0] += 0.001
    fleet._ring_append(np.array([0]), 1.0)
    headings = fleet.headings_deg()
    assert abs(headings[0]) < 1e-6
    # Driver 1 never moved: no heading.
    assert math.isnan(headings[1])


def test_offline_driver_serves_empty_path():
    import random

    drivers = _tiny_fleet(1)
    fleet = FleetArray(drivers)
    d = drivers[0]
    d.come_online(0.0, 100.0, random.Random(3))
    fleet.on_online(d, 0.0)
    d.go_offline()
    fleet.on_offline(d)
    assert d.path_triples() == ()
    assert d.session_token is None


# ----------------------------------------------------------------------
# Coverage floor (see pyproject [tool.coverage.*])
# ----------------------------------------------------------------------
def test_marketplace_coverage_floor_configured():
    """The marketplace and parallel packages carry a >=90 % coverage
    gate.

    The local image does not ship ``coverage``/``pytest-cov``, so the
    gate cannot run inside tier-1 itself; this test keeps the committed
    configuration honest so ``python -m coverage run -m pytest`` (CI
    installs coverage and runs ``make coverage`` on every push)
    enforces the documented floor.
    """
    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    data = tomllib.loads(pyproject.read_text())
    run_cfg = data["tool"]["coverage"]["run"]
    assert any("marketplace" in s for s in run_cfg["source"])
    assert any("parallel" in s for s in run_cfg["source"])
    assert data["tool"]["coverage"]["report"]["fail_under"] >= 90
