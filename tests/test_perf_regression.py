"""Tier-1 perf regression: the spatial index must stay a speedup.

Drives :func:`bench_perf_engine.run_bench` in ``--quick`` mode — a small
fleet and a handful of ticks, seconds not minutes — and asserts the two
properties the full bench enforces:

* same seed, index on vs off ⇒ identical truth logs and ping replies;
* the indexed campaign is not slower than brute force.

The speedup floor here is deliberately conservative (quick mode runs a
fleet far below the scale where the index shines; the full bench shows
>= 3x): it exists to catch a regression that makes the index *pessimal*,
not to benchmark the machine running CI.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_perf_engine import check_equivalence, run_bench


@pytest.mark.perf
def test_quick_bench_equivalent_and_not_slower():
    result = run_bench(quick=True)
    assert result["truth_equivalent"]
    assert result["speedup"]["campaign_ticks_per_s"] >= 1.05


def test_same_seed_truth_equivalence():
    """The flag must never change behaviour, only speed (fast check)."""
    assert check_equivalence(scale=1, ticks=30, seed=19)
