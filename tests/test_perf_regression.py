"""Tier-1 perf regression: the engine's speed flags must stay speedups.

Drives :func:`bench_perf_engine.run_bench` in ``--quick`` mode — a small
fleet and a handful of ticks, seconds not minutes — and asserts the
properties the full bench enforces across the scalar/vector ×
brute/index × batched/per-client × parallel/serial ×
sharded/serial-state flag matrix (``use_spatial_index`` ×
``use_vectorized_step`` × ``use_batched_ping`` × ``use_parallel_ping``
× ``use_sharded_state``):

* same seed, any flag combination ⇒ identical truth logs, trip ledgers,
  ping replies, and engine RNG state (this is the hard contract; it
  also runs unmarked so plain tier-1 covers it);
* the default configuration (all flags on) is not slower end-to-end
  than the seed's scalar linear-scan engine;
* vectorized stepping is not slower than scalar stepping on engine
  ticks;
* batched round serving is not slower than the per-client vectorized
  ping path;
* orchestrator sweeps are bit-deterministic: the same specs run
  sequentially and through the process pool yield identical truth
  digests.

The speedup floors here are deliberately conservative (quick mode runs a
fleet far below the scale where the optimisations shine; the full bench
shows >= 3x on the PR 1/2 headline ratios and >= 1.5x on the batched
round ratio): they exist to catch a regression that makes a flag
*pessimal*, not to benchmark the machine running CI.  The thread- and
process-parallel floors (``parallel_vs_serial_ping_rounds``,
``sweep_parallel_vs_sequential``) are physical claims about multi-core
machines — the bench JSON records them with ``enforced`` gated on
``cpu_count >= 4``, and this module only asserts them where enforced.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_perf_engine import (
    ALL_COMBOS,
    LEGS,
    PARALLEL_WORKERS,
    check_equivalence,
    run_bench,
)


def test_combo_matrix_is_complete():
    """The equivalence sweep must cover the full five-flag matrix."""
    assert len(ALL_COMBOS) == 32
    assert len({tuple(sorted(c.items())) for c in ALL_COMBOS}) == 32
    for combo in ALL_COMBOS:
        assert set(combo) == {
            "use_spatial_index",
            "use_vectorized_step",
            "use_batched_ping",
            "use_parallel_ping",
            "use_sharded_state",
        }


@pytest.mark.perf
def test_quick_bench_equivalent_and_not_slower():
    result = run_bench(quick=True)
    assert result["truth_equivalent"]
    assert result["sweep_deterministic"]
    speedup = result["speedup"]
    # Defaults must beat the seed end-to-end even at toy scale.
    assert speedup["defaults_vs_seed_campaign"] >= 1.0
    # Vectorized stepping must never be pessimal vs the scalar step.
    assert speedup["vector_vs_scalar_engine_ticks"] >= 1.1
    # Batched round serving (use_batched_ping) must never be pessimal
    # vs per-client vectorized pings.
    assert speedup["batched_vs_perclient_ping_rounds"] >= 1.0
    # Thread/process parallel floors only bind where the bench marks
    # them enforced (>= 4 cores, full mode) — quick mode and small CI
    # boxes record the ratios without asserting physics they can't
    # exhibit.  Still require the numbers to exist and be positive.
    for name in ("parallel_vs_serial_ping_rounds",
                 "sweep_parallel_vs_sequential"):
        bound = result["thresholds"][name]
        assert speedup[name] > 0
        if bound["enforced"]:
            assert speedup[name] >= bound["min"]
    # Every leg must have produced sane throughput numbers.
    for name in LEGS:
        assert result["legs"][name]["engine_ticks_per_s"] > 0
    # The sweep leg must have run all its campaigns successfully.
    assert result["sweep"]["all_ok"]


def test_same_seed_truth_equivalence():
    """No flag combination may change behaviour, only speed.

    Runs the full thirty-two-way ``use_spatial_index`` ×
    ``use_vectorized_step`` × ``use_batched_ping`` ×
    ``use_parallel_ping`` × ``use_sharded_state`` matrix on a small
    scenario: identical ``IntervalTruth`` streams, trip ledgers, ping
    replies, and engine RNG state bit for bit.  Parallel combos force
    three workers and sharded combos three state stripes, both with
    one-element/one-row shard floors, so the threaded shard/merge paths
    really execute (auto-sizing would serve toy work inline).  This is
    the tier-1 enforcement of the contract the vectorized step, the
    batched round-serving path, the sharded parallel pass, and the
    sharded fleet state are built on.  (The {1, 2, 4, 7} shard-count
    sweep is tests/test_sharded_state.py.)
    """
    assert check_equivalence(scale=1, ticks=30, seed=19)


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) < PARALLEL_WORKERS,
    reason="parallel speedup floors need >= 4 cores",
)
def test_parallel_ping_not_pessimal_at_scale():
    """With real cores, forced-worker sharding must not lose to serial.

    A conservative floor (the acceptance target is 1.3x on the full
    bench; quick scale just can't regress below parity with margin for
    noise).
    """
    result = run_bench(quick=True)
    assert result["speedup"]["parallel_vs_serial_ping_rounds"] >= 0.9
