"""Tier-1 perf regression: the engine's speed flags must stay speedups.

Drives :func:`bench_perf_engine.run_bench` in ``--quick`` mode — a small
fleet and a handful of ticks, seconds not minutes — and asserts the
properties the full bench enforces across the scalar/vector ×
brute/index × batched/per-client flag matrix (``use_spatial_index`` ×
``use_vectorized_step`` × ``use_batched_ping``):

* same seed, any flag combination ⇒ identical truth logs, trip ledgers,
  ping replies, and engine RNG state (this is the hard contract; it
  also runs unmarked so plain tier-1 covers it);
* the default configuration (all flags on) is not slower end-to-end
  than the seed's scalar linear-scan engine;
* vectorized stepping is not slower than scalar stepping on engine
  ticks;
* batched round serving is not slower than the per-client vectorized
  ping path.

The speedup floors here are deliberately conservative (quick mode runs a
fleet far below the scale where the optimisations shine; the full bench
shows >= 3x on the PR 1/2 headline ratios and >= 1.5x on the batched
round ratio): they exist to catch a regression that makes a flag
*pessimal*, not to benchmark the machine running CI.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_perf_engine import LEGS, check_equivalence, run_bench


@pytest.mark.perf
def test_quick_bench_equivalent_and_not_slower():
    result = run_bench(quick=True)
    assert result["truth_equivalent"]
    speedup = result["speedup"]
    # Defaults must beat the seed end-to-end even at toy scale.
    assert speedup["defaults_vs_seed_campaign"] >= 1.0
    # Vectorized stepping must never be pessimal vs the scalar step.
    assert speedup["vector_vs_scalar_engine_ticks"] >= 1.1
    # Batched round serving (use_batched_ping) must never be pessimal
    # vs per-client vectorized pings.
    assert speedup["batched_vs_perclient_ping_rounds"] >= 1.0
    # Every leg must have produced sane throughput numbers.
    for name in LEGS:
        assert result["legs"][name]["engine_ticks_per_s"] > 0


def test_same_seed_truth_equivalence():
    """No flag combination may change behaviour, only speed.

    Runs the full eight-way ``use_spatial_index`` ×
    ``use_vectorized_step`` × ``use_batched_ping`` matrix on a small
    scenario: identical ``IntervalTruth`` streams, trip ledgers, ping
    replies, and engine RNG state bit for bit.  This is the tier-1
    enforcement of the contract the vectorized step and the batched
    round-serving path are built on.
    """
    assert check_equivalence(scale=1, ticks=30, seed=19)
