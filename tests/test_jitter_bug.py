"""Tests for the injected jitter bug (the serving-side component)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marketplace.jitter import JitterBug, JitterParams


class TestParams:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            JitterParams(probability=1.5)

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            JitterParams(min_duration_s=30.0, max_duration_s=20.0)
        with pytest.raises(ValueError):
            JitterParams(min_duration_s=0.0)
        with pytest.raises(ValueError):
            JitterParams(min_duration_s=100.0, max_duration_s=400.0)


class TestJitterBug:
    def test_zero_probability_never_stale(self):
        bug = JitterBug(JitterParams(probability=0.0))
        assert not any(
            bug.is_stale("acct", t) for t in range(0, 3000, 5)
        )

    def test_disabled_copy(self):
        bug = JitterBug(JitterParams(probability=0.9), seed=3)
        clean = bug.disabled()
        assert clean.params.probability == 0.0
        assert not any(clean.is_stale("a", t) for t in range(0, 3000, 5))

    def test_deterministic_per_account_interval(self):
        bug1 = JitterBug(JitterParams(probability=0.5), seed=1)
        bug2 = JitterBug(JitterParams(probability=0.5), seed=1)
        pattern1 = [bug1.is_stale("acct7", t) for t in range(0, 6000, 5)]
        pattern2 = [bug2.is_stale("acct7", t) for t in range(0, 6000, 5)]
        assert pattern1 == pattern2

    def test_different_seeds_differ(self):
        p = JitterParams(probability=0.5)
        patterns = [
            tuple(
                JitterBug(p, seed=s).is_stale("acct", t)
                for t in range(0, 30_000, 5)
            )
            for s in (1, 2)
        ]
        assert patterns[0] != patterns[1]

    def test_event_rate_matches_probability(self):
        bug = JitterBug(JitterParams(probability=0.3), seed=9)
        intervals_with_jitter = 0
        n_intervals = 600
        for i in range(n_intervals):
            window = bug._window_for("acct", i)
            if window is not None:
                intervals_with_jitter += 1
        assert intervals_with_jitter / n_intervals == pytest.approx(
            0.3, abs=0.05
        )

    def test_window_duration_in_bounds(self):
        bug = JitterBug(JitterParams(probability=1.0), seed=2)
        for i in range(200):
            window = bug._window_for("acct", i)
            assert window is not None
            start, end = window
            assert 20.0 <= end - start <= 30.0
            assert 0.0 <= start
            assert end <= 300.0

    def test_clients_jitter_independently(self):
        """Windows are independent across clients: mostly single-client.

        (Fig 17's ~90 %-single shape additionally benefits from jitter
        only being *observable* when the multiplier changed; the analysis
        bench measures that.  Here we check raw-window independence at a
        low rate.)
        """
        bug = JitterBug(JitterParams(probability=0.05), seed=4)
        accounts = [f"c{i}" for i in range(43)]
        overlap_counts = []
        for i in range(400):
            windows = {
                a: bug._window_for(a, i) for a in accounts
            }
            live = {a: w for a, w in windows.items() if w is not None}
            for a, (s, e) in live.items():
                n = sum(
                    1
                    for b, (s2, e2) in live.items()
                    if s < e2 and s2 < e
                )
                overlap_counts.append(n)
        assert overlap_counts, "no jitter events at p=0.05 over 400 windows"
        solo = sum(1 for n in overlap_counts if n == 1)
        assert solo / len(overlap_counts) > 0.5
        assert max(overlap_counts) <= 6

    @given(t=st.floats(min_value=0.0, max_value=100_000.0))
    @settings(max_examples=80)
    def test_is_stale_is_pure(self, t):
        bug = JitterBug(JitterParams(probability=0.5), seed=11)
        assert bug.is_stale("x", t) == bug.is_stale("x", t)


class TestIsStaleBoundaries:
    """Window membership is half-open: ``start <= offset < end``."""

    def _bug_and_window(self, interval=0):
        bug = JitterBug(JitterParams(probability=1.0), seed=2)
        window = bug._window_for("acct", interval)
        assert window is not None
        return bug, window

    def test_window_start_is_inclusive(self):
        bug, (start, end) = self._bug_and_window()
        assert bug.is_stale("acct", start)
        assert not bug.is_stale("acct", start - 1e-6)

    def test_window_end_is_exclusive(self):
        bug, (start, end) = self._bug_and_window()
        assert not bug.is_stale("acct", end)
        assert bug.is_stale("acct", end - 1e-6)

    def test_interval_boundary_belongs_to_new_interval(self):
        # At exactly t = i * interval_s the offset is 0.0 and the query
        # must resolve against interval i's window, not i-1's.
        bug = JitterBug(JitterParams(probability=1.0), seed=2)
        interval_s = bug.params.interval_s
        for i in (1, 2, 7):
            window = bug._window_for("acct", i)
            assert window is not None
            expected = window[0] <= 0.0 < window[1]
            assert bug.is_stale("acct", i * interval_s) == expected

    def test_cache_survives_non_monotonic_interval_queries(self):
        # The single-interval memo resets whenever the queried interval
        # changes; jumping backwards and forwards must still reproduce
        # the same windows a fresh instance derives.
        params = JitterParams(probability=1.0)
        bug = JitterBug(params, seed=7)
        expected = {
            i: JitterBug(params, seed=7)._window_for("acct", i)
            for i in (3, 4, 5)
        }
        for i in (5, 3, 5, 4, 3, 5):
            assert bug._window_for("acct", i) == expected[i]

    def test_non_monotonic_is_stale_matches_fresh_instance(self):
        params = JitterParams(probability=0.7)
        interval_s = params.interval_s
        times = [
            5 * interval_s + 25.0,
            2 * interval_s + 25.0,
            5 * interval_s + 25.0,
            2 * interval_s + 290.0,
        ]
        bug = JitterBug(params, seed=13)
        for t in times:
            fresh = JitterBug(params, seed=13)
            assert bug.is_stale("acct", t) == fresh.is_stale("acct", t)
