"""RNG draw-order contract: both step paths consume the stream alike.

The engine owns one shared ``random.Random``; same-seed reproducibility
(and the scalar/vector bit-identity contract) requires every draw to
happen in the *same order* on both paths.  The ordering contract is:

* per tick, drivers are visited per car type in the order of
  ``_online_by_type`` (insertion order of types), and within a type in
  online-list order;
* a wobbling idle driver draws ``gauss, gauss`` then (maybe) one
  relocation-decision ``random``;
* a completing driver draws its re-identification ``getrandbits(64)``
  then one relocation-decision ``random``;
* a driver whose cruise target was reached draws one decision
  ``random``.

The vectorized step moves all *movement* out of the loop but must keep
this exact consumption order (its ordered event loop visits only the
drivers that draw).  These tests record the full call sequence —
method, arguments, and returned value — through both paths and require
them identical, which would catch any latent dependence on dict/set
iteration order as well.
"""

from __future__ import annotations

import random

from conftest import toy_config
from repro.marketplace.engine import MarketplaceEngine


class RecordingRandom(random.Random):
    """A ``random.Random`` that logs every draw the engine makes.

    ``gauss`` internally consumes ``random()``; those inner draws are
    logged too, symmetrically on both paths, so sequence equality still
    holds (and is in fact a stricter check).
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.calls = []

    def random(self):
        value = super().random()
        self.calls.append(("random", value))
        return value

    def gauss(self, mu, sigma):
        value = super().gauss(mu, sigma)
        self.calls.append(("gauss", mu, sigma, value))
        return value

    def getrandbits(self, k):
        value = super().getrandbits(k)
        self.calls.append(("getrandbits", k, value))
        return value


def _recorded_run(vectorized: bool, seed: int, ticks: int):
    engine = MarketplaceEngine(
        toy_config(), seed=seed, use_vectorized_step=vectorized
    )
    # Swap in the recorder carrying the exact post-construction stream
    # state, so construction-time draws (identical by same-seed
    # construction) don't clutter the log.
    recorder = RecordingRandom()
    recorder.setstate(engine.rng.getstate())
    engine.rng = recorder
    for _ in range(ticks):
        engine.tick()
    return recorder.calls, engine


def test_draw_sequence_identical_across_paths():
    """Method-by-method, value-by-value: the vectorized step consumes
    the shared stream exactly like the scalar step."""
    for seed in (0, 7, 123):
        scalar_calls, _ = _recorded_run(False, seed, ticks=25)
        vector_calls, _ = _recorded_run(True, seed, ticks=25)
        assert vector_calls == scalar_calls
        # The run actually exercised the contract: wobble pairs,
        # decision draws, and re-identification tokens all occurred.
        kinds = {c[0] for c in scalar_calls}
        assert kinds >= {"random", "gauss"}


def test_rng_state_equal_after_run():
    """End-state equality is implied by sequence equality but checked
    separately: it is what downstream same-seed consumers observe."""
    _, scalar = _recorded_run(False, seed=42, ticks=40)
    _, vector = _recorded_run(True, seed=42, ticks=40)
    assert vector.rng.getstate() == scalar.rng.getstate()


def test_same_seed_same_path_is_deterministic():
    """Two identical runs draw the identical sequence — there is no
    hidden dependence on set/dict iteration order or id() hashing."""
    for vectorized in (False, True):
        a, _ = _recorded_run(vectorized, seed=5, ticks=20)
        b, _ = _recorded_run(vectorized, seed=5, ticks=20)
        assert a == b


def test_wobble_draws_come_in_pairs():
    """GPS wobbles always draw a (north, east) pair of N(0, 5) offsets,
    so their count in any run is even.  (``random.Random.gauss`` caches
    its Box-Muller partner, so the pair's *uniform* footprint
    alternates — sequence equality in the tests above covers that; here
    we pin the call shape.)"""
    calls, _ = _recorded_run(True, seed=3, ticks=10)
    wobbles = [c for c in calls if c[0] == "gauss" and c[1:3] == (0.0, 5.0)]
    assert wobbles, "expected at least one wobble in 10 ticks"
    assert len(wobbles) % 2 == 0
