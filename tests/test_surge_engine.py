"""Tests for the surge engine: clock, pricing rule, smoothing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marketplace.surge import (
    SURGE_INTERVAL_S,
    SurgeEngine,
    SurgeParams,
    quantize_multiplier,
)


def quiet_params(**kwargs) -> SurgeParams:
    # max_step_up is effectively disabled so each rule is tested in
    # isolation; TestRampCap exercises the cap explicitly.
    defaults = dict(noise_sigma=0.0, gain=3.0, pressure_floor=0.15,
                    ewt_weight=0.0, max_step_up=100.0)
    defaults.update(kwargs)
    return SurgeParams(**defaults)


def make_engine(params=None, areas=(0, 1), seed=0) -> SurgeEngine:
    return SurgeEngine(
        list(areas),
        params if params is not None else quiet_params(),
        random.Random(seed),
    )


def drive_to(engine: SurgeEngine, t_end: float, feed=None, dt: float = 5.0):
    """Advance the engine clock, feeding observations each tick."""
    t = 0.0
    while t < t_end:
        t += dt
        if feed is not None:
            feed(engine, t)
        engine.maybe_update(t)
    return t


class TestQuantize:
    def test_rounds_to_tenths(self):
        assert quantize_multiplier(1.23) == 1.2
        assert quantize_multiplier(1.25) == 1.2 or quantize_multiplier(1.25) == 1.3

    def test_clamps_to_range(self):
        assert quantize_multiplier(0.3) == 1.0
        assert quantize_multiplier(9.0, cap=4.0) == 4.0

    @given(x=st.floats(min_value=-5.0, max_value=20.0))
    @settings(max_examples=80)
    def test_always_in_range_and_on_grid(self, x):
        m = quantize_multiplier(x, cap=5.0)
        assert 1.0 <= m <= 5.0
        assert abs(m * 10.0 - round(m * 10.0)) < 1e-9


class TestParamsValidation:
    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            SurgeParams(cap=0.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            SurgeParams(smoothing_alpha=0.0)
        with pytest.raises(ValueError):
            SurgeParams(smoothing_alpha=1.5)

    def test_rejects_update_outside_interval(self):
        with pytest.raises(ValueError):
            SurgeParams(update_phase_s=280.0, update_band_s=35.0)


class TestClock:
    def test_starts_at_one(self):
        engine = make_engine()
        assert engine.multiplier(0) == 1.0
        assert engine.multipliers() == {0: 1.0, 1: 1.0}

    def test_one_update_per_interval(self):
        engine = make_engine()
        drive_to(engine, 4 * SURGE_INTERVAL_S)
        assert len(engine.updates) == 4
        intervals = [u.interval_index for u in engine.updates]
        assert intervals == sorted(set(intervals))

    def test_update_lands_in_phase_band(self):
        params = quiet_params(update_phase_s=40.0, update_band_s=35.0)
        engine = make_engine(params)
        drive_to(engine, 10 * SURGE_INTERVAL_S)
        for update in engine.updates:
            offset = update.published_at % SURGE_INTERVAL_S
            # 5 s tick granularity adds up to one tick of slack.
            assert 40.0 <= offset <= 40.0 + 35.0 + 5.0

    def test_no_update_before_publish_time(self):
        engine = make_engine()
        assert engine.maybe_update(1.0) is None
        assert engine.updates == []


class TestPricingRule:
    @staticmethod
    def feed_pressure(demand_per_tick: int, supply: int):
        def feed(engine, t):
            for area in engine.area_ids:
                engine.observe_supply(area, supply)
                for _ in range(demand_per_tick):
                    engine.observe_demand(area)
        return feed

    def test_low_pressure_stays_at_one(self):
        engine = make_engine()
        drive_to(engine, 3 * SURGE_INTERVAL_S,
                 feed=self.feed_pressure(0, 30))
        assert engine.multiplier(0) == 1.0

    def test_high_pressure_surges(self):
        engine = make_engine()
        # demand 60/interval over supply 20 -> pressure 3.0.
        drive_to(engine, 2 * SURGE_INTERVAL_S,
                 feed=self.feed_pressure(1, 20))
        assert engine.multiplier(0) > 1.5

    def test_multiplier_monotone_in_demand(self):
        results = []
        for demand_ticks in (0, 1, 2):
            engine = make_engine()
            drive_to(engine, 2 * SURGE_INTERVAL_S,
                     feed=self.feed_pressure(demand_ticks, 20))
            results.append(engine.multiplier(0))
        assert results == sorted(results)
        assert results[0] < results[2]

    def test_cap_respected(self):
        engine = make_engine(quiet_params(cap=2.0, gain=50.0))
        drive_to(engine, 2 * SURGE_INTERVAL_S,
                 feed=self.feed_pressure(3, 5))
        assert engine.multiplier(0) == 2.0

    def test_areas_priced_independently(self):
        engine = make_engine()

        def feed(eng, t):
            eng.observe_supply(0, 20)
            eng.observe_supply(1, 20)
            eng.observe_demand(0, 1)  # only area 0 is strained

        drive_to(engine, 2 * SURGE_INTERVAL_S, feed=feed)
        assert engine.multiplier(0) > engine.multiplier(1)
        assert engine.multiplier(1) == 1.0

    def test_ewt_contributes(self):
        params = quiet_params(ewt_weight=0.5, ewt_floor_minutes=2.0)
        engine = make_engine(params)

        def feed(eng, t):
            eng.observe_supply(0, 100)
            eng.observe_ewt(0, 10.0)  # 8 min over floor
            eng.observe_supply(1, 100)
            eng.observe_ewt(1, 1.0)

        drive_to(engine, 2 * SURGE_INTERVAL_S, feed=feed)
        assert engine.multiplier(0) > engine.multiplier(1)

    def test_previous_multiplier_tracks_one_interval_back(self):
        engine = make_engine()
        drive_to(engine, SURGE_INTERVAL_S, feed=self.feed_pressure(1, 10))
        surged = engine.multiplier(0)
        assert surged > 1.0
        assert engine.previous_multiplier(0) == 1.0
        drive_to_t = engine.updates[-1].published_at + SURGE_INTERVAL_S
        engine.maybe_update(drive_to_t)
        assert engine.previous_multiplier(0) == surged


class TestSmoothing:
    def test_smoothed_engine_moves_slower(self):
        feed = TestPricingRule.feed_pressure(2, 10)
        sharp = make_engine(quiet_params(smoothing_alpha=1.0))
        smooth = make_engine(quiet_params(smoothing_alpha=0.3))
        drive_to(sharp, SURGE_INTERVAL_S, feed=feed)
        drive_to(smooth, SURGE_INTERVAL_S, feed=feed)
        assert smooth.multiplier(0) < sharp.multiplier(0)
        assert smooth.multiplier(0) > 1.0

    def test_smoothed_engine_converges(self):
        feed = TestPricingRule.feed_pressure(2, 10)
        sharp = make_engine(quiet_params(smoothing_alpha=1.0))
        smooth = make_engine(quiet_params(smoothing_alpha=0.5))
        drive_to(sharp, 12 * SURGE_INTERVAL_S, feed=feed)
        drive_to(smooth, 12 * SURGE_INTERVAL_S, feed=feed)
        assert smooth.multiplier(0) == pytest.approx(
            sharp.multiplier(0), abs=0.2
        )


class TestRampCap:
    def test_rise_is_capped_per_update(self):
        engine = make_engine(quiet_params(max_step_up=0.3))
        feed = TestPricingRule.feed_pressure(2, 10)  # huge pressure
        drive_to(engine, SURGE_INTERVAL_S, feed=feed)
        assert engine.multiplier(0) == pytest.approx(1.3)
        drive_to_t = engine.updates[-1].published_at + SURGE_INTERVAL_S
        # keep feeding through the second interval
        t = engine.updates[-1].published_at
        while t < drive_to_t:
            t += 5.0
            feed(engine, t)
            engine.maybe_update(t)
        assert engine.multiplier(0) == pytest.approx(1.6)

    def test_fall_is_not_capped(self):
        engine = make_engine(quiet_params(max_step_up=0.3))
        feed = TestPricingRule.feed_pressure(2, 10)
        drive_to(engine, 4 * SURGE_INTERVAL_S, feed=feed)
        assert engine.multiplier(0) > 1.6
        # Pressure vanishes: the first unfed update consumes the window
        # that still holds fed observations; the one after that sees an
        # empty window and must collapse straight to 1 — no down-ramp.
        t = engine.updates[-1].published_at
        engine.maybe_update(t + SURGE_INTERVAL_S + 100.0)
        t = engine.updates[-1].published_at
        engine.maybe_update(t + SURGE_INTERVAL_S + 100.0)
        assert engine.multiplier(0) == 1.0


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        feed = TestPricingRule.feed_pressure(1, 15)
        a = make_engine(SurgeParams(noise_sigma=0.2), seed=5)
        b = make_engine(SurgeParams(noise_sigma=0.2), seed=5)
        drive_to(a, 6 * SURGE_INTERVAL_S, feed=feed)
        drive_to(b, 6 * SURGE_INTERVAL_S, feed=feed)
        assert [u.multipliers for u in a.updates] == [
            u.multipliers for u in b.updates
        ]

    def test_zero_areas_is_legal_and_inert(self):
        # A region with no surge polygons publishes nothing but must not
        # crash — driver-set-pricing cities have no surge areas at all.
        engine = SurgeEngine([], quiet_params(), random.Random(0))
        assert engine.multipliers() == {}
        for now in range(0, 4 * int(SURGE_INTERVAL_S), 60):
            assert engine.maybe_update(float(now)) is None
        assert engine.updates == []
