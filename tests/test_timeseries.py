"""Tests for shared time-series utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeseries import (
    bin_intervals,
    cdf,
    cdf_at,
    interval_means,
    mean_confidence_interval,
    run_lengths,
)


class TestBinning:
    def test_bins_by_interval(self):
        samples = [(0.0, 1.0), (100.0, 2.0), (300.0, 3.0), (650.0, 4.0)]
        bins = bin_intervals(samples, interval_s=300.0)
        assert bins == {0: [1.0, 2.0], 1: [3.0], 2: [4.0]}

    def test_interval_means(self):
        samples = [(0.0, 1.0), (100.0, 3.0), (300.0, 5.0)]
        assert interval_means(samples) == {0: 2.0, 1: 5.0}

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            bin_intervals([], interval_s=0.0)


class TestCdf:
    def test_values_and_percentages(self):
        xs, ys = cdf([3.0, 1.0, 2.0, 4.0])
        assert list(xs) == [1.0, 2.0, 3.0, 4.0]
        assert list(ys) == [25.0, 50.0, 75.0, 100.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf([])

    def test_cdf_at(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 2.5) == 0.5
        assert cdf_at(values, 0.0) == 0.0
        assert cdf_at(values, 4.0) == 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_cdf_is_monotone(self, values):
        xs, ys = cdf(values)
        assert list(xs) == sorted(xs)
        assert list(ys) == sorted(ys)
        assert ys[-1] == pytest.approx(100.0)


class TestConfidenceInterval:
    def test_single_value(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0 and half == 0.0

    def test_constant_data_zero_width(self):
        mean, half = mean_confidence_interval([2.0] * 50)
        assert mean == 2.0
        assert half == 0.0

    def test_matches_normal_formula(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=400)
        mean, half = mean_confidence_interval(list(data))
        assert mean == pytest.approx(10.0, abs=0.3)
        expected = 1.96 * data.std(ddof=1) / np.sqrt(len(data))
        assert half == pytest.approx(expected, rel=0.01)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=2, max_size=100))
    @settings(max_examples=50)
    def test_mean_within_data_range(self, values):
        mean, half = mean_confidence_interval(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
        assert half >= 0.0


class TestRunLengths:
    def test_extracts_runs(self):
        series = [(0, 1.0), (5, 1.2), (10, 1.2), (15, 1.0), (20, 1.3),
                  (25, 1.0)]
        runs = run_lengths(series, lambda v: v > 1.0)
        assert runs == [(5, 15), (20, 25)]

    def test_open_run_closed_at_end(self):
        series = [(0, 1.0), (5, 1.5), (10, 1.5)]
        runs = run_lengths(series, lambda v: v > 1.0)
        assert runs == [(5, 10)]

    def test_no_runs(self):
        assert run_lengths([(0, 1.0), (5, 1.0)], lambda v: v > 1.0) == []

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            run_lengths([(5, 1.0), (0, 1.0)], lambda v: v > 1.0)

    @given(st.lists(st.floats(min_value=1.0, max_value=3.0),
                    min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_runs_are_disjoint_and_ordered(self, values):
        series = [(float(i * 5), v) for i, v in enumerate(values)]
        runs = run_lengths(series, lambda v: v > 1.5)
        for (s1, e1), (s2, e2) in zip(runs, runs[1:]):
            assert e1 <= s2
        for s, e in runs:
            assert s < e or s == e
