"""Property-based round-trip and invariant tests (hypothesis).

Serialization round-trips guard the campaign-archive workflow: the paper
generated ~1 TB of logs once and analysed them for months — a lossy
(de)serializer would silently corrupt every downstream figure.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.latlon import LatLon
from repro.api.models import CarView, PingReply, TypeStatus
from repro.marketplace.surge import quantize_multiplier
from repro.marketplace.types import CarType
from repro.measurement.records import (
    CampaignLog,
    ClientSample,
    RoundRecord,
)
from repro.taxi.trace import TripRecord, read_trace, write_trace

lat_st = st.floats(min_value=-89.0, max_value=89.0,
                   allow_nan=False, allow_infinity=False)
lon_st = st.floats(min_value=-179.0, max_value=179.0,
                   allow_nan=False, allow_infinity=False)
car_type_st = st.sampled_from(list(CarType))
mult_st = st.floats(min_value=1.0, max_value=5.0).map(
    lambda m: round(m, 1)
)
token_st = st.text(
    alphabet="0123456789abcdef", min_size=4, max_size=16
)


@st.composite
def car_views(draw):
    return CarView(
        car_id=draw(token_st),
        location=LatLon(draw(lat_st), draw(lon_st)),
        path=tuple(
            (float(i * 5), draw(lat_st), draw(lon_st))
            for i in range(draw(st.integers(0, 5)))
        ),
    )


@st.composite
def type_statuses(draw):
    return TypeStatus(
        car_type=draw(car_type_st),
        cars=tuple(draw(st.lists(car_views(), max_size=8))),
        ewt_minutes=draw(
            st.one_of(st.none(), st.floats(min_value=1.0, max_value=60.0))
        ),
        surge_multiplier=draw(mult_st),
    )


class TestApiModelRoundtrips:
    @given(view=car_views())
    @settings(max_examples=50)
    def test_carview(self, view):
        assert CarView.from_json(view.to_json()) == view

    @given(status=type_statuses())
    @settings(max_examples=50)
    def test_typestatus(self, status):
        assert TypeStatus.from_json(status.to_json()) == status

    @given(
        statuses=st.lists(type_statuses(), max_size=4),
        lat=lat_st, lon=lon_st,
        t=st.floats(min_value=0.0, max_value=1e7),
    )
    @settings(max_examples=30)
    def test_pingreply(self, statuses, lat, lon, t):
        reply = PingReply(
            timestamp=t,
            location=LatLon(lat, lon),
            statuses=tuple(statuses),
        )
        assert PingReply.from_json(reply.to_json()) == reply


class TestCampaignLogRoundtrip:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.dictionaries(token_st, st.tuples(lat_st, lon_st),
                                max_size=6),
                mult_st,
            ),
            min_size=1, max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_save_load(self, data, tmp_path_factory):
        log = CampaignLog(
            city="prop",
            client_positions={"c00": LatLon(40.75, -73.99)},
            ping_interval_s=5.0,
        )
        for t, cars, mult in sorted(data, key=lambda d: d[0]):
            log.rounds.append(RoundRecord(
                t=t,
                samples={
                    ("c00", CarType.UBERX): ClientSample(
                        multiplier=mult,
                        ewt_minutes=None,
                        car_ids=tuple(cars),
                    )
                },
                cars=dict(cars),
            ))
        path = tmp_path_factory.mktemp("logs") / "log.jsonl"
        log.save(path)
        restored = CampaignLog.load(path)
        assert len(restored.rounds) == len(log.rounds)
        for a, b in zip(restored.rounds, log.rounds):
            assert a.t == b.t
            assert a.samples == b.samples
            assert a.cars == b.cars


class TestTraceRoundtrip:
    @given(
        trips=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=500),
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=3600),
                lat_st, lon_st, lat_st, lon_st,
            ),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_write_read(self, trips, tmp_path_factory):
        records = [
            TripRecord(
                medallion=m,
                pickup_s=t0,
                dropoff_s=t0 + dur,
                pickup=LatLon(la1, lo1),
                dropoff=LatLon(la2, lo2),
            )
            for m, t0, dur, la1, lo1, la2, lo2 in trips
        ]
        path = tmp_path_factory.mktemp("traces") / "t.csv"
        write_trace(records, path)
        restored = read_trace(path)
        assert len(restored) == len(records)
        for a, b in zip(restored, records):
            assert a.medallion == b.medallion
            # CSV keeps 0.1 s / 1e-6 deg precision.
            assert math.isclose(a.pickup_s, b.pickup_s, abs_tol=0.06)
            assert math.isclose(a.pickup.lat, b.pickup.lat,
                                abs_tol=1e-5)


class TestQuantizeInvariants:
    @given(
        x=st.floats(allow_nan=False, allow_infinity=False,
                    min_value=-100, max_value=100),
        cap=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=80)
    def test_idempotent(self, x, cap):
        once = quantize_multiplier(x, cap)
        assert quantize_multiplier(once, cap) == once

    @given(
        a=st.floats(min_value=-10, max_value=20),
        b=st.floats(min_value=-10, max_value=20),
    )
    @settings(max_examples=80)
    def test_monotone(self, a, b):
        if a <= b:
            assert quantize_multiplier(a) <= quantize_multiplier(b)
