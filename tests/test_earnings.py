"""Tests for the driver-earnings analysis."""

import pytest

from conftest import toy_config
from repro.geo.latlon import LatLon
from repro.marketplace.engine import CompletedTrip, MarketplaceEngine
from repro.marketplace.types import FARE_TABLE, CarType
from repro.analysis.earnings import (
    gini_coefficient,
    hourly_variability,
    summarize_earnings,
    surge_premium,
)

P = LatLon(40.75, -73.99)


def trip(multiplier=1.0, t=1000.0, minutes=10.0,
         car_type=CarType.UBERX, miles=2.0):
    schedule = FARE_TABLE[car_type]
    fare = schedule.fare(miles, minutes, multiplier)
    return CompletedTrip(
        rider_id=1,
        car_type=car_type,
        pickup=P,
        dropoff=P.offset(500, 500),
        requested_at=t - minutes * 60.0,
        completed_at=t,
        surge_multiplier=multiplier,
        fare_usd=fare,
    )


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini_coefficient([5.0] * 10) == pytest.approx(0.0, abs=1e-9)

    def test_single_earner_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) > 0.9

    def test_known_value(self):
        # For [1, 3]: Gini = 1/4.
        assert gini_coefficient([1.0, 3.0]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([])
        with pytest.raises(ValueError):
            gini_coefficient([-1.0])


class TestSurgePremium:
    def test_no_surge_no_premium(self):
        assert surge_premium([trip(1.0), trip(1.0)]) == pytest.approx(0.0)

    def test_doubled_metered_half_premium(self):
        trips = [trip(2.0, minutes=10.0, miles=2.0,
                      car_type=CarType.UBERBLACK)]  # no booking fee
        # Metered doubled: premium = (2x - 1x) / 2x = 0.5.
        assert surge_premium(trips) == pytest.approx(0.5, abs=0.01)

    def test_mixed(self):
        premium = surge_premium([trip(1.0), trip(2.0)])
        assert 0.0 < premium < 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            surge_premium([])


class TestSummarizeEarnings:
    def test_end_to_end(self):
        engine = MarketplaceEngine(
            toy_config(peak_requests_per_hour=250.0), seed=91
        )
        engine.run(2 * 3600.0)
        summary = summarize_earnings(engine, window_hours=2.0)
        assert summary.drivers > 5
        assert summary.total_usd > 0
        assert summary.mean_hourly_usd > 0
        assert 0.0 <= summary.gini <= 1.0
        assert 0.0 <= summary.surge_share < 1.0
        text = summary.describe()
        assert "drivers earned" in text

    def test_validation(self):
        engine = MarketplaceEngine(toy_config(), seed=1)
        with pytest.raises(ValueError):
            summarize_earnings(engine, window_hours=0.0)
        with pytest.raises(ValueError):
            summarize_earnings(engine, window_hours=1.0)  # no trips yet


class TestHourlyVariability:
    def test_constant_hours_zero(self):
        trips = [trip(t=3600.0 * h + 100.0) for h in range(5)]
        assert hourly_variability(trips) == pytest.approx(0.0)

    def test_spiky_hours_positive(self):
        trips = [trip(t=100.0)] * 9 + [trip(t=3700.0)]
        assert hourly_variability(trips) > 0.5

    def test_single_bucket(self):
        assert hourly_variability([trip(t=10.0)]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hourly_variability([])
