"""Tests for the measurement apparatus: records, clients, fleet, placement."""

import pytest

from conftest import toy_config, toy_region
from repro.api.models import PingReply
from repro.api.ping import PingServer
from repro.geo.latlon import LatLon
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.measurement.client import MeasurementClient
from repro.measurement.fleet import Fleet, MarketplaceWorld, TaxiWorld, World
from repro.measurement.placement import place_clients
from repro.measurement.records import CampaignLog, ClientSample, RoundRecord
from repro.taxi.generator import TaxiGeneratorParams, TaxiTraceGenerator
from repro.taxi.replay import TaxiReplayServer


class _ClockServer(PingServer):
    """Minimal ping server: empty replies stamped with a settable clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def ping(self, account_id, location, car_types=None):
        return PingReply(timestamp=self.now, location=location, statuses=())

    def current_time(self):
        return self.now


class _DriftWorld(World):
    """World whose clock simply accumulates the advances it is given —
    the float-drift-prone setting the round scheduler must survive."""

    def __init__(self, start: float = 0.0) -> None:
        self._server = _ClockServer(start)

    @property
    def server(self):
        return self._server

    @property
    def now(self):
        return self._server.now

    def advance(self, dt):
        self._server.now += dt


@pytest.fixture(scope="module")
def mini_campaign():
    """A 15-minute, 5 s-ping campaign on the toy city."""
    engine = MarketplaceEngine(toy_config(), seed=17)
    region = engine.config.region
    fleet = Fleet(
        place_clients(region, radius_m=300.0),
        car_types=[CarType.UBERX],
        ping_interval_s=5.0,
    )
    world = MarketplaceWorld(engine)
    log = fleet.run(world, duration_s=900.0, city="toyville",
                    warmup_s=600.0)
    return engine, fleet, log


class TestPlacement:
    def test_counts_scale_with_radius(self):
        region = toy_region()
        few = place_clients(region, radius_m=400.0)
        many = place_clients(region, radius_m=150.0)
        assert len(many) > len(few) >= 1

    def test_clients_inside_region(self):
        region = toy_region()
        for p in place_clients(region, radius_m=200.0):
            assert region.boundary.contains(p)

    def test_max_clients_subsamples(self):
        region = toy_region()
        capped = place_clients(region, radius_m=150.0, max_clients=5)
        assert len(capped) == 5

    def test_default_radius_from_region(self):
        region = toy_region()  # client_radius_m = 200
        assert place_clients(region) == place_clients(region,
                                                      radius_m=200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            place_clients(toy_region(), radius_m=-1.0)
        with pytest.raises(ValueError):
            place_clients(toy_region(), spacing_factor=0.0)


class TestMeasurementClient:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            MeasurementClient("", LatLon(0, 0))

    def test_walks(self):
        client = MeasurementClient("c1", LatLon(40.75, -73.99))
        client.walk_by(north_m=100.0, east_m=0.0)
        assert client.location.lat > 40.75
        target = LatLon(40.76, -73.98)
        client.walk_to(target)
        assert client.location == target

    def test_observe_digests_reply(self, mini_campaign):
        engine, _, _ = mini_campaign
        from repro.api.ping import PingEndpoint
        client = MeasurementClient(
            "solo", engine.config.region.bounding_box.center,
            [CarType.UBERX],
        )
        samples, cars = client.observe(PingEndpoint(engine))
        assert CarType.UBERX in samples
        sample = samples[CarType.UBERX]
        assert set(sample.car_ids) == set(cars)
        assert client.pings_sent == 1


class TestFleet:
    def test_round_count(self, mini_campaign):
        _, _, log = mini_campaign
        assert len(log.rounds) == 180  # 900 s at 5 s pings

    def test_round_timestamps_monotone(self, mini_campaign):
        _, _, log = mini_campaign
        times = [r.t for r in log.rounds]
        assert times == sorted(times)
        assert times[0] >= 600.0  # warm-up honoured

    def test_all_clients_sampled_every_round(self, mini_campaign):
        _, fleet, log = mini_campaign
        n = len(fleet.clients)
        for record in log.rounds:
            assert len(record.samples) == n

    def test_merged_cars_positions(self, mini_campaign):
        _, _, log = mini_campaign
        region = toy_region()
        seen_any = False
        for record in log.rounds:
            for car_id, (lat, lon) in record.cars.items():
                seen_any = True
                # Cars are inside (or just off) the measurement region.
                p = LatLon(lat, lon)
                assert (
                    region.boundary.contains(p)
                    or region.boundary.distance_to_boundary_m(p) < 2000.0
                )
        assert seen_any

    def test_validation(self):
        with pytest.raises(ValueError):
            Fleet([], ping_interval_s=5.0)
        with pytest.raises(ValueError):
            Fleet([LatLon(0, 0)], ping_interval_s=0.0)
        fleet = Fleet([LatLon(0, 0)])
        engine = MarketplaceEngine(toy_config(), seed=1)
        with pytest.raises(ValueError):
            fleet.run(MarketplaceWorld(engine), duration_s=0.0)

    def test_clients_account_batched_rounds_as_pings(self, mini_campaign):
        # serve_round replies are absorbed as one ping each — the §3.2
        # request-budget accounting must not change with batching.
        _, fleet, log = mini_campaign
        for client in fleet.clients:
            assert client.pings_sent == len(log.rounds)

    def test_taxi_world_runs(self):
        gen = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=40, days=0.5), seed=2
        )
        replay = TaxiReplayServer(gen.generate(), seed=2)
        fleet = Fleet([LatLon(40.755, -73.985)], ping_interval_s=30.0)
        log = fleet.run(TaxiWorld(replay), duration_s=600.0, city="taxi",
                        warmup_s=9 * 3600.0)
        assert len(log.rounds) == 20
        assert log.rounds[0].t >= 9 * 3600.0


class TestRoundScheduling:
    """Regression: `while now < end` with `now += interval` emitted a
    start-dependent round count — e.g. 61 rounds for a (6 s, 0.1 s)
    campaign starting at t=0 but 60 starting at t=600, purely from
    accumulated float representation error."""

    @pytest.mark.parametrize(
        "duration_s,interval_s,expected_rounds",
        [
            (6.0, 0.1, 60),  # the drift-prone pair: old loop gave 61 at t=0
            (2.4, 0.4, 6),  # old loop was start-dependent here too
            (900.0, 5.0, 180),  # float-exact: count unchanged from old loop
        ],
    )
    def test_round_count_independent_of_start(
        self, duration_s, interval_s, expected_rounds
    ):
        for start in (0.0, 600.0, 7 * 86400.0):
            world = _DriftWorld(start)
            fleet = Fleet(
                [LatLon(40.75, -73.99)], ping_interval_s=interval_s
            )
            log = fleet.run(world, duration_s=duration_s)
            assert len(log.rounds) == expected_rounds, f"start={start}"
            assert world.now == pytest.approx(
                start + duration_s, abs=1e-6
            )

    def test_round_times_do_not_accumulate_drift(self):
        # Each advance targets start + k*interval absolutely, so the
        # error in any round's timestamp stays at one rounding, never
        # the sum of k of them.
        start = 600.0
        world = _DriftWorld(start)
        fleet = Fleet([LatLon(40.75, -73.99)], ping_interval_s=0.1)
        log = fleet.run(world, duration_s=6.0)
        for k, record in enumerate(log.rounds):
            assert record.t == pytest.approx(start + k * 0.1, abs=1e-7)


class TestBatchedRoundCampaign:
    def test_campaign_identical_with_and_without_batching(self):
        """A whole campaign — samples, car maps, truth log, RNG state —
        is bit-identical whether rounds are served batched or per
        client (the measurement-side view of the flag contract)."""
        engines, logs = [], []
        for use_batched_ping in (True, False):
            engine = MarketplaceEngine(
                toy_config(jitter_probability=0.3),
                seed=23,
                use_batched_ping=use_batched_ping,
            )
            fleet = Fleet(
                place_clients(engine.config.region, radius_m=300.0),
                car_types=[CarType.UBERX],
                ping_interval_s=5.0,
            )
            log = fleet.run(
                MarketplaceWorld(engine),
                duration_s=300.0,
                city="toyville",
                warmup_s=600.0,
            )
            engines.append(engine)
            logs.append(log)
        batched, per_client = logs
        assert [r.t for r in batched.rounds] == [
            r.t for r in per_client.rounds
        ]
        assert [r.samples for r in batched.rounds] == [
            r.samples for r in per_client.rounds
        ]
        assert [r.cars for r in batched.rounds] == [
            r.cars for r in per_client.rounds
        ]
        assert engines[0].truth == engines[1].truth
        assert engines[0].rng.getstate() == engines[1].rng.getstate()


class TestCampaignLogPersistence:
    def test_save_load_roundtrip(self, mini_campaign, tmp_path):
        _, _, log = mini_campaign
        path = tmp_path / "campaign.jsonl"
        log.save(path)
        restored = CampaignLog.load(path)
        assert restored.city == log.city
        assert restored.ping_interval_s == log.ping_interval_s
        assert restored.client_positions == log.client_positions
        assert len(restored.rounds) == len(log.rounds)
        assert restored.rounds[0].samples == log.rounds[0].samples
        assert restored.rounds[-1].cars == log.rounds[-1].cars

    def test_series_extraction(self, mini_campaign):
        _, fleet, log = mini_campaign
        cid = fleet.clients[0].client_id
        series = log.multiplier_series(cid, CarType.UBERX)
        assert len(series) == len(log.rounds)
        assert all(m >= 1.0 for _, m in series)
        ewt = log.ewt_series(cid, CarType.UBERX)
        assert len(ewt) == len(log.rounds)

    def test_car_types_listing(self, mini_campaign):
        _, _, log = mini_campaign
        assert log.car_types() == [CarType.UBERX]

    def test_duration(self, mini_campaign):
        _, _, log = mini_campaign
        assert log.duration_s == pytest.approx(895.0, abs=5.1)
