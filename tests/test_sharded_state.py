"""Differential tests: sharded fleet-state ticking == serial ticking.

``use_sharded_state`` partitions the tick's own state work — the
movement kernel and the observe census — per spatial stripe
(:mod:`repro.parallel.partition` + ``ShardedFleetState``) and runs the
stripes on a worker pool over the *same* shared fleet arrays.  Its
contract is the engine-wide bit-identity rule: same seed, any shard
count, identical ``IntervalTruth`` streams, trip ledgers, ping replies,
final RNG state, and ``Driver`` objects.  These tests pin that
contract:

* randomized-scenario property tests (hypothesis) run the same seed
  under shard counts {1, 2, 4, 7} — every count forced through the
  pool with a one-row shard floor — and compare everything against the
  unsharded reference;
* forced boundary-crossing kernels: fleets built so movers *must*
  cross stripe borders mid-tick (assignment is by pre-move position)
  step bit-identically under serial and sharded kernels;
* cross-shard dispatch: the differential scenarios are checked to
  actually contain trips whose pickup and dropoff fall in different
  stripes, so the equality above really covers cross-border dispatch
  and movers changing shards, not just intra-stripe traffic;
* unit tests cover :class:`GridPartition` itself — axis choice,
  determinism, out-of-box clamping, disjoint cover — and
  ``resolve_state_shards``.

See ``tests/test_perf_regression.py`` for the thirty-two-way flag
matrix and ``tests/test_golden_campaign.py`` for the golden SF digest
at every shard count.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import toy_config, toy_region
from repro.api.ping import PingEndpoint
from repro.geo.latlon import LatLon
from repro.marketplace.config import ParallelParams
from repro.marketplace.driver import Driver, Trip
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.fleet_array import (
    IDLE,
    FleetArray,
    ShardedFleetState,
)
from repro.marketplace.types import CarType
from repro.measurement.placement import place_clients
from repro.parallel.partition import GridPartition, resolve_state_shards
from repro.parallel.sharding import ShardPool

#: The shard counts the acceptance criteria name: serial reference,
#: even splits, and a prime count that never divides the fleet evenly.
SHARD_COUNTS = (1, 2, 4, 7)


def _sharded_cfg(**kwargs):
    """Toy config with a one-row shard floor so the pool path really
    runs at toy scale (auto-sizing would tick inline)."""
    cfg = toy_config(**kwargs)
    return dataclasses.replace(
        cfg, parallel=ParallelParams(min_shard_rows=1)
    )


def _run_engine(cfg, seed, ticks, shards, ping_every=0):
    """One engine run; returns everything the contract compares."""
    if shards is None:
        engine = MarketplaceEngine(cfg, seed=seed, use_sharded_state=False)
    else:
        engine = MarketplaceEngine(
            cfg, seed=seed, use_sharded_state=True, state_shards=shards
        )
    endpoint = PingEndpoint(engine)
    clients = list(place_clients(cfg.region, max_clients=4))
    requests = [(f"p{i}", loc, None) for i, loc in enumerate(clients)]
    replies = []
    for t in range(ticks):
        engine.tick()
        if ping_every and t % ping_every == 0:
            # Round serving covers the batched path; the direct ping
            # pins the single-ping entry point too.
            replies.extend(endpoint.serve_round(requests))
            replies.append(endpoint.ping("p0", clients[0]))
    engine.sync_fleet()
    return engine, replies


def assert_shard_counts_identical(cfg, seed, ticks, ping_every=0):
    reference, replies_ref = _run_engine(cfg, seed, ticks, None, ping_every)
    for shards in SHARD_COUNTS:
        engine, replies = _run_engine(cfg, seed, ticks, shards, ping_every)
        assert engine.truth == reference.truth, f"truth @ {shards} shards"
        assert engine.completed_trips == reference.completed_trips, (
            f"trips @ {shards} shards"
        )
        assert replies == replies_ref, f"replies @ {shards} shards"
        assert engine.rng.getstate() == reference.rng.getstate(), (
            f"rng @ {shards} shards"
        )
        assert engine.drivers == reference.drivers, (
            f"drivers @ {shards} shards"
        )
    return reference


# ----------------------------------------------------------------------
# Property tests: randomized scenarios, same seed, every shard count.
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    elasticity=st.floats(min_value=0.5, max_value=3.0),
    peak=st.floats(min_value=60.0, max_value=320.0),
    ticks=st.integers(min_value=8, max_value=30),
)
def test_sharded_matches_serial_randomized(seed, elasticity, peak, ticks):
    cfg = _sharded_cfg(
        elasticity=elasticity, peak_requests_per_hour=peak
    )
    assert_shard_counts_identical(cfg, seed, ticks)


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    jitter=st.sampled_from([0.0, 0.3]),
    ticks=st.integers(min_value=10, max_value=24),
)
def test_sharded_matches_serial_with_pings(seed, jitter, ticks):
    """Ping replies (car views, EWTs, multipliers) stay bit-identical
    with the jitter bug active, at every shard count."""
    cfg = _sharded_cfg(jitter_probability=jitter)
    assert_shard_counts_identical(cfg, seed, ticks, ping_every=3)


def test_long_run_crosses_shards_and_dispatches_across_them():
    """A longer soak whose ledger provably exercises cross-shard
    events: trips must exist whose pickup and dropoff stripes differ
    (movers crossing shard borders mid-trip) and whose pickup stripe
    differs under 2 and 7 stripes alike (so no single partition is
    privileged)."""
    cfg = _sharded_cfg(peak_requests_per_hour=220.0)
    reference = assert_shard_counts_identical(
        cfg, seed=99, ticks=150, ping_every=10
    )
    assert reference.completed_trips, "soak produced no trips"
    box = cfg.region.bounding_box
    for shards in (2, 7):
        part = GridPartition(
            box.south, box.north, box.west, box.east, shards
        )

        def stripe(p):
            return int(
                part.assign(np.array([p.lat]), np.array([p.lon]))[0]
            )

        crossing = [
            t
            for t in reference.completed_trips
            if stripe(t.pickup) != stripe(t.dropoff)
        ]
        assert crossing, f"no trip crossed a stripe border ({shards})"


# ----------------------------------------------------------------------
# Forced boundary crossings at the kernel level
# ----------------------------------------------------------------------
def _fleet_pair(n, locate, target):
    """Two identically-built FleetArrays of *n* EN_ROUTE movers: driver
    *i* starts at ``locate(i)`` heading for ``target(i)``."""
    fleets = []
    for _ in range(2):
        drivers = [
            Driver(
                driver_id=i + 1,
                car_type=CarType.UBERX,
                location=locate(i),
                speed_mps=40.0,
            )
            for i in range(n)
        ]
        fleet = FleetArray(drivers)
        for i, d in enumerate(drivers):
            d.planned_offline_at = 1e9
            fleet.on_online(d, 0.0)
            fleet.on_assign(
                d,
                Trip(
                    pickup=target(i),
                    dropoff=locate((i + n // 2) % n),
                    requested_at=0.0,
                    rider_id=i,
                    surge_multiplier=1.0,
                ),
            )
        fleets.append(fleet)
    return fleets


@pytest.mark.parametrize("shards", [2, 4, 7])
def test_forced_boundary_crossing_kernel_bit_identical(shards):
    """Movers aimed straight across stripe borders step bit-identically
    under the sharded kernel: every mover starts in one stripe and
    targets a point in a *different* stripe, so arrivals, EN_ROUTE →
    ON_TRIP promotions, and ON_TRIP completions all happen to rows
    whose shard assignment changes mid-flight."""
    region = toy_region()
    box = region.bounding_box
    part = GridPartition(box.south, box.north, box.west, box.east, shards)
    n = 24
    lon_span = box.east - box.west
    lat_span = box.north - box.south

    def locate(i):
        # Spread across the box, including points *on* interior edges.
        frac = i / (n - 1)
        return LatLon(
            box.south + lat_span * (0.1 + 0.8 * frac),
            box.west + lon_span * frac,
        )

    def target(i):
        # Mirror across the box: always lands in a different stripe
        # for any shard count > 1.
        frac = 1.0 - i / (n - 1)
        return LatLon(
            box.south + lat_span * (0.9 - 0.8 * frac),
            box.west + lon_span * frac,
        )

    serial, sharded_fleet = _fleet_pair(n, locate, target)
    facade = ShardedFleetState(
        sharded_fleet, part, ShardPool(3), min_shard_rows=1
    )
    start = part.assign(serial.lat, serial.lon)
    for tick in range(1, 60):
        now = tick * 5.0
        masks_s = serial.begin_step(now, 5.0)
        masks_p = facade.begin_step(now, 5.0)
        for field in ("wobble", "cruise_arrived", "completed", "idle_like"):
            assert (
                getattr(masks_s, field) == getattr(masks_p, field)
            ).all(), f"{field} diverged at tick {tick}"
        np.testing.assert_array_equal(serial.lat, sharded_fleet.lat)
        np.testing.assert_array_equal(serial.lon, sharded_fleet.lon)
        np.testing.assert_array_equal(serial.state, sharded_fleet.state)
        np.testing.assert_array_equal(
            serial.path_lat, sharded_fleet.path_lat
        )
        np.testing.assert_array_equal(
            serial.path_cnt, sharded_fleet.path_cnt
        )
    # The scenario must actually have moved rows across stripes.
    end = part.assign(serial.lat, serial.lon)
    assert (start != end).any(), "no mover changed stripes"
    assert (serial.state == IDLE).any(), "no trip completed"


def test_sharded_observe_census_matches_serial():
    """The sharded observe helpers (area counts + nearest-to-centroid)
    merge to exactly the serial answers, including the first-occurrence
    argmin tie-break, on a fleet spread across every stripe."""
    cfg = _sharded_cfg()
    serial_engine = MarketplaceEngine(cfg, seed=5, use_sharded_state=False)
    for _ in range(20):
        serial_engine.tick()
    vec = serial_engine._vec
    idle = vec.idle_rows(CarType.UBERX)
    assert idle.size > 10
    box = cfg.region.bounding_box
    cla = serial_engine._centroid_lat
    clo = serial_engine._centroid_lon
    # Serial reference, verbatim from _observe_vec.
    la, lo = vec.lat[idle], vec.lon[idle]
    from repro.geo.latlon import EARTH_RADIUS_M

    x = np.radians(clo[:, None] - lo[None, :]) * np.cos(
        np.radians((la[None, :] + cla[:, None]) / 2.0)
    )
    y = np.radians(cla[:, None] - la[None, :])
    dist = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
    j_ref = np.argmin(dist, axis=1)
    d_ref = dist[np.arange(len(cla)), j_ref]
    codes = serial_engine._vec_area.locate_codes(la, lo)
    counts_ref = np.bincount(codes[codes >= 0], minlength=len(cla))
    for shards in (2, 4, 7):
        facade = ShardedFleetState(
            vec,
            GridPartition(box.south, box.north, box.west, box.east, shards),
            ShardPool(3),
            min_shard_rows=1,
        )
        counts = facade.area_counts(
            idle, serial_engine._vec_area, len(cla)
        )
        np.testing.assert_array_equal(counts, counts_ref)
        j, dmin = facade.nearest_to_centroids(idle, cla, clo)
        np.testing.assert_array_equal(j, j_ref)
        np.testing.assert_array_equal(dmin, d_ref)


def test_nearest_merge_breaks_exact_ties_like_argmin():
    """Two drivers bitwise-equidistant from a centroid but in different
    stripes: the merge must pick the lower column, exactly as
    ``np.argmin``'s first occurrence does."""
    region = toy_region()
    box = region.bounding_box
    mid_lat = (box.south + box.north) / 2.0
    # Mirror twins across the vertical mid-line: same latitude, same
    # |Δlon| from the centroid → bitwise-equal distances.
    c_lon = (box.west + box.east) / 2.0
    off = (box.east - box.west) / 4.0

    def locate(i):
        return LatLon(mid_lat, c_lon + (off if i % 2 else -off))

    drivers = [
        Driver(
            driver_id=i + 1,
            car_type=CarType.UBERX,
            location=locate(i),
            speed_mps=5.0,
        )
        for i in range(4)
    ]
    fleet = FleetArray(drivers)
    for d in drivers:
        d.planned_offline_at = 1e9
        fleet.on_online(d, 0.0)
    part = GridPartition(box.south, box.north, box.west, box.east, 2)
    facade = ShardedFleetState(fleet, part, ShardPool(2), min_shard_rows=1)
    rows = fleet.idle_rows(CarType.UBERX)
    cla = np.array([mid_lat])
    clo = np.array([c_lon])
    # Sanity: the twins really are in different stripes.
    assert len(set(part.assign(fleet.lat[rows], fleet.lon[rows]))) == 2
    j, dmin = facade.nearest_to_centroids(rows, cla, clo)
    # Serial reference.
    from repro.geo.latlon import EARTH_RADIUS_M

    la, lo = fleet.lat[rows], fleet.lon[rows]
    x = np.radians(clo[:, None] - lo[None, :]) * np.cos(
        np.radians((la[None, :] + cla[:, None]) / 2.0)
    )
    y = np.radians(cla[:, None] - la[None, :])
    dist = EARTH_RADIUS_M * np.sqrt(x * x + y * y)
    assert dist[0, 0] == dist[0, 1], "setup must produce a bitwise tie"
    assert j[0] == np.argmin(dist, axis=1)[0] == 0
    assert dmin[0] == dist[0, 0]


# ----------------------------------------------------------------------
# GridPartition / resolve_state_shards units
# ----------------------------------------------------------------------
def test_resolve_state_shards():
    assert resolve_state_shards(1) == 1
    assert resolve_state_shards(7) == 7
    auto = resolve_state_shards(None)
    assert 1 <= auto <= 4
    with pytest.raises(ValueError):
        resolve_state_shards(0)
    with pytest.raises(ValueError):
        resolve_state_shards(-3)


def test_grid_partition_axis_choice():
    # Wide box → longitude stripes; tall box → latitude stripes.
    wide = GridPartition(40.0, 40.01, -74.1, -73.9, 2)
    tall = GridPartition(40.0, 40.2, -74.01, -74.0, 2)
    assert wide.by_lon and not tall.by_lon
    # A point in the west half vs the east half of the wide box.
    lats = np.array([40.005, 40.005])
    lons = np.array([-74.09, -73.91])
    assert list(wide.assign(lats, lons)) == [0, 1]
    # Latitude decides for the tall box.
    lats = np.array([40.01, 40.19])
    lons = np.array([-74.005, -74.005])
    assert list(tall.assign(lats, lons)) == [0, 1]


def test_grid_partition_clamps_out_of_box_points():
    part = GridPartition(40.0, 40.01, -74.0, -73.9, 4)
    lats = np.array([40.005, 40.005, 50.0, 30.0])
    lons = np.array([-75.0, -73.0, -73.95, -73.95])
    codes = part.assign(lats, lons)
    assert codes[0] == 0 and codes[1] == 3
    assert 0 <= codes.min() and codes.max() <= 3


def test_grid_partition_split_is_disjoint_cover_in_order():
    rng = np.random.default_rng(42)
    n = 200
    lats = 40.0 + rng.random(n) * 0.01
    lons = -74.0 + rng.random(n) * 0.1
    rows = np.arange(n, dtype=np.int64)
    for shards in SHARD_COUNTS:
        part = GridPartition(40.0, 40.01, -74.0, -73.9, shards)
        groups = part.split_rows(rows, lats, lons)
        assert all(g.size for g in groups)
        merged = np.concatenate(groups)
        assert merged.size == n
        assert set(merged.tolist()) == set(range(n))
        for g in groups:
            assert (np.diff(g) > 0).all(), "order not preserved"


def test_split_rows_matches_naive_reference_per_shard():
    """Regression for the split refactor (the old tail evaluated
    ``codes == s`` twice per shard): the single-pass mask must return
    the *same row lists* as the obvious two-pass reference — same
    shard order, same rows, same dtype — including shards that come up
    empty and rows clamped in from outside the box."""
    rng = np.random.default_rng(7)
    lats = 40.0 + rng.random(64) * 0.02  # half the points beyond north
    lons = -74.0 + rng.random(64) * 0.1
    lons[:5] = -75.0  # clamp into stripe 0
    rows = np.arange(64, dtype=np.int64)[::3]  # strided, not 0..n
    for shards in SHARD_COUNTS + (13,):
        part = GridPartition(40.0, 40.01, -74.0, -73.9, shards)
        codes = part.assign(lats[rows], lons[rows])
        reference = [
            rows[codes == s]
            for s in range(shards)
            if (codes == s).any()
        ]
        got = part.split_rows(rows, lats, lons)
        assert len(got) == len(reference)
        for g, r in zip(got, reference):
            assert g.dtype == r.dtype
            np.testing.assert_array_equal(g, r)


def test_grid_partition_single_shard_passthrough():
    part = GridPartition(40.0, 40.01, -74.0, -73.9, 1)
    rows = np.array([3, 1, 4], dtype=np.int64)
    lats = np.zeros(10)
    lons = np.zeros(10)
    [only] = part.split_rows(rows, lats, lons)
    assert only is rows
    empty = np.empty(0, dtype=np.int64)
    assert part.split_rows(empty, lats, lons)[0] is empty


def test_grid_partition_rejects_bad_arguments():
    with pytest.raises(ValueError):
        GridPartition(40.0, 40.01, -74.0, -73.9, 0)
    with pytest.raises(ValueError):
        GridPartition(40.01, 40.0, -74.0, -73.9, 2)
    with pytest.raises(ValueError):
        GridPartition(40.0, 40.01, -73.9, -74.0, 2)


def test_engine_shard_count_one_keeps_serial_reference_path():
    """``state_shards=1`` must not even build the facade: the serial
    path stays the semantic reference, not a 1-shard pool tick."""
    cfg = _sharded_cfg()
    engine = MarketplaceEngine(cfg, seed=3, state_shards=1)
    assert engine._sharded is None
    sharded = MarketplaceEngine(cfg, seed=3, state_shards=3)
    assert sharded._sharded is not None
    assert sharded._sharded.partition.shards == 3
    off = MarketplaceEngine(cfg, seed=3, use_sharded_state=False,
                            state_shards=3)
    assert off._sharded is None
    scalar = MarketplaceEngine(cfg, seed=3, use_vectorized_step=False,
                               state_shards=3)
    assert scalar._sharded is None


def test_sharded_state_rejects_bad_min_rows():
    cfg = _sharded_cfg()
    engine = MarketplaceEngine(cfg, seed=3, state_shards=2)
    with pytest.raises(ValueError):
        ShardedFleetState(
            engine._vec,
            engine._sharded.partition,
            ShardPool(2),
            min_shard_rows=0,
        )
