"""Shared fixtures: a small fast city for unit tests, cached campaigns.

Most analysis tests need a marketplace that surges *often* and runs
*fast*; ``toy_config`` builds a compact city (1.4 km box, four quadrant
areas, small fleet, strained demand) that exercises every code path in
seconds.  Session-scoped campaign logs are computed once and shared.
"""

from __future__ import annotations

import random

import pytest

from repro.geo.latlon import LatLon
from repro.geo.polygon import BoundingBox
from repro.geo.regions import CityRegion, Hotspot, _quad_split
from repro.marketplace.config import CityConfig, DriverBehavior
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.jitter import JitterParams
from repro.marketplace.rider import DiurnalProfile
from repro.marketplace.surge import SurgeParams
from repro.marketplace.types import CarType
from repro.measurement.fleet import Fleet, MarketplaceWorld
from repro.measurement.placement import place_clients


def toy_region() -> CityRegion:
    """A ~1.4 km four-area city for fast tests."""
    box = BoundingBox(south=40.700, west=-74.010, north=40.7125,
                      east=-73.9935)
    areas = _quad_split(
        box, LatLon(40.7065, -74.0015),
        names=("sw", "nw", "ne", "se"),
    )
    hotspots = (
        Hotspot("center", LatLon(40.7063, -74.0020), weight=2.0),
        Hotspot("corner", LatLon(40.7100, -73.9970), weight=1.0),
    )
    return CityRegion(
        name="toyville",
        boundary=box.to_polygon(),
        surge_areas=tuple(areas),
        hotspots=hotspots,
        client_radius_m=200.0,
    )


def flat_profile(level: float = 1.0) -> DiurnalProfile:
    """Constant demand/supply level — removes diurnal effects from tests."""
    points = ((0.0, level), (12.0, level))
    return DiurnalProfile(weekday=points, weekend=points)


def toy_config(
    jitter_probability: float = 0.0,
    surge_noise: float = 0.05,
    pressure_floor: float = 0.08,
    peak_requests_per_hour: float = 150.0,
    elasticity: float = 1.8,
    flat: bool = True,
) -> CityConfig:
    """A small strained marketplace that surges frequently."""
    profile = flat_profile(1.0) if flat else None
    return CityConfig(
        region=toy_region(),
        fleet={CarType.UBERX: 70, CarType.UBERBLACK: 12},
        online_fraction=flat_profile(0.4) if flat else flat_profile(0.4),
        demand_profile=profile if profile else flat_profile(1.0),
        peak_requests_per_hour=peak_requests_per_hour,
        type_mix={CarType.UBERX: 20.0, CarType.UBERBLACK: 2.0},
        demand_elasticity=elasticity,
        wait_out_fraction=0.4,
        driver=DriverBehavior(
            speed_mps=5.0,
            mean_session_s=3600.0,
            supply_tau_s=300.0,
            surge_supply_incentive=0.25,
            flock_probability=0.15,
            hotspot_attraction=0.5,
        ),
        surge=SurgeParams(
            gain=2.5,
            pressure_floor=pressure_floor,
            noise_sigma=surge_noise,
            cap=4.0,
        ),
        jitter=JitterParams(probability=jitter_probability),
        start_weekday=0,
    )


@pytest.fixture
def toy_engine() -> MarketplaceEngine:
    return MarketplaceEngine(toy_config(), seed=7)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture(scope="session")
def toy_campaign():
    """A 90-minute UberX campaign on the toy city (computed once).

    Jitter enabled, 5 s pings — rich enough for supply/demand, surge, and
    jitter analyses.
    """
    engine = MarketplaceEngine(toy_config(jitter_probability=0.3), seed=11)
    region = engine.config.region
    fleet = Fleet(
        place_clients(region, radius_m=250.0),
        car_types=[CarType.UBERX],
        ping_interval_s=5.0,
    )
    world = MarketplaceWorld(engine)
    log = fleet.run(world, duration_s=5400.0, city="toyville",
                    warmup_s=1800.0)
    return engine, log
