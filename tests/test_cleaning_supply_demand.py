"""Tests for track building, cleaning, death detection, supply/demand."""

import pytest

from repro.geo.latlon import LatLon
from repro.geo.polygon import BoundingBox
from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog, ClientSample, RoundRecord
from repro.analysis.cleaning import (
    build_tracks,
    detect_deaths,
    filter_short_lived,
)
from repro.analysis.supply_demand import estimate_supply_demand

BOX = BoundingBox(south=40.700, west=-74.010, north=40.712, east=-73.994)
BOUNDARY = BOX.to_polygon()
CENTER = BOX.center


def synthetic_log(rounds):
    """Build a CampaignLog from [(t, {car_id: (lat, lon)})] rounds.

    One client, UberX only; the sample lists every car.
    """
    log = CampaignLog(
        city="synthetic",
        client_positions={"c00": CENTER},
        ping_interval_s=5.0,
    )
    for t, cars in rounds:
        log.rounds.append(
            RoundRecord(
                t=t,
                samples={
                    ("c00", CarType.UBERX): ClientSample(
                        multiplier=1.0,
                        ewt_minutes=2.0,
                        car_ids=tuple(cars),
                    )
                },
                cars=dict(cars),
            )
        )
    return log


def pos(north_m=0.0, east_m=0.0):
    p = CENTER.offset(north_m, east_m)
    return (p.lat, p.lon)


class TestBuildTracks:
    def test_tracks_all_sightings(self):
        log = synthetic_log([
            (0.0, {"a": pos(), "b": pos(100)}),
            (5.0, {"a": pos(10)}),
            (10.0, {"a": pos(20), "c": pos(-100)}),
        ])
        tracks = build_tracks(log)
        assert set(tracks) == {"a", "b", "c"}
        assert len(tracks["a"].sightings) == 3
        assert tracks["a"].lifespan_s == 10.0
        assert tracks["b"].lifespan_s == 0.0
        assert tracks["a"].car_type is CarType.UBERX

    def test_last_position(self):
        log = synthetic_log([
            (0.0, {"a": pos()}),
            (5.0, {"a": pos(50, 50)}),
        ])
        track = build_tracks(log)["a"]
        expected = CENTER.offset(50, 50)
        assert track.last_position.fast_distance_m(expected) < 1.0


class TestShortLivedFilter:
    def test_filters_below_threshold(self):
        log = synthetic_log([
            (0.0, {"a": pos(), "b": pos(100)}),
            (5.0, {"a": pos()}),
            (120.0, {"a": pos()}),
        ])
        tracks = filter_short_lived(build_tracks(log), min_lifespan_s=60.0)
        assert set(tracks) == {"a"}

    def test_zero_threshold_keeps_all(self):
        log = synthetic_log([(0.0, {"a": pos()})])
        assert len(filter_short_lived(build_tracks(log), 0.0)) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            filter_short_lived({}, -1.0)


class TestDeathDetection:
    def test_interior_death_countable(self):
        log = synthetic_log([
            (0.0, {"a": pos(), "b": pos(10)}),
            (5.0, {"a": pos(), "b": pos(10)}),
            (10.0, {"a": pos()}),
            (15.0, {"a": pos()}),
        ])
        deaths = detect_deaths(log, build_tracks(log), BOUNDARY,
                               edge_margin_m=100.0)
        assert len(deaths) == 1
        death = deaths[0]
        assert death.car_id == "b"
        assert death.t == 10.0
        assert death.countable

    def test_edge_death_not_countable(self):
        # Car "b" vanishes 50 m from the western boundary.
        west_edge = (BOX.south + 0.006, BOX.west + 0.0006)
        log = synthetic_log([
            (0.0, {"a": pos(), "b": west_edge}),
            (5.0, {"a": pos(), "b": west_edge}),
            (10.0, {"a": pos()}),
        ])
        deaths = detect_deaths(log, build_tracks(log), BOUNDARY,
                               edge_margin_m=100.0)
        assert len(deaths) == 1
        assert not deaths[0].countable

    def test_survivors_not_deaths(self):
        log = synthetic_log([
            (0.0, {"a": pos()}),
            (5.0, {"a": pos()}),
        ])
        assert detect_deaths(log, build_tracks(log), BOUNDARY) == []

    def test_no_boundary_counts_everything(self):
        log = synthetic_log([
            (0.0, {"a": pos(), "b": pos(10)}),
            (5.0, {"a": pos()}),
        ])
        deaths = detect_deaths(log, build_tracks(log), boundary=None)
        assert len(deaths) == 1
        assert deaths[0].countable


class TestSupplyDemand:
    def test_supply_counts_unique_ids_per_interval(self):
        log = synthetic_log([
            (0.0, {"a": pos(), "b": pos(10)}),
            (100.0, {"a": pos(), "b": pos(10)}),
            (310.0, {"a": pos(), "c": pos(20)}),
            (590.0, {"a": pos(), "c": pos(20)}),
        ])
        estimates = estimate_supply_demand(
            log, car_type=CarType.UBERX, boundary=BOUNDARY,
            min_lifespan_s=0.0,
        )
        by_idx = {e.interval_index: e for e in estimates}
        assert by_idx[0].supply == 2  # a, b
        assert by_idx[1].supply == 2  # a, c

    def test_demand_counts_interior_deaths(self):
        log = synthetic_log([
            (0.0, {"a": pos(), "b": pos(10)}),
            (100.0, {"a": pos(), "b": pos(10)}),
            (200.0, {"a": pos()}),       # b dies inside interval 0
            (310.0, {"a": pos()}),
        ])
        estimates = estimate_supply_demand(
            log, boundary=BOUNDARY, min_lifespan_s=0.0
        )
        by_idx = {e.interval_index: e for e in estimates}
        assert by_idx[0].demand == 1
        assert by_idx[1].demand == 0

    def test_empty_log(self):
        log = CampaignLog("x", {}, 5.0)
        assert estimate_supply_demand(log) == []

    def test_type_filter(self):
        log = synthetic_log([
            (0.0, {"a": pos()}),
            (5.0, {"a": pos()}),
        ])
        estimates = estimate_supply_demand(
            log, car_type=CarType.UBERBLACK, min_lifespan_s=0.0
        )
        assert all(e.supply == 0 for e in estimates)
