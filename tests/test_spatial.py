"""Tests for the spatial density/EWT analysis."""

import pytest

from repro.geo.latlon import LatLon
from repro.analysis.heatmap import ClientCell
from repro.analysis.spatial import (
    spatial_summary,
    undersupplied_cells,
)

ORIGIN = LatLon(40.75, -73.99)


def cell(cid, cars, ewt, i=0):
    return ClientCell(
        client_id=cid,
        location=ORIGIN.offset(i * 200.0, 0.0),
        unique_cars_per_day=cars,
        mean_ewt_minutes=ewt,
    )


class TestSpatialSummary:
    def test_negative_correlation_market(self):
        """Classic market: more cars = shorter waits."""
        cells = [
            cell(f"c{i}", cars=100.0 + 50.0 * i, ewt=6.0 - 0.5 * i, i=i)
            for i in range(8)
        ]
        summary = spatial_summary(cells)
        assert summary.density_ewt_correlation < -0.9
        assert not summary.hot_and_slow

    def test_hot_and_slow_detected(self):
        """Times-Square pattern: densest cell still waits long."""
        cells = [
            cell("sparse1", 50.0, 5.0, 0),
            cell("sparse2", 60.0, 4.5, 1),
            cell("mid1", 100.0, 2.0, 2),
            cell("mid2", 110.0, 2.1, 3),
            cell("mid3", 120.0, 2.0, 4),
            cell("mid4", 130.0, 2.2, 5),
            cell("timessq", 400.0, 5.5, 6),
            cell("fifth", 380.0, 5.0, 7),
        ]
        summary = spatial_summary(cells)
        assert "timessq" in summary.hot_and_slow
        assert "sparse1" in summary.cold_and_slow
        assert "mid1" not in summary.hot_and_slow

    def test_describe(self):
        cells = [cell(f"c{i}", 10.0 * i + 1, 2.0, i) for i in range(4)]
        assert "cells" in spatial_summary(cells).describe()

    def test_too_few_cells(self):
        with pytest.raises(ValueError):
            spatial_summary([cell("a", 1.0, 1.0)])

    def test_cells_without_ewt_skipped(self):
        cells = [cell(f"c{i}", 10.0, 2.0, i) for i in range(4)]
        cells.append(ClientCell("x", ORIGIN, 5.0, None))
        assert spatial_summary(cells).cells == 4


class TestUndersupplied:
    def test_sorted_slowest_first(self):
        cells = [
            cell("fast", 100.0, 1.5, 0),
            cell("slow", 100.0, 5.0, 1),
            cell("slower", 100.0, 7.0, 2),
        ]
        # Median EWT is 5.0; only strictly-slower cells qualify.
        result = undersupplied_cells(cells)
        assert [c.client_id for c in result] == ["slower"]
        both = undersupplied_cells(cells, ewt_threshold_minutes=4.0)
        assert [c.client_id for c in both] == ["slower", "slow"]

    def test_explicit_threshold(self):
        cells = [
            cell("a", 100.0, 2.0, 0),
            cell("b", 100.0, 4.0, 1),
        ]
        result = undersupplied_cells(cells, ewt_threshold_minutes=3.0)
        assert [c.client_id for c in result] == ["b"]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            undersupplied_cells([])


class TestOnLiveCampaign:
    def test_summary_from_toy_campaign(self, toy_campaign):
        from repro.analysis.heatmap import client_heatmap
        _, log = toy_campaign
        cells = client_heatmap(log)
        summary = spatial_summary(cells)
        assert summary.cells == len(cells)
        assert -1.0 <= summary.density_ewt_correlation <= 1.0
