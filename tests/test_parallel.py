"""The parallel execution layer: shard planning, the worker pool,
threaded round serving, and the campaign orchestrator.

Three contracts under test:

* **Sharding is invisible** — any shard decomposition of a round's
  distance pass produces bit-identical replies, truth logs, and RNG
  state to the serial pass (the 32-way flag matrix in
  ``test_perf_regression`` covers the combos; here the shard planner
  and pool are pinned directly, plus a forced-worker engine run.  The
  spatial *state* sharding twin lives in ``test_sharded_state``).
* **Sweeps are deterministic and isolated** — the orchestrator returns
  outcomes in spec order whatever the completion order, a crashing
  campaign yields a structured error without poisoning siblings, and
  process-pool campaigns are bit-identical to sequential ones.
* **Campaign-level state stays single-threaded** — scheduler budget
  accounting survives both the documented single-thread use (pinned
  after a parallel-served round) and adversarial multi-thread use.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.api.ping import PingEndpoint
from repro.geo.latlon import LatLon
from repro.marketplace.config import (
    ParallelParams,
    manhattan_config,
)
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.scheduler import RequestScheduler
from repro.parallel.orchestrator import (
    CampaignOutcome,
    CampaignSpec,
    execute_campaign,
    run_sweep,
)
from repro.parallel.sharding import ShardPool, plan_shards, resolve_workers


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
def test_plan_shards_partitions_every_segment():
    shards = plan_shards(100, [40, 7, 0, 13], workers=4, min_elements=1)
    by_segment = {}
    for seg, c0, c1, r0, r1 in shards:
        by_segment.setdefault(seg, []).append((c0, c1, r0, r1))
    # Empty segment yields nothing; others cover all columns and
    # partition the location rows exactly, in order.
    assert set(by_segment) == {0, 1, 3}
    for seg, blocks in by_segment.items():
        assert all(c0 == 0 for c0, _, _, _ in blocks)
        rows = []
        for _, _, r0, r1 in blocks:
            assert r1 > r0
            rows.append((r0, r1))
        assert rows[0][0] == 0
        assert rows[-1][1] == 100
        for (_, prev_end), (next_start, _) in zip(rows, rows[1:]):
            assert prev_end == next_start


def test_plan_shards_is_deterministic_and_respects_granularity():
    args = (977, [300, 5], 8, 4096)
    assert plan_shards(*args) == plan_shards(*args)
    # A segment below the element floor stays whole.
    shards = plan_shards(10, [3], workers=8, min_elements=1000)
    assert shards == [(0, 0, 3, 0, 10)]
    # One worker -> one shard per non-empty segment.
    shards = plan_shards(50, [10, 20], workers=1, min_elements=1)
    assert shards == [(0, 0, 10, 0, 50), (1, 0, 20, 0, 50)]
    # Never more blocks than locations.
    shards = plan_shards(2, [1000], workers=8, min_elements=1)
    assert len(shards) == 2


def test_plan_shards_validates():
    with pytest.raises(ValueError):
        plan_shards(10, [5], workers=0, min_elements=1)
    with pytest.raises(ValueError):
        plan_shards(10, [5], workers=2, min_elements=0)


def test_resolve_workers():
    assert resolve_workers(1) == 1
    assert resolve_workers(7) == 7
    assert resolve_workers(None) >= 1
    assert resolve_workers(None) <= 4
    with pytest.raises(ValueError):
        resolve_workers(0)


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------
def test_map_ordered_preserves_task_order():
    pool = ShardPool(workers=3, min_elements=1)
    try:
        tasks = [(i,) for i in range(20)]
        assert pool.map_ordered(lambda i: i * i, tasks) == [
            i * i for i in range(20)
        ]
    finally:
        pool.shutdown()


def test_map_ordered_single_task_runs_inline():
    pool = ShardPool(workers=3, min_elements=1)
    try:
        thread_names = []
        pool.map_ordered(
            lambda: thread_names.append(threading.current_thread().name),
            [()],
        )
        assert thread_names == ["MainThread"]
        assert pool._executor is None  # never started
    finally:
        pool.shutdown()


def test_map_ordered_propagates_shard_failure():
    pool = ShardPool(workers=2, min_elements=1)

    def boom(i):
        if i == 3:
            raise RuntimeError("shard died")
        return i

    try:
        with pytest.raises(RuntimeError, match="shard died"):
            pool.map_ordered(boom, [(i,) for i in range(6)])
    finally:
        pool.shutdown()


def test_shard_pool_validates():
    with pytest.raises(ValueError):
        ShardPool(workers=0)
    with pytest.raises(ValueError):
        ShardPool(workers=1, min_elements=0)


def test_shard_pool_lazy_create_is_race_free():
    """Concurrent first use builds exactly one executor.

    The pre-lock _ensure was an unlocked check-then-create: two threads
    racing through the ``None`` check could each build a
    ThreadPoolExecutor, and the loser's pool (with its worker threads)
    leaked until process exit.  Hammer the window with many threads
    released by a barrier and count distinct executors observed.
    """
    for _ in range(20):
        pool = ShardPool(workers=2, min_elements=1)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        seen = set()
        seen_lock = threading.Lock()

        def first_use():
            barrier.wait()
            executor = pool._ensure()
            with seen_lock:
                seen.add(id(executor))

        threads = [
            threading.Thread(target=first_use) for _ in range(n_threads)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(seen) == 1, (
                f"racing first use built {len(seen)} executors"
            )
        finally:
            pool.shutdown()
        assert pool._executor is None  # shutdown cleared the handle


# ----------------------------------------------------------------------
# Threaded round serving
# ----------------------------------------------------------------------
def _served_rounds(engine: MarketplaceEngine, ticks: int = 40):
    endpoint = PingEndpoint(engine)
    box = engine.config.region.bounding_box
    requests = [
        (
            1000 + i,
            LatLon(box.south + 0.0015 * i, box.west + 0.0015 * i),
            None,
        )
        for i in range(10)
    ]
    replies = []
    for _ in range(ticks):
        engine.tick()
        replies.extend(endpoint.serve_round(requests))
    return replies, engine.truth, engine.rng.getstate()


def test_forced_worker_round_serving_is_bit_identical():
    """Three forced workers, one-element shard floor: the threaded
    shard/merge path really runs (thread names prove it) and still
    produces exactly the serial engine's replies, truth, RNG state."""
    cfg = manhattan_config()
    cfg_par = dataclasses.replace(
        cfg, parallel=ParallelParams(workers=3, min_shard_elements=1)
    )
    serial = _served_rounds(
        MarketplaceEngine(cfg, seed=13, use_parallel_ping=False)
    )
    engine = MarketplaceEngine(cfg_par, seed=13)
    assert engine._shard_pool is not None
    assert engine.parallel_workers == 3
    parallel = _served_rounds(engine)
    assert any(
        t.name.startswith("repro-shard") for t in threading.enumerate()
    ), "worker threads never started — the test exercised nothing"
    assert parallel == serial


def test_auto_workers_single_core_falls_back_to_serial(monkeypatch):
    """With workers unset, the pool auto-sizes; on a single-core box
    that resolves to 1 and the engine skips the pool entirely."""
    import repro.parallel.sharding as sharding

    monkeypatch.setattr(sharding.os, "cpu_count", lambda: 1)
    engine = MarketplaceEngine(manhattan_config(), seed=1)
    assert engine.parallel_workers == 1
    assert engine._shard_pool is None


def test_round_nearest_pool_matches_inline_directly():
    """FleetArray.round_nearest with a pool equals the poolless call,
    element for element, including the served-rows set."""
    engine = MarketplaceEngine(manhattan_config(), seed=5)
    for _ in range(30):
        engine.tick()
    vec = engine._vec
    assert vec is not None
    box = engine.config.region.bounding_box
    lats = np.linspace(box.south, box.north, 9)
    lons = np.linspace(box.west, box.east, 9)
    baseline = vec.round_nearest(lats, lons, k=8)
    pool = ShardPool(workers=3, min_elements=1)
    try:
        pooled = vec.round_nearest(lats, lons, k=8, pool=pool)
    finally:
        pool.shutdown()
    assert pooled.served_rows == baseline.served_rows
    assert pooled._per_type.keys() == baseline._per_type.keys()
    for ct in baseline._per_type:
        assert pooled._per_type[ct] == baseline._per_type[ct]


# ----------------------------------------------------------------------
# The campaign orchestrator
# ----------------------------------------------------------------------
def _tiny_spec(key: str, city: str = "manhattan", seed: int = 3,
               hours: float = 0.05, **kwargs) -> CampaignSpec:
    return CampaignSpec(
        key=key, city=city, seed=seed, hours=hours, max_clients=4,
        **kwargs,
    )


def test_execute_campaign_returns_structured_outcome():
    outcome = execute_campaign(_tiny_spec("one"))
    assert outcome.ok
    assert outcome.key == "one"
    assert outcome.truth_digest and len(outcome.truth_digest) == 64
    assert outcome.metrics is not None
    assert outcome.metrics["rounds"] > 0
    assert outcome.metrics["clients"] == 4
    # The whole outcome must survive a JSON round-trip: workers hand
    # records, not objects, across the process boundary.
    assert json.loads(json.dumps(outcome.to_json()))["ok"] is True


def test_execute_campaign_is_seed_deterministic():
    # Long enough for at least one 5-minute IntervalTruth record —
    # an empty truth stream would make every digest trivially equal.
    a = execute_campaign(_tiny_spec("a", seed=21, hours=0.15))
    b = execute_campaign(_tiny_spec("b", seed=21, hours=0.15))
    c = execute_campaign(_tiny_spec("c", seed=22, hours=0.15))
    assert a.metrics["truth_intervals"] >= 1
    assert a.truth_digest == b.truth_digest
    assert a.truth_digest != c.truth_digest


def test_crashing_campaign_is_reported_not_swallowed():
    """A failing campaign in a parallel sweep yields a structured error
    record — with the exception and traceback — while every sibling
    completes, and the merged order still matches the spec order."""
    specs = [
        _tiny_spec("good-1", seed=5),
        _tiny_spec("bad", city="atlantis", seed=5),
        _tiny_spec("good-2", city="sf", seed=5),
    ]
    outcomes = run_sweep(specs, jobs=2)
    assert [o.key for o in outcomes] == ["good-1", "bad", "good-2"]
    good1, bad, good2 = outcomes
    assert good1.ok and good2.ok
    assert not bad.ok
    assert bad.error is not None and "atlantis" in bad.error
    assert bad.traceback is not None and "ValueError" in bad.traceback
    assert good1.truth_digest and good2.truth_digest


def test_sweep_parallel_matches_sequential():
    specs = [
        _tiny_spec("m-5", seed=5),
        _tiny_spec("m-6", seed=6),
        _tiny_spec("s-5", city="sf", seed=5),
    ]
    sequential = run_sweep(specs, jobs=1)
    parallel = run_sweep(specs, jobs=3)
    assert [o.key for o in sequential] == [o.key for o in parallel]
    assert [o.truth_digest for o in sequential] == [
        o.truth_digest for o in parallel
    ]
    assert [o.metrics for o in sequential] == [
        o.metrics for o in parallel
    ]


def test_merge_order_is_spec_order_not_completion_order():
    """Campaigns with wildly different durations: the long one is
    submitted first and finishes last, but still comes back first."""
    specs = [
        CampaignSpec(key="long", city="manhattan", seed=2, hours=0.2,
                     max_clients=4),
        _tiny_spec("short-1", seed=2),
        _tiny_spec("short-2", seed=3),
    ]
    outcomes = run_sweep(specs, jobs=3)
    assert [o.key for o in outcomes] == ["long", "short-1", "short-2"]
    assert all(o.ok for o in outcomes)


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError, match="duplicate campaign keys"):
        run_sweep([_tiny_spec("x"), _tiny_spec("x")], jobs=1)
    # The shared submit-time audit names the offending keys and leaves
    # distinct sweeps alone (cluster dispatch reuses the same helper).
    from repro.parallel.orchestrator import ensure_unique_keys

    with pytest.raises(ValueError, match=r"\['x'\]"):
        ensure_unique_keys([_tiny_spec("x"), _tiny_spec("y"),
                            _tiny_spec("x", seed=9)])
    ensure_unique_keys([_tiny_spec("x"), _tiny_spec("y")])


def test_outcome_wall_s_is_metadata_not_identity():
    """``wall_s`` rides on every outcome (success and failure) for
    straggler-skew reporting, but stays out of ``identity()`` — wall
    time varies per run, digests and metrics must not."""
    ok = execute_campaign(_tiny_spec("timed"))
    assert ok.wall_s is not None and ok.wall_s > 0
    failed = execute_campaign(_tiny_spec("broken", city="atlantis"))
    assert failed.wall_s is not None and failed.wall_s >= 0
    for outcome in (ok, failed):
        payload = outcome.to_json()
        assert payload["wall_s"] == outcome.wall_s
        identity = outcome.identity()
        assert "wall_s" not in identity
        assert identity == {
            k: v for k, v in payload.items() if k != "wall_s"
        }


def test_outcome_json_schema_is_backward_compatible():
    """Outcome records written before wall_s existed still load: the
    field is optional with a None default, never required."""
    legacy = {
        "key": "old", "ok": True, "truth_digest": "d" * 64,
        "metrics": {"rounds": 2.0}, "out_path": None,
        "error": None, "traceback": None,
    }
    revived = CampaignOutcome(**legacy)
    assert revived.wall_s is None
    assert json.loads(json.dumps(revived.to_json()))["wall_s"] is None


def test_unknown_engine_flag_is_a_structured_error():
    spec = _tiny_spec("flagged", engine_flags=(("use_warp_drive", True),))
    outcome = execute_campaign(spec)
    assert not outcome.ok
    assert outcome.error is not None
    assert "use_warp_drive" in outcome.error


def test_engine_flags_reach_the_engine():
    """A flags-off campaign must be bit-identical to defaults — the
    flag plumbing exists so sweeps can run ablations, and the flags
    must only ever change speed."""
    defaults = execute_campaign(_tiny_spec("defaults", seed=9, hours=0.15))
    ablation = execute_campaign(
        _tiny_spec(
            "ablation", seed=9, hours=0.15,
            engine_flags=(
                ("use_spatial_index", False),
                ("use_vectorized_step", False),
                ("use_batched_ping", False),
                ("use_parallel_ping", False),
            ),
        )
    )
    assert defaults.ok and ablation.ok
    assert defaults.metrics["truth_intervals"] >= 1
    assert defaults.truth_digest == ablation.truth_digest


def test_empty_sweep():
    assert run_sweep([], jobs=4) == []


def test_campaign_log_written_by_worker(tmp_path):
    out = tmp_path / "c.jsonl"
    outcome = execute_campaign(_tiny_spec("logged", out=str(out)))
    assert outcome.ok
    assert outcome.out_path == str(out)
    from repro.measurement.records import CampaignLog

    log = CampaignLog.load(out)
    assert len(log.rounds) == int(outcome.metrics["rounds"])


def test_save_failure_is_a_structured_error(tmp_path):
    """A disk error *after* a successful run (unwritable out path) must
    still come back as an error outcome, not an exception — the save is
    inside the crash-isolation boundary."""
    out = tmp_path / "no_such_dir" / "c.jsonl"
    outcome = execute_campaign(_tiny_spec("diskless", out=str(out)))
    assert not outcome.ok
    assert outcome.error is not None
    assert outcome.traceback is not None
    assert "no_such_dir" in outcome.traceback


def _exit_worker(spec: CampaignSpec) -> CampaignOutcome:
    """Stand-in campaign runner that kills its worker process outright
    for the sentinel key — the one crash ``execute_campaign`` can never
    catch, which is exactly the branch ``run_sweep`` must absorb."""
    if spec.key == "boom":
        os._exit(13)
    return execute_campaign(spec)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched worker function needs fork inheritance",
)
def test_worker_process_death_is_a_structured_outcome(monkeypatch):
    """A worker that dies mid-campaign (hard exit, OOM kill, segfault)
    breaks the process pool; ``run_sweep`` must turn that into
    per-campaign error outcomes in spec order instead of raising."""
    from repro.parallel import orchestrator

    monkeypatch.setattr(orchestrator, "execute_campaign", _exit_worker)
    specs = [_tiny_spec("boom", seed=5), _tiny_spec("ok", seed=5)]
    outcomes = orchestrator.run_sweep(specs, jobs=2)
    assert [o.key for o in outcomes] == ["boom", "ok"]
    boom, ok = outcomes
    assert not boom.ok
    assert boom.error is not None and "BrokenProcessPool" in boom.error
    assert boom.traceback is not None
    # The sibling either finished before the pool broke (and keeps its
    # result) or was lost with the pool (and gets its own structured
    # error) — in neither case does run_sweep raise or drop it.
    if ok.ok:
        assert ok.truth_digest
    else:
        assert ok.error is not None and "BrokenProcessPool" in ok.error


class _FlakySubmitExecutor:
    """ProcessPoolExecutor stand-in whose ``submit`` raises for specs
    keyed ``bad*`` — modelling a pool broken between submissions — and
    otherwise resolves inline with a completed Future."""

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, spec):
        if spec.key.startswith("bad"):
            raise RuntimeError(f"submit refused for {spec.key}")
        future: Future = Future()
        future.set_result(fn(spec))
        return future


def test_submit_failure_is_a_structured_outcome(monkeypatch):
    """``executor.submit`` itself can raise (pool already broken,
    interpreter shutdown).  Every spec must still yield exactly one
    outcome in spec order: failed submits as structured errors, the
    specs submitted *after* the failure unaffected — an unguarded
    submit loop would have dropped them silently."""
    from repro.parallel import orchestrator

    monkeypatch.setattr(
        orchestrator, "ProcessPoolExecutor", _FlakySubmitExecutor
    )
    specs = [
        _tiny_spec("ok-1", seed=3),
        _tiny_spec("bad-2", seed=3),
        _tiny_spec("ok-3", seed=3),
        _tiny_spec("bad-4", seed=3),
    ]
    outcomes = orchestrator.run_sweep(specs, jobs=2)
    assert [o.key for o in outcomes] == ["ok-1", "bad-2", "ok-3", "bad-4"]
    ok1, bad2, ok3, bad4 = outcomes
    assert ok1.ok and ok1.truth_digest
    assert ok3.ok and ok3.truth_digest == ok1.truth_digest
    for bad in (bad2, bad4):
        assert not bad.ok
        assert bad.error is not None and "submit refused" in bad.error
        assert bad.traceback is not None


def test_prefetch_campaigns_writes_identical_cache_files(
    tmp_path, monkeypatch
):
    """Sweep-written bench cache files must be byte-identical to the
    ones the in-process ``campaign()`` path writes — otherwise a cold
    parallel prefetch would silently change bench inputs."""
    import sys
    from pathlib import Path

    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    import _shared

    params = {
        "city": "manhattan",
        "days": 0.01,
        "ping_interval_s": 30.0,
        "warmup_s": 0.0,
        "seed": 77,
    }
    key = _shared.campaign_key(**params)

    monkeypatch.setattr(_shared, "CACHE_DIR", tmp_path / "sweep")
    monkeypatch.setattr(_shared, "_memory_cache", {})
    (tmp_path / "sweep").mkdir()
    assert _shared.prefetch_campaigns([params], jobs=2) == 1
    sweep_bytes = _shared.campaign_cache_path(key).read_bytes()
    # Prefetch with a warm cache is a no-op.
    assert _shared.prefetch_campaigns([params], jobs=2) == 0

    monkeypatch.setattr(_shared, "CACHE_DIR", tmp_path / "inline")
    monkeypatch.setattr(_shared, "_memory_cache", {})
    (tmp_path / "inline").mkdir()
    _shared.campaign(**params)
    inline_bytes = _shared.campaign_cache_path(key).read_bytes()

    assert sweep_bytes == inline_bytes


def test_prefetch_raises_on_failed_campaign(tmp_path, monkeypatch):
    import sys
    from pathlib import Path

    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    import _shared

    monkeypatch.setattr(_shared, "CACHE_DIR", tmp_path)
    monkeypatch.setattr(_shared, "_memory_cache", {})
    with pytest.raises(RuntimeError, match="prefetch failed"):
        _shared.prefetch_campaigns(
            [{"city": "nowhere", "days": 0.01, "seed": 1}], jobs=1
        )


# ----------------------------------------------------------------------
# Campaign-level state: scheduler accounting
# ----------------------------------------------------------------------
def test_scheduler_state_pinned_after_parallel_served_round():
    """Budget accounting after a parallel-served round must equal the
    serial-engine run exactly: the shard pool lives entirely below
    ``serve_round`` and must never leak into campaign-level state."""

    def run(engine: MarketplaceEngine):
        endpoint = PingEndpoint(engine)
        scheduler = RequestScheduler(limit_per_hour=100)
        accounts = ["acct0", "acct1", "acct2"]
        box = engine.config.region.bounding_box
        requests = [
            (2000 + i, LatLon(box.south + 0.002 * i, box.west), None)
            for i in range(6)
        ]
        picks = []
        for _ in range(10):
            engine.tick()
            endpoint.serve_round(requests)
            for _ in requests:
                picks.append(
                    scheduler.account_for(accounts, engine.clock.now)
                )
        return picks, scheduler.total_spent(engine.clock.now)

    cfg_par = dataclasses.replace(
        manhattan_config(),
        parallel=ParallelParams(workers=3, min_shard_elements=1),
    )
    serial_picks, serial_spend = run(
        MarketplaceEngine(manhattan_config(), seed=4,
                          use_parallel_ping=False)
    )
    parallel_picks, parallel_spend = run(
        MarketplaceEngine(cfg_par, seed=4)
    )
    assert parallel_picks == serial_picks
    assert parallel_spend == serial_spend == 60


def test_scheduler_accounting_is_thread_safe():
    """Adversarial use: concurrent account_for calls must neither lose
    nor double-count spend (the read-modify-write is locked)."""
    scheduler = RequestScheduler(limit_per_hour=100_000)
    accounts = [f"a{i}" for i in range(4)]
    n_threads, per_thread = 8, 200
    errors = []

    def hammer():
        try:
            for _ in range(per_thread):
                assert scheduler.account_for(accounts, now=10.0)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert scheduler.total_spent(now=10.0) == n_threads * per_thread
