"""Tests for the text-plotting toolkit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.latlon import LatLon
from repro.viz.heatgrid import heatgrid, labelgrid
from repro.viz.plots import (
    _nice_ticks,
    bar_chart,
    cdf_chart,
    line_chart,
    scatter_chart,
    sparkline,
)


class TestNiceTicks:
    def test_round_numbers(self):
        ticks = _nice_ticks(0.0, 10.0, 5)
        assert 0.0 in ticks and 10.0 in ticks
        assert all(t == round(t, 6) for t in ticks)

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0, 4)
        assert ticks

    @given(
        lo=st.floats(min_value=-1e4, max_value=1e4),
        span=st.floats(min_value=0.01, max_value=1e4),
    )
    @settings(max_examples=50)
    def test_ticks_cover_range(self, lo, span):
        ticks = _nice_ticks(lo, lo + span, 5)
        assert ticks == sorted(ticks)
        assert all(lo - span <= t <= lo + 2 * span for t in ticks)


class TestLineChart:
    def test_renders_axes_and_points(self):
        chart = line_chart(
            {"a": [(0, 0), (1, 5), (2, 10)]},
            title="demo", x_label="t", y_label="v",
        )
        assert "demo" in chart
        assert "*" in chart
        assert "x: t" in chart
        assert "10" in chart

    def test_multiple_series_legend(self):
        chart = line_chart(
            {"sup": [(0, 1), (1, 2)], "dem": [(0, 2), (1, 1)]}
        )
        assert "*=sup" in chart
        assert "o=dem" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_fixed_y_range_clips(self):
        chart = line_chart(
            {"a": [(0, 0), (1, 1000)]}, y_range=(0.0, 10.0)
        )
        assert "1000" not in chart


class TestCdfChart:
    def test_renders_percent_axis(self):
        chart = cdf_chart({"x": [1.0, 2.0, 3.0, 4.0]})
        assert "100" in chart
        assert "CDF %" in chart

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            cdf_chart({"x": []})


class TestBarChart:
    def test_bars_scale(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestScatterAndSparkline:
    def test_scatter(self):
        chart = scatter_chart([(-5, 0.2), (0, -0.4), (5, 0.1)])
        assert "*" in chart

    def test_scatter_empty(self):
        with pytest.raises(ValueError):
            scatter_chart([])

    def test_sparkline_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert len(line) == 8
        assert line[0] != line[-1]

    def test_sparkline_downsamples(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) == 50

    def test_sparkline_empty(self):
        with pytest.raises(ValueError):
            sparkline([])

    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_sparkline_never_crashes(self, values):
        line = sparkline(values)
        assert 0 < len(line) <= 60


class TestHeatgrid:
    def grid_cells(self):
        origin = LatLon(40.75, -73.99)
        return {
            origin.offset(i * 200.0, j * 200.0): float(i * 3 + j)
            for i in range(3)
            for j in range(3)
        }

    def test_renders_rows_and_scale(self):
        text = heatgrid(self.grid_cells(), title="cars")
        lines = text.splitlines()
        assert lines[0] == "cars"
        assert len(lines) == 1 + 3 + 1  # title + rows + scale
        assert "scale:" in lines[-1]

    def test_extremes_use_ramp_ends(self):
        text = heatgrid(self.grid_cells())
        assert "@" in text  # max value shade
        assert text.splitlines()[-2].startswith(" ")  # min shade (space)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            heatgrid({})

    def test_labelgrid(self):
        origin = LatLon(40.75, -73.99)
        cells = {
            origin.offset(i * 200.0, j * 200.0): (0 if j < 2 else 1)
            for i in range(2)
            for j in range(3)
        }
        text = labelgrid(cells, title="areas")
        assert "0" in text and "1" in text
        assert "areas: 0 1" in text
