"""Tests for API probing (areas harness) and multiplier forcing."""

import pytest

from conftest import toy_config
from repro.api.ratelimit import RateLimiter
from repro.api.rest import RestApi
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.fleet import MarketplaceWorld
from repro.analysis.areas import probe_multipliers


@pytest.fixture
def setup():
    engine = MarketplaceEngine(toy_config(), seed=51)
    engine.run(900.0)
    api = RestApi(engine, RateLimiter(limit=1_000_000))
    return engine, MarketplaceWorld(engine), api


class TestProbeMultipliers:
    def test_series_shapes(self, setup):
        engine, world, api = setup
        region = engine.config.region
        points = [a.polygon.centroid() for a in region.surge_areas]
        series = probe_multipliers(world, api, points, rounds=4)
        assert len(series) == len(points)
        assert all(len(s) == 4 for s in series)
        assert all(m >= 1.0 for s in series for m in s)

    def test_advances_world(self, setup):
        engine, world, api = setup
        t0 = world.now
        points = [engine.config.region.surge_areas[0].polygon.centroid()]
        probe_multipliers(world, api, points, rounds=3, interval_s=300.0)
        assert world.now == pytest.approx(t0 + 900.0)

    def test_probes_track_forced_values(self, setup):
        engine, world, api = setup
        engine.surge.force_multipliers({0: 2.0})
        region = engine.config.region
        point = region.area_by_id(0).polygon.centroid()
        value = api.surge_multiplier("probe", point)
        assert value == 2.0

    def test_rejects_zero_rounds(self, setup):
        engine, world, api = setup
        with pytest.raises(ValueError):
            probe_multipliers(world, api, [], rounds=0)


class TestForceMultipliers:
    def test_sets_and_shifts_previous(self, setup):
        engine, _, _ = setup
        current = engine.surge.multiplier(0)
        engine.surge.force_multipliers({0: 3.0})
        assert engine.surge.multiplier(0) == 3.0
        assert engine.surge.previous_multiplier(0) == current

    def test_rejects_unknown_area(self, setup):
        engine, _, _ = setup
        with pytest.raises(KeyError):
            engine.surge.force_multipliers({99: 2.0})

    def test_rejects_out_of_range(self, setup):
        engine, _, _ = setup
        with pytest.raises(ValueError):
            engine.surge.force_multipliers({0: 0.5})
        with pytest.raises(ValueError):
            engine.surge.force_multipliers({0: 99.0})
