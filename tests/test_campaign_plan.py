"""Tests for the turnkey campaign orchestrator."""

import dataclasses

import pytest

from conftest import toy_config
from repro.marketplace.types import CarType
from repro.measurement.campaign import CampaignPlan, CampaignResult


class TestPlanValidation:
    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            CampaignPlan(config=toy_config(), duration_s=0.0)
        with pytest.raises(ValueError):
            CampaignPlan(config=toy_config(), duration_s=10.0,
                         warmup_s=-1.0)

    def test_calibrated_radius_requires_calibration(self):
        with pytest.raises(ValueError):
            CampaignPlan(
                config=toy_config(), duration_s=10.0,
                use_calibrated_radius=True,
            )

    def test_for_city_converts_hours(self):
        plan = CampaignPlan.for_city(toy_config(), hours=2.0,
                                     warmup_hours=1.0)
        assert plan.duration_s == 7200.0
        assert plan.warmup_s == 3600.0


class TestExecution:
    def test_basic_campaign(self):
        plan = CampaignPlan(
            config=toy_config(),
            duration_s=600.0,
            warmup_s=300.0,
            ping_interval_s=30.0,
        )
        result = plan.execute(seed=5)
        assert isinstance(result, CampaignResult)
        assert len(result.log.rounds) == 20
        assert result.log.rounds[0].t >= 300.0
        assert result.calibrated_radius_m is None
        assert "rounds" in result.describe()

    def test_calibrated_campaign(self):
        plan = CampaignPlan(
            config=toy_config(),
            duration_s=300.0,
            warmup_s=600.0,
            ping_interval_s=30.0,
            calibrate=True,
            use_calibrated_radius=True,
        )
        result = plan.execute(seed=7)
        assert result.calibrated_radius_m is not None
        assert result.calibrated_radius_m > 10.0
        assert result.determinism is not None
        assert result.determinism.passed
        assert "calibrated radius" in result.describe()
        assert len(result.log.rounds) == 10

    def test_max_clients_cap(self):
        plan = CampaignPlan(
            config=toy_config(),
            duration_s=120.0,
            warmup_s=0.0,
            ping_interval_s=30.0,
            max_clients=3,
        )
        result = plan.execute(seed=9)
        assert len(result.client_positions) == 3

    def test_same_seed_reproduces(self):
        plan = CampaignPlan(
            config=toy_config(), duration_s=300.0,
            warmup_s=300.0, ping_interval_s=30.0,
        )
        a = plan.execute(seed=11)
        b = plan.execute(seed=11)
        assert [r.t for r in a.log.rounds] == [r.t for r in b.log.rounds]
        assert a.log.rounds[-1].samples == b.log.rounds[-1].samples

    def test_log_feeds_analysis(self):
        from repro.analysis.supply_demand import estimate_supply_demand
        plan = CampaignPlan(
            config=toy_config(), duration_s=900.0,
            warmup_s=600.0, ping_interval_s=30.0,
        )
        result = plan.execute(seed=13)
        estimates = estimate_supply_demand(
            result.log, car_type=CarType.UBERX,
            boundary=plan.config.region.boundary,
        )
        assert estimates
