"""Golden-campaign regression: a pinned end-to-end measure→analyze run.

A tiny fixed-seed downtown-SF campaign runs the entire pipeline — engine
ticks, measurement-fleet ping rounds, supply/demand estimation, surge
and jitter analysis — and the result is hashed against a checked-in
digest (``tests/golden/campaign_digest.json``).  Any change to simulator
behaviour, the serving layer, or the analysis pipeline that alters a
single bit of the ``IntervalTruth`` stream or the audit-report scalars
fails this test, which is exactly the point: behaviour changes must be
*deliberate* and visible in review, not side effects.

Regenerating after a deliberate behaviour change is one command::

    PYTHONPATH=src python tests/test_golden_campaign.py --regen

which rewrites the digest file (commit it alongside the change).  The
digest also stores the human-readable scalars so a mismatch shows
*what* moved, not just that something did.

Float caveat: the digest pins bit-exact float behaviour on the
toolchain CI runs (CPython float + numpy, IEEE-754 doubles).  A libm
with different ``sin``/``cos`` rounding could shift last bits; if CI
ever migrates platforms, regenerate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import statistics
import sys
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / (
    "campaign_digest.json"
)

from repro.analysis.report import audit_campaign
from repro.marketplace.config import ParallelParams, sf_config
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.measurement.fleet import Fleet, MarketplaceWorld
from repro.measurement.placement import place_clients

#: Campaign shape: 10 simulated minutes of warmup then 30 minutes
#: measured, 6 clients pinging UberX every 15 s.  Small enough for
#: tier-1, long enough for surge intervals, trips, jitter events, and
#: the supply/demand estimator to all engage.
SEED = 29
WARMUP_S = 600.0
DURATION_S = 1800.0
PING_INTERVAL_S = 15.0
MAX_CLIENTS = 6


def run_golden_campaign(**engine_kwargs):
    """The pinned campaign, end to end; returns (engine, log, report).

    ``engine_kwargs`` lets the shard-count sweep force
    ``state_shards``; forced counts also drop the shard-row floor to 1
    so the pool path really runs at this campaign's scale.
    """
    cfg = sf_config(jitter_probability=0.25)
    if engine_kwargs.get("state_shards"):
        cfg = dataclasses.replace(
            cfg, parallel=ParallelParams(min_shard_rows=1)
        )
    engine = MarketplaceEngine(cfg, seed=SEED, **engine_kwargs)
    fleet = Fleet(
        place_clients(cfg.region, max_clients=MAX_CLIENTS),
        car_types=[CarType.UBERX],
        ping_interval_s=PING_INTERVAL_S,
    )
    world = MarketplaceWorld(engine)
    log = fleet.run(
        world, duration_s=DURATION_S, city="sf-golden", warmup_s=WARMUP_S
    )
    report = audit_campaign(log, boundary=cfg.region.boundary)
    return engine, log, report


def _truth_payload(engine) -> list:
    """The IntervalTruth stream as plain sorted-key JSON material."""
    return [
        {
            "interval_index": t.interval_index,
            "start_s": t.start_s,
            "online_by_type": {
                ct.name: n for ct, n in sorted(
                    t.online_by_type.items(), key=lambda kv: kv[0].name
                )
            },
            "distinct_online_uberx": t.distinct_online_uberx,
            "fulfilled_by_area": {
                str(k): v for k, v in sorted(t.fulfilled_by_area.items())
            },
            "requests_by_area": {
                str(k): v for k, v in sorted(t.requests_by_area.items())
            },
            "priced_out": t.priced_out,
            "unfulfilled": t.unfulfilled,
            "mean_idle_uberx_by_area": {
                str(k): v
                for k, v in sorted(t.mean_idle_uberx_by_area.items())
            },
            "multipliers": {
                str(k): v for k, v in sorted(t.multipliers.items())
            },
            "mean_ewt_by_area": {
                str(k): v for k, v in sorted(t.mean_ewt_by_area.items())
            },
        }
        for t in engine.truth
    ]


def _report_scalars(engine, report) -> dict:
    return {
        "rounds": report.rounds,
        "clients": report.clients,
        "surge_active_fraction": report.surge_active_fraction,
        "mean_multiplier": report.mean_multiplier,
        "max_multiplier": report.max_multiplier,
        "clock_period_s": report.clock_period_s,
        "clock_phase_s": report.clock_phase_s,
        "episode_count": len(report.episode_durations_s),
        "episode_total_s": sum(report.episode_durations_s),
        "ewt_count": len(report.ewts),
        "ewt_mean_minutes": (
            statistics.mean(report.ewts) if report.ewts else None
        ),
        "jitter_event_count": len(report.jitter_events),
        "supply_series": [list(p) for p in report.supply_series],
        "demand_series": [list(p) for p in report.demand_series],
        "trips_completed": len(engine.completed_trips),
    }


def build_digest(**engine_kwargs) -> dict:
    """Run the campaign and condense it into the golden payload."""
    engine, _, report = run_golden_campaign(**engine_kwargs)
    payload = {
        "truth": _truth_payload(engine),
        "report": _report_scalars(engine, report),
    }
    engine.close()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return {
        "digest": hashlib.sha256(blob.encode("ascii")).hexdigest(),
        "scenario": (
            f"sf_config seed={SEED} warmup={WARMUP_S:g}s "
            f"duration={DURATION_S:g}s ping={PING_INTERVAL_S:g}s "
            f"clients={MAX_CLIENTS}"
        ),
        "report": payload["report"],
        "truth_intervals": len(payload["truth"]),
    }


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(build_digest(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")


def test_golden_campaign_digest_unchanged():
    assert GOLDEN_PATH.exists(), (
        "golden digest missing; regenerate with\n"
        "  PYTHONPATH=src python tests/test_golden_campaign.py --regen"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    current = build_digest()
    # Compare the scalars first: on a mismatch this names what moved
    # instead of only showing two unequal hashes.
    assert current["report"] == golden["report"]
    assert current["truth_intervals"] == golden["truth_intervals"]
    assert current["digest"] == golden["digest"]


@pytest.mark.parametrize(
    "shards,executor",
    [(s, "thread") for s in (1, 2, 4, 7)]
    + [(s, "process") for s in (2, 7)],
)
def test_golden_digest_unchanged_at_every_shard_count(shards, executor):
    """``use_sharded_state`` must not move the golden digest at any
    shard count *or* executor: the spatial partition of the tick (and
    the forced pool merge at counts > 1) is pure speed, never
    behaviour — whether the stripes run on the thread pool or in
    shared-memory worker processes.  Count 1 pins that the serial
    reference path is itself the golden behaviour."""
    golden = json.loads(GOLDEN_PATH.read_text())
    current = build_digest(
        use_sharded_state=True,
        state_shards=shards,
        shard_executor=executor,
    )
    label = f"{shards} shards / {executor}"
    assert current["report"] == golden["report"], label
    assert current["digest"] == golden["digest"], label


def test_golden_campaign_is_nontrivial():
    """The pinned scenario must keep exercising the full pipeline —
    a degenerate golden run (no trips, no surge) would pin nothing."""
    golden = json.loads(GOLDEN_PATH.read_text())
    report = golden["report"]
    assert report["rounds"] > 100
    assert report["trips_completed"] > 0
    assert report["ewt_count"] > 0
    assert report["surge_active_fraction"] > 0.0
    assert len(report["supply_series"]) > 0


if __name__ == "__main__":
    if "--regen" in sys.argv[1:]:
        regenerate()
    else:
        print(__doc__)
        raise SystemExit(2)
