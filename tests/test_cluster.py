"""Distributed sweep dispatch: wire protocol + dispatcher/worker pair.

The acceptance contract under test:

* **Byte identity** — cluster-dispatched sweep outcomes (digests,
  metrics, spec order, failure outcomes) are byte-identical to a local
  ``run_sweep`` over the same specs; only ``wall_s`` (wall-clock
  metadata, excluded from ``CampaignOutcome.identity()``) may differ.
* **Nothing lost, nothing doubled** — a worker killed mid-campaign has
  its in-flight spec requeued and merged exactly once; late duplicate
  outcomes are dropped; retries are bounded by ``max_attempts`` and
  exhaustion yields a structured failure outcome, run_sweep's crash
  isolation shape.
* **Wire discipline** — length-prefixed canonical-JSON frames
  round-trip specs and outcomes exactly; truncation, oversize, and
  malformed payloads raise ``WireError``, never silently drop data.

Core tests run the real dispatcher/worker protocol over in-process
``socket.socketpair()`` streams (no port binding, so they work in
sandboxes); a smoke class exercises real listening sockets and the CLI
subprocess path, skipping where the environment forbids binding.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.serialize import canonical_json
from repro.parallel import wire
from repro.parallel.cluster import (
    ClusterWorker,
    SweepDispatcher,
    parse_hostport,
    run_cluster_sweep,
)
from repro.parallel.orchestrator import (
    CampaignOutcome,
    CampaignSpec,
    ensure_unique_keys,
    run_sweep,
)


def _tiny_spec(key: str, city: str = "manhattan", seed: int = 3,
               hours: float = 0.05, **kwargs) -> CampaignSpec:
    return CampaignSpec(
        key=key, city=city, seed=seed, hours=hours, max_clients=4,
        **kwargs,
    )


def _thread_executor(jobs: int) -> ThreadPoolExecutor:
    # Campaigns in-process: cheap, deterministic, and crucially the
    # identical code path (`execute_campaign`) the process pool runs.
    return ThreadPoolExecutor(max_workers=jobs)


async def _stream_pair():
    """Two connected (reader, writer) stream pairs over a socketpair."""
    left, right = socket.socketpair()
    reader_a, writer_a = await asyncio.open_connection(sock=left)
    reader_b, writer_b = await asyncio.open_connection(sock=right)
    return (reader_a, writer_a), (reader_b, writer_b)


async def _attach(dispatcher: SweepDispatcher, worker: ClusterWorker):
    """Wire a worker to a dispatcher in-process; returns both tasks."""
    (reader_a, writer_a), (reader_b, writer_b) = await _stream_pair()
    dispatcher_task = asyncio.create_task(
        dispatcher.handle_connection(reader_a, writer_a)
    )
    worker_task = asyncio.create_task(
        worker.handle_connection(reader_b, writer_b)
    )
    return [dispatcher_task, worker_task]


async def _teardown(tasks, grace: float = 5.0) -> None:
    """Let sessions drain, then cancel whatever is deliberately stuck."""
    if tasks:
        await asyncio.wait(tasks, timeout=grace)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)


def _run_cluster(specs, workers, *, timeout=60.0, grace=5.0,
                 **dispatcher_kwargs):
    """Dispatch ``specs`` to the given workers over socketpairs."""

    async def main():
        dispatcher = SweepDispatcher(specs, **dispatcher_kwargs)
        tasks = []
        for worker in workers:
            tasks += await _attach(dispatcher, worker)
        outcomes = await asyncio.wait_for(dispatcher.outcomes(), timeout)
        await _teardown(tasks, grace=grace)
        await dispatcher.aclose()
        for worker in workers:
            await worker.aclose()
        return dispatcher, outcomes

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_frame_roundtrip():
    message = {"type": "hello", "jobs": 3, "protocol": 1}

    async def main():
        reader = _reader_with(wire.encode_frame(message))
        first = await wire.read_frame(reader)
        second = await wire.read_frame(reader)
        return first, second

    first, second = asyncio.run(main())
    assert first == message
    assert second is None  # clean EOF at a frame boundary


def test_frame_uses_canonical_json_bytes():
    message = {"b": 1, "a": 2, "type": "next"}
    encoded = wire.encode_frame(message)
    assert encoded[4:] == canonical_json(message)
    assert int.from_bytes(encoded[:4], "big") == len(encoded) - 4


@pytest.mark.parametrize("raw, match", [
    (b"\x00\x00", "mid frame header"),
    (b"\x00\x00\x00\x10{}", "mid frame body"),
    (b"\xff\xff\xff\xff", "exceeds cap"),
    (b"\x00\x00\x00\x02[]", "typed message"),
    (b"\x00\x00\x00\x03abc", "not JSON"),
    (b"\x00\x00\x00\x02{}", "typed message"),
])
def test_malformed_frames_raise_wire_error(raw, match):
    async def main():
        await wire.read_frame(_reader_with(raw))

    with pytest.raises(wire.WireError, match=match):
        asyncio.run(main())


def test_encode_frame_rejects_oversized_payload():
    huge = {"type": "outcome", "blob": "x" * (wire.MAX_FRAME_BYTES + 1)}
    with pytest.raises(wire.WireError, match="exceeds cap"):
        wire.encode_frame(huge)


def test_spec_codec_roundtrips_exactly():
    spec = _tiny_spec(
        "codec", seed=11, out="logs/a.jsonl.gz",
        engine_flags=(("use_parallel_ping", True), ("state_shards", 3)),
    )
    assert wire.spec_from_wire(wire.spec_to_wire(spec)) == spec
    bare = _tiny_spec("bare")
    assert wire.spec_from_wire(wire.spec_to_wire(bare)) == bare
    # The wire form itself is canonical-JSON encodable.
    canonical_json(wire.spec_to_wire(spec))


def test_spec_codec_rejects_malformed_payloads():
    good = wire.spec_to_wire(_tiny_spec("x"))
    for mutilate in (
        lambda p: p.pop("key"),
        lambda p: p.update(seed="not-a-number"),
        lambda p: p.update(engine_flags=[["lonely"]]),
        lambda p: p.update(key=""),
    ):
        payload = json.loads(json.dumps(good))
        mutilate(payload)
        with pytest.raises(wire.WireError, match="malformed spec"):
            wire.spec_from_wire(payload)


def test_outcome_codec_roundtrips_and_tolerates_missing_wall_s():
    outcome = CampaignOutcome(
        key="k", ok=True, truth_digest="d" * 64,
        metrics={"rounds": 3.0}, out_path="x.jsonl", wall_s=1.25,
    )
    assert wire.outcome_from_wire(wire.outcome_to_wire(outcome)) == outcome
    # Pre-cluster outcome JSON had no wall_s: schema stays loadable.
    legacy = wire.outcome_to_wire(outcome)
    del legacy["wall_s"]
    revived = wire.outcome_from_wire(legacy)
    assert revived.wall_s is None
    assert revived.identity() == outcome.identity()
    with pytest.raises(wire.WireError, match="malformed outcome"):
        wire.outcome_from_wire({"ok": True})


def test_parse_hostport():
    assert parse_hostport("127.0.0.1:9001") == ("127.0.0.1", 9001)
    assert parse_hostport("[::1]:80") == ("[::1]", 80)
    for bad in ("nohost", ":9001", "host:", "host:port", "host:70000"):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_hostport(bad)


# ----------------------------------------------------------------------
# Dispatcher construction contracts
# ----------------------------------------------------------------------
def test_duplicate_keys_rejected_at_submit_time():
    specs = [_tiny_spec("dup"), _tiny_spec("dup", seed=4)]
    with pytest.raises(ValueError, match="duplicate campaign keys"):
        SweepDispatcher(specs)
    with pytest.raises(ValueError, match="duplicate campaign keys"):
        ensure_unique_keys(specs)


def test_dispatcher_parameter_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        SweepDispatcher([_tiny_spec("a")], max_attempts=0)
    with pytest.raises(ValueError, match="spec_timeout_s"):
        SweepDispatcher([_tiny_spec("a")], spec_timeout_s=0.0)


def test_empty_sweep_completes_immediately():
    async def main():
        dispatcher = SweepDispatcher([])
        return await asyncio.wait_for(dispatcher.outcomes(), 5)

    assert asyncio.run(main()) == []


def test_run_cluster_sweep_requires_workers():
    with pytest.raises(ValueError, match="at least one worker"):
        run_cluster_sweep([_tiny_spec("a")], [])


# ----------------------------------------------------------------------
# Byte identity: cluster dispatch vs local run_sweep
# ----------------------------------------------------------------------
class TestClusterByteIdentity:
    SPECS = [
        _tiny_spec("mhtn-s3"),
        _tiny_spec("mhtn-s4", seed=4),
        _tiny_spec("sf-s3", city="sf"),
        # A failing spec: its structured error outcome must cross the
        # wire byte-identical to the local one.
        _tiny_spec("broken", city="atlantis"),
    ]

    def test_outcomes_identical_to_local_sweep(self):
        local = run_sweep(self.SPECS, jobs=1)
        workers = [
            ClusterWorker(jobs=2, executor_factory=_thread_executor)
            for _ in range(2)
        ]
        dispatcher, clustered = _run_cluster(self.SPECS, workers)

        assert [o.key for o in clustered] == [s.key for s in self.SPECS]
        # Identity (everything except wall_s) is byte-identical — the
        # canonical-JSON bytes are the currency digests trade in.
        assert (
            canonical_json([o.identity() for o in clustered])
            == canonical_json([o.identity() for o in local])
        )
        assert [o.ok for o in clustered] == [True, True, True, False]
        assert clustered[3].error == local[3].error
        assert clustered[3].traceback == local[3].traceback
        # wall_s rides along as metadata on every executed campaign.
        assert all(o.wall_s is not None and o.wall_s >= 0
                   for o in clustered)
        assert dispatcher.workers_seen == 2
        assert dispatcher.requeues == 0
        assert dispatcher.duplicates_dropped == 0
        # Both workers were exercised and together ran every campaign.
        assert sum(w.campaigns_run for w in workers) == len(self.SPECS)

    def test_single_worker_single_job_matches_sequential(self):
        local = run_sweep(self.SPECS[:2], jobs=1)
        worker = ClusterWorker(jobs=1, executor_factory=_thread_executor)
        _, clustered = _run_cluster(self.SPECS[:2], [worker])
        assert ([o.identity() for o in clustered]
                == [o.identity() for o in local])


# ----------------------------------------------------------------------
# Worker death, requeue, exactly-once merge
# ----------------------------------------------------------------------
class _DyingWorker(ClusterWorker):
    """Aborts its connection (worker "killed") on a chosen spec key."""

    def __init__(self, die_on_key, die_times=1, **kwargs):
        super().__init__(**kwargs)
        self.die_on_key = die_on_key
        self.die_times = die_times
        self.deaths = 0

    async def _run_one(self, writer, index, spec):
        if spec.key == self.die_on_key and self.deaths < self.die_times:
            self.deaths += 1
            writer.transport.abort()
            return
        await super()._run_one(writer, index, spec)


class _StallingWorker(ClusterWorker):
    """Sits on a chosen spec (first N assignments) without answering."""

    def __init__(self, stall_on_key, stall_times=1, **kwargs):
        super().__init__(**kwargs)
        self.stall_on_key = stall_on_key
        self.stall_times = stall_times
        self.stalls = 0

    async def _execute(self, spec):
        if spec.key == self.stall_on_key and self.stalls < self.stall_times:
            self.stalls += 1
            await asyncio.sleep(3600.0)
        return await super()._execute(spec)


class TestRequeueSemantics:
    SPECS = [_tiny_spec("a"), _tiny_spec("b", seed=4), _tiny_spec("c", seed=5)]

    def test_worker_killed_mid_campaign_spec_requeued_once(self):
        local = run_sweep(self.SPECS, jobs=1)

        async def main():
            dispatcher = SweepDispatcher(self.SPECS)
            dying = _DyingWorker(
                "b", jobs=1, executor_factory=_thread_executor
            )
            first = await _attach(dispatcher, dying)
            # jobs=1 pulls specs one at a time: "a" completes, then the
            # connection is aborted mid-"b" — a worker kill with one
            # spec in flight.
            await asyncio.wait(first, timeout=30)
            assert dying.deaths == 1
            recovery = ClusterWorker(
                jobs=2, executor_factory=_thread_executor
            )
            second = await _attach(dispatcher, recovery)
            outcomes = await asyncio.wait_for(dispatcher.outcomes(), 60)
            await _teardown(first + second)
            await dispatcher.aclose()
            await dying.aclose()
            await recovery.aclose()
            return dispatcher, outcomes

        dispatcher, outcomes = asyncio.run(main())
        # The killed worker's spec was requeued, merged exactly once,
        # and the merged sweep is byte-identical to the local one.
        assert dispatcher.requeues == 1
        assert dispatcher.duplicates_dropped == 0
        assert ([o.identity() for o in outcomes]
                == [o.identity() for o in local])
        assert all(o.ok for o in outcomes)

    def test_timeout_requeues_to_free_slot_same_result(self):
        local = run_sweep(self.SPECS[:2], jobs=1)
        worker = _StallingWorker(
            "a", jobs=2, executor_factory=_thread_executor
        )
        dispatcher, outcomes = _run_cluster(
            self.SPECS[:2], [worker],
            spec_timeout_s=0.3, grace=0.3,
        )
        # First assignment of "a" stalled past the timeout; the retry
        # (second attempt, same worker's freed slot) completed it.
        assert dispatcher.timeouts == 1
        assert dispatcher.requeues == 1
        assert worker.stalls == 1
        assert ([o.identity() for o in outcomes]
                == [o.identity() for o in local])

    def test_retries_exhausted_becomes_structured_failure(self):
        worker = _StallingWorker(
            "a", stall_times=99, jobs=2, executor_factory=_thread_executor
        )
        dispatcher, outcomes = _run_cluster(
            self.SPECS[:2], [worker],
            spec_timeout_s=0.2, max_attempts=1, grace=0.3,
        )
        abandoned, sibling = outcomes
        assert not abandoned.ok
        assert abandoned.key == "a"
        assert "no outcome within" in abandoned.error
        assert "attempt 1/1" in abandoned.error
        assert "spec abandoned" in abandoned.error
        # Crash isolation: the sibling campaign is untouched.
        assert sibling.ok
        assert sibling.identity() == run_sweep(
            self.SPECS[1:2], jobs=1
        )[0].identity()

    def test_repeated_disconnects_exhaust_attempts(self):
        spec = [_tiny_spec("doomed")]

        async def main():
            dispatcher = SweepDispatcher(spec, max_attempts=2)
            tasks = []
            for _ in range(2):
                worker = _DyingWorker(
                    "doomed", die_times=99, jobs=1,
                    executor_factory=_thread_executor,
                )
                attached = await _attach(dispatcher, worker)
                tasks += attached
                await asyncio.wait(attached, timeout=30)
            outcomes = await asyncio.wait_for(dispatcher.outcomes(), 30)
            await _teardown(tasks)
            await dispatcher.aclose()
            return dispatcher, outcomes

        dispatcher, outcomes = asyncio.run(main())
        (outcome,) = outcomes
        assert not outcome.ok
        assert "worker connection lost mid-campaign" in outcome.error
        assert "attempt 2/2" in outcome.error
        assert dispatcher.requeues == 1  # first loss requeued, second gave up


# ----------------------------------------------------------------------
# Protocol-level adversaries (scripted peer, no ClusterWorker)
# ----------------------------------------------------------------------
class TestProtocolDiscipline:
    def test_late_duplicate_outcome_dropped(self):
        specs = [_tiny_spec("solo")]
        local = run_sweep(specs, jobs=1)

        async def main():
            dispatcher = SweepDispatcher(specs)
            (ra, wa), (rb, wb) = await _stream_pair()
            handler = asyncio.create_task(
                dispatcher.handle_connection(ra, wa)
            )
            wire.write_frame(wb, wire.hello_message(1))
            wire.write_frame(wb, wire.next_message())
            await wb.drain()
            assignment = await wire.read_frame(rb)
            assert assignment["type"] == wire.MSG_SPEC
            outcome = local[0]
            # Answer twice: only the first merge may count.
            wire.write_frame(wb, wire.outcome_message(0, outcome))
            wire.write_frame(wb, wire.outcome_message(0, outcome))
            wire.write_frame(wb, wire.next_message())
            await wb.drain()
            done = await wire.read_frame(rb)
            assert done["type"] == wire.MSG_DONE
            outcomes = await asyncio.wait_for(dispatcher.outcomes(), 10)
            wb.close()
            await _teardown([handler])
            await dispatcher.aclose()
            return dispatcher, outcomes

        dispatcher, outcomes = asyncio.run(main())
        assert dispatcher.duplicates_dropped == 1
        assert [o.identity() for o in outcomes] == [local[0].identity()]

    def test_protocol_mismatch_rejected_then_good_worker_completes(self):
        specs = [_tiny_spec("solo")]

        async def main():
            dispatcher = SweepDispatcher(specs)
            (ra, wa), (rb, wb) = await _stream_pair()
            handler = asyncio.create_task(
                dispatcher.handle_connection(ra, wa)
            )
            wire.write_frame(
                wb, {"type": wire.MSG_HELLO, "protocol": 99, "jobs": 1}
            )
            wire.write_frame(wb, wire.next_message())
            await wb.drain()
            # The dispatcher hangs up instead of assigning work.
            assert await wire.read_frame(rb) is None
            await _teardown([handler])
            assert dispatcher.workers_seen == 0
            worker = ClusterWorker(
                jobs=1, executor_factory=_thread_executor
            )
            tasks = await _attach(dispatcher, worker)
            outcomes = await asyncio.wait_for(dispatcher.outcomes(), 60)
            await _teardown(tasks)
            await dispatcher.aclose()
            await worker.aclose()
            return outcomes

        outcomes = asyncio.run(main())
        assert [o.ok for o in outcomes] == [True]

    def test_mismatched_outcome_key_treated_as_dead_worker(self):
        specs = [_tiny_spec("real")]

        async def main():
            dispatcher = SweepDispatcher(specs, max_attempts=1)
            (ra, wa), (rb, wb) = await _stream_pair()
            handler = asyncio.create_task(
                dispatcher.handle_connection(ra, wa)
            )
            wire.write_frame(wb, wire.hello_message(1))
            wire.write_frame(wb, wire.next_message())
            await wb.drain()
            assert (await wire.read_frame(rb))["type"] == wire.MSG_SPEC
            forged = CampaignOutcome(key="forged", ok=True)
            wire.write_frame(wb, wire.outcome_message(0, forged))
            await wb.drain()
            outcomes = await asyncio.wait_for(dispatcher.outcomes(), 10)
            wb.close()
            await _teardown([handler])
            await dispatcher.aclose()
            return outcomes

        (outcome,) = asyncio.run(main())
        # The forged outcome is refused; with max_attempts=1 the spec
        # is abandoned as a structured failure, never a wrong merge.
        assert not outcome.ok
        assert outcome.key == "real"
        assert "spec abandoned" in outcome.error


# ----------------------------------------------------------------------
# Worker-side crash isolation
# ----------------------------------------------------------------------
class _BrokenExecutor:
    def submit(self, fn, *args):
        raise RuntimeError("pool is broken")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_worker_executor_failure_is_a_structured_outcome():
    specs = [_tiny_spec("a")]
    worker = ClusterWorker(jobs=1, executor_factory=lambda n: _BrokenExecutor())
    dispatcher, outcomes = _run_cluster(specs, [worker])
    (outcome,) = outcomes
    assert not outcome.ok
    assert outcome.key == "a"
    assert "pool is broken" in outcome.error
    assert outcome.traceback is not None
    assert dispatcher.requeues == 0


# ----------------------------------------------------------------------
# Real sockets + CLI subprocesses (skipped where binding is forbidden)
# ----------------------------------------------------------------------
def _sockets_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


class TestRealSocketCluster:
    SPECS = [_tiny_spec("m3"), _tiny_spec("m4", seed=4)]

    def _skip_unless_sockets(self):
        if not _sockets_available():
            pytest.skip("socket binding unavailable in this sandbox")

    def test_worker_listens_dispatcher_dials(self):
        self._skip_unless_sockets()
        local = run_sweep(self.SPECS, jobs=1)

        async def main():
            worker = ClusterWorker(jobs=2, executor_factory=_thread_executor)
            host, port = await worker.listen("127.0.0.1", 0)
            dispatcher = SweepDispatcher(self.SPECS)
            await dispatcher.dial(host, port)
            outcomes = await asyncio.wait_for(dispatcher.outcomes(), 60)
            await dispatcher.aclose()
            await worker.aclose()
            return outcomes

        outcomes = asyncio.run(main())
        assert ([o.identity() for o in outcomes]
                == [o.identity() for o in local])

    def test_dispatcher_listens_worker_connects(self):
        self._skip_unless_sockets()
        local = run_sweep(self.SPECS, jobs=1)

        async def main():
            dispatcher = SweepDispatcher(self.SPECS)
            host, port = await dispatcher.listen("127.0.0.1", 0)
            worker = ClusterWorker(jobs=2, executor_factory=_thread_executor)
            session = asyncio.create_task(worker.connect(host, port))
            outcomes = await asyncio.wait_for(dispatcher.outcomes(), 60)
            await asyncio.wait_for(session, 10)
            await dispatcher.aclose()
            await worker.aclose()
            return outcomes

        outcomes = asyncio.run(main())
        assert ([o.identity() for o in outcomes]
                == [o.identity() for o in local])

    def test_cli_cluster_survives_worker_kill(self, tmp_path):
        """Two `repro worker` subprocesses, one SIGKILLed mid-sweep.

        The CLI smoke the CI cluster job runs: digests from the cluster
        dispatch must equal the local run_sweep digests, and the sweep
        must complete despite losing a worker.
        """
        self._skip_unless_sockets()
        seeds = [3, 4, 5, 6]
        specs = [
            CampaignSpec(
                key=f"manhattan-s{seed}", city="manhattan", seed=seed,
                hours=0.05, warmup_hours=0.0, ping_interval_s=5.0,
                jitter=0.25,
                out=str(tmp_path / f"mhtn.s{seed}.jsonl"),
            )
            for seed in seeds
        ]
        expected = {
            o.key: o.truth_digest for o in run_sweep(
                [dataclasses.replace(s, out=None) for s in specs], jobs=1
            )
        }

        procs = []
        addresses = []
        try:
            for _ in range(2):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "worker",
                     "--listen", "127.0.0.1:0", "--jobs", "1"],
                    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                    text=True, env=_worker_env(),
                )
                procs.append(proc)
                line = proc.stdout.readline()
                assert "listening on" in line, line
                addresses.append(line.split("listening on ")[1].split()[0])

            killer = _KillAfter(procs[1], delay_s=1.0)
            killer.start()
            outcomes = run_cluster_sweep(specs, addresses)
            killer.join()
        finally:
            for proc in procs:
                proc.kill()
                proc.wait(timeout=10)

        assert [o.key for o in outcomes] == [s.key for s in specs]
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert {o.key: o.truth_digest for o in outcomes} == expected


def _worker_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class _KillAfter(threading.Thread):
    """SIGKILL a worker subprocess after a delay, mid-sweep."""

    def __init__(self, proc, delay_s):
        super().__init__(daemon=True)
        self.proc = proc
        self.delay_s = delay_s

    def run(self):
        time.sleep(self.delay_s)
        self.proc.send_signal(signal.SIGKILL)
