"""Tests for area discovery, cross-correlation, and forecasting."""

import math
import random

import numpy as np
import pytest

from repro.geo.latlon import LatLon
from repro.analysis.areas import (
    area_assignment,
    discover_surge_areas,
)
from repro.analysis.correlate import cross_correlation, strongest_shift
from repro.analysis.forecast import (
    build_dataset,
    fit_raw,
    fit_rush,
    fit_threshold,
    is_rush_interval,
)


class TestAreaDiscovery:
    def grid_points(self, n=6, spacing_m=200.0):
        origin = LatLon(40.75, -73.99)
        return [
            origin.offset(north_m=i * spacing_m, east_m=j * spacing_m)
            for i in range(n)
            for j in range(n)
        ]

    def test_two_lockstep_halves(self):
        points = self.grid_points(n=4)
        series = []
        for p in points:
            if p.lon < -73.9865:  # western half
                series.append([1.0, 1.5, 1.2, 1.0])
            else:
                series.append([1.0, 1.0, 1.7, 1.3])
        components = discover_surge_areas(points, series,
                                          neighbor_distance_m=300.0)
        assert len(components) == 2
        assert sorted(len(c) for c in components) == [8, 8]

    def test_identical_series_merge_to_one(self):
        points = self.grid_points(n=3)
        series = [[1.0, 1.4]] * len(points)
        components = discover_surge_areas(points, series,
                                          neighbor_distance_m=300.0)
        assert len(components) == 1

    def test_distance_threshold_blocks_union(self):
        points = [LatLon(40.75, -73.99), LatLon(40.76, -73.99)]  # ~1.1 km
        series = [[1.5], [1.5]]
        components = discover_surge_areas(points, series,
                                          neighbor_distance_m=300.0)
        assert len(components) == 2

    def test_assignment_maps_all_points(self):
        points = self.grid_points(n=3)
        series = [[1.0]] * len(points)
        components = discover_surge_areas(points, series, 300.0)
        assignment = area_assignment(points, components)
        assert set(assignment) == set(range(len(points)))

    def test_validation(self):
        with pytest.raises(ValueError):
            discover_surge_areas([LatLon(0, 0)], [], 100.0)
        with pytest.raises(ValueError):
            discover_surge_areas([LatLon(0, 0)], [[1.0]], 0.0)


class TestCrossCorrelation:
    def test_negative_correlation_at_zero_shift(self):
        rng = random.Random(0)
        surge = {}
        feature = {}
        for i in range(200):
            s = 1.0 + rng.random()
            surge[i] = s
            feature[i] = 10.0 - 4.0 * s + rng.gauss(0, 0.1)
        points = cross_correlation(surge, feature, max_shift_intervals=6)
        assert len(points) == 13
        best = strongest_shift(points)
        assert best.shift_minutes == 0.0
        assert best.coefficient < -0.9
        assert best.p_value < 1e-6

    def test_lagged_feature_peaks_at_lag(self):
        rng = random.Random(1)
        driver = {i: rng.random() for i in range(300)}
        surge = {i: 1.0 + driver[i] for i in driver}
        # feature(t) reproduces the driver 3 intervals later.
        feature = {i + 3: driver[i] for i in driver}
        points = cross_correlation(surge, feature, max_shift_intervals=6)
        best = strongest_shift(points)
        assert best.shift_minutes == 15.0
        assert best.coefficient > 0.99

    def test_insufficient_overlap_gives_nan(self):
        points = cross_correlation({0: 1.0, 1: 1.2}, {50: 3.0},
                                   max_shift_intervals=2)
        assert all(math.isnan(p.coefficient) for p in points)
        with pytest.raises(ValueError):
            strongest_shift(points)

    def test_rejects_negative_max_shift(self):
        with pytest.raises(ValueError):
            cross_correlation({}, {}, max_shift_intervals=-1)


class TestForecastDataset:
    def test_alignment_and_cleaning(self):
        surge = {0: 1.0, 1: 1.0, 2: 1.5, 3: 1.0, 4: 1.0, 5: 1.0}
        sd = {i: float(i) for i in range(6)}
        ewt = {i: 2.0 for i in range(6)}
        rows = build_dataset(surge, sd, ewt)
        targets = {r.interval_index: r.next_surge for r in rows}
        # Row t=1 (target 1.5 at t=2) kept; t=2 (target 1.0 adjacent to
        # surge) kept; t=0 (target 1.0 at t=1, adjacent to surge at t=2)
        # kept; t=3, t=4 dropped (flat-1 neighbourhood).
        assert 1 in targets and 2 in targets
        assert 0 in targets  # surge.get(idx+2) = surge[2] > 1
        assert 3 not in targets or surge.get(5, 1.0) > 1.0
        assert 4 not in targets

    def test_missing_features_skipped(self):
        surge = {0: 1.2, 1: 1.3, 2: 1.4}
        rows = build_dataset(surge, {0: 1.0, 1: 1.0}, {0: 2.0})
        assert [r.interval_index for r in rows] == [0]


class TestForecastFitting:
    def linear_rows(self, n=200, noise=0.0, seed=0):
        rng = random.Random(seed)
        surge = {}
        sd = {}
        ewt = {}
        for i in range(n):
            sd[i] = rng.uniform(-5, 5)
            ewt[i] = rng.uniform(1, 8)
            surge[i] = 1.1 + 0.05 * rng.random()
        # Target is an exact linear function of the inputs.
        surge_next = {
            i + 1: max(
                1.0,
                1.0 - 0.04 * sd[i] + 0.03 * ewt[i] + 0.2 * surge[i]
                + rng.gauss(0, noise),
            )
            for i in range(n)
        }
        merged = dict(surge)
        merged.update(surge_next)
        # keep features only where defined
        return build_dataset(merged, sd, ewt)

    def test_perfect_linear_data_r2_near_one(self):
        rows = self.linear_rows(noise=0.0)
        result = fit_raw(rows)
        assert result.r2 > 0.98
        assert result.theta_sd_diff == pytest.approx(-0.04, abs=0.01)
        assert result.theta_ewt == pytest.approx(0.03, abs=0.01)

    def test_noise_lowers_r2(self):
        noisy = fit_raw(self.linear_rows(noise=0.3, seed=1))
        clean = fit_raw(self.linear_rows(noise=0.0, seed=1))
        assert noisy.r2 < clean.r2

    def test_prediction_roundtrip(self):
        rows = self.linear_rows(noise=0.0)
        result = fit_raw(rows)
        row = rows[10]
        predicted = result.predict(row.sd_diff, row.ewt, row.surge)
        assert predicted == pytest.approx(row.next_surge, abs=0.05)

    def test_threshold_filters_non_surging(self):
        rows = self.linear_rows()
        result = fit_threshold(rows)
        assert result.n == sum(1 for r in rows if r.surge > 1.0)

    def test_rush_filters_by_hour(self):
        rows = self.linear_rows(n=600)
        result = fit_rush(rows)
        assert 0 < result.n < len(rows)

    def test_too_few_rows_raises(self):
        with pytest.raises(ValueError):
            fit_raw([])

    def test_is_rush_interval(self):
        assert is_rush_interval(int(7 * 12))     # 7 am
        assert not is_rush_interval(int(12 * 12))  # noon
        assert is_rush_interval(int(17 * 12))    # 5 pm
        assert not is_rush_interval(int(2 * 12))   # 2 am
        # Day boundaries wrap.
        assert is_rush_interval(int((24 + 7) * 12))
