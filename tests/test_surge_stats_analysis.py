"""Tests for surge statistics and jitter detection (analysis side)."""

import pytest

from repro.analysis.jitter import (
    detect_jitter_events,
    drop_fraction,
    drop_to_one_fraction,
    simultaneity_histogram,
)
from repro.analysis.surge_stats import (
    interval_multipliers,
    mean_multiplier,
    multiplier_distribution,
    stair_step_fraction,
    surge_episodes,
    surge_fraction,
    update_moments,
)


def series_from_intervals(values, interval_s=300.0, dt=5.0, publish_s=60.0):
    """A 5 s-sampled stream that switches to values[i] at
    i*interval + publish_s (the surge clock's behaviour)."""
    out = []
    t = 0.0
    end = len(values) * interval_s
    current = 1.0
    while t < end:
        idx = int(t // interval_s)
        if t % interval_s >= publish_s:
            current = values[idx]
        elif idx > 0:
            current = values[idx - 1]
        out.append((t, current))
        t += dt
    return out


class TestDistributionsAndFractions:
    def test_multiplier_distribution(self):
        series = [(0, 1.0), (5, 1.5)]
        assert multiplier_distribution(series) == [1.0, 1.5]

    def test_surge_fraction(self):
        series = [(0, 1.0), (5, 1.5), (10, 1.0), (15, 2.0)]
        assert surge_fraction(series) == 0.5

    def test_mean_multiplier(self):
        series = [(0, 1.0), (5, 1.4)]
        assert mean_multiplier(series) == pytest.approx(1.2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            surge_fraction([])
        with pytest.raises(ValueError):
            mean_multiplier([])


class TestEpisodes:
    def test_episode_extraction(self):
        series = series_from_intervals([1.0, 1.5, 1.5, 1.0])
        episodes = surge_episodes(series)
        assert len(episodes) == 1
        # Surge starts at interval 1's publish and ends at interval 3's.
        assert episodes[0].duration_s == pytest.approx(600.0, abs=10.0)

    def test_stair_step_without_jitter(self):
        series = series_from_intervals(
            [1.0, 1.3, 1.0, 1.6, 1.6, 1.0, 1.2, 1.0]
        )
        episodes = surge_episodes(series)
        assert len(episodes) == 3
        assert stair_step_fraction(episodes) == 1.0

    def test_stair_step_fraction_rejects_empty(self):
        with pytest.raises(ValueError):
            stair_step_fraction([])


class TestUpdateMoments:
    def test_clock_updates_land_at_publish_moment(self):
        series = series_from_intervals([1.0, 1.5, 1.0, 2.0], publish_s=60.0)
        moments = update_moments(series)
        assert moments
        for m in moments:
            assert m == pytest.approx(60.0, abs=5.1)

    def test_no_changes_no_moments(self):
        series = series_from_intervals([1.0, 1.0, 1.0])
        assert update_moments(series) == []


class TestIntervalMultipliers:
    def test_majority_value_wins(self):
        series = series_from_intervals([1.0, 1.5], publish_s=60.0)
        clock = interval_multipliers(series)
        assert clock[0] == 1.0
        assert clock[1] == 1.5  # despite the 60 s carried-over head

    def test_jitter_blip_ignored(self):
        series = list(series_from_intervals([1.0, 1.8], publish_s=60.0))
        # Inject a 25 s stale window mid-interval-1.
        jittered = [
            (t, 1.0 if 450.0 <= t < 475.0 else m) for t, m in series
        ]
        clock = interval_multipliers(jittered)
        assert clock[1] == 1.8


class TestJitterDetection:
    def make_jittered(self, publish_s=60.0):
        series = series_from_intervals(
            [1.0, 1.8, 1.8, 1.0], publish_s=publish_s
        )
        return [
            (t, 1.0 if 450.0 <= t < 475.0 else m) for t, m in series
        ]

    def test_detects_the_blip(self):
        events = detect_jitter_events(self.make_jittered(), client_id="c0")
        assert len(events) == 1
        event = events[0]
        assert event.stale_value == 1.0
        assert event.surrounding_value == 1.8
        assert event.duration_s == pytest.approx(25.0, abs=5.1)
        assert event.interval_index == 1
        assert event.matches_previous_interval  # interval 0 was 1.0
        assert event.lowered_price

    def test_clock_changes_are_not_events(self):
        series = series_from_intervals([1.0, 1.5, 1.0, 2.0, 1.0])
        assert detect_jitter_events(series) == []

    def test_empty_series(self):
        assert detect_jitter_events([]) == []

    def test_drop_fractions(self):
        events = detect_jitter_events(self.make_jittered(), client_id="c0")
        assert drop_fraction(events) == 1.0
        assert drop_to_one_fraction(events) == 1.0
        with pytest.raises(ValueError):
            drop_fraction([])

    def test_simultaneity_histogram(self):
        e1 = detect_jitter_events(self.make_jittered(), client_id="a")
        # Client b has a blip at a different moment.
        series_b = [
            (t, 1.0 if 500.0 <= t < 525.0 else m)
            for t, m in series_from_intervals([1.0, 1.8, 1.8, 1.0])
        ]
        e2 = detect_jitter_events(series_b, client_id="b")
        hist = simultaneity_histogram({"a": e1, "b": e2})
        assert hist == {1: 2}  # two events, each seen by one client

    def test_simultaneity_overlapping(self):
        e1 = detect_jitter_events(self.make_jittered(), client_id="a")
        e2 = detect_jitter_events(self.make_jittered(), client_id="b")
        hist = simultaneity_histogram({"a": e1, "b": e2})
        assert hist == {2: 2}
