"""Failure injection: damaged logs, hostile inputs, edge conditions.

A measurement archive accumulates over weeks; partial writes, truncated
uploads, and concatenation mistakes happen.  The loaders must fail
loudly (or skip knowingly) rather than silently corrupt figures.
"""

import json

import pytest

from repro.geo.latlon import LatLon
from repro.marketplace.types import CarType
from repro.measurement.records import (
    CampaignLog,
    ClientSample,
    RoundRecord,
)


@pytest.fixture
def small_log():
    log = CampaignLog(
        city="inject",
        client_positions={"c00": LatLon(40.75, -73.99)},
        ping_interval_s=5.0,
    )
    for k in range(5):
        log.rounds.append(RoundRecord(
            t=5.0 * k,
            samples={
                ("c00", CarType.UBERX): ClientSample(
                    1.0, 2.0, (f"car{k}",)
                )
            },
            cars={f"car{k}": (40.75, -73.99)},
        ))
    return log


class TestCorruptHeaders:
    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ValueError, match="bad header"):
            CampaignLog.load(path)

    def test_wrong_schema_header(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text(json.dumps({"foo": 1}) + "\n")
        with pytest.raises(ValueError, match="bad header"):
            CampaignLog.load(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            CampaignLog.load(path)

    def test_header_damage_fatal_even_lenient(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(ValueError):
            CampaignLog.load(path, strict=False)


class TestCorruptRounds:
    def write_with_damage(self, log, tmp_path, mutate):
        path = tmp_path / "log.jsonl"
        log.save(path)
        lines = path.read_text().splitlines()
        lines = mutate(lines)
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_truncated_final_line_strict(self, small_log, tmp_path):
        path = self.write_with_damage(
            small_log, tmp_path,
            lambda lines: lines[:-1] + [lines[-1][: len(lines[-1]) // 2]],
        )
        with pytest.raises(ValueError, match="line 6"):
            CampaignLog.load(path)

    def test_truncated_final_line_lenient(self, small_log, tmp_path):
        path = self.write_with_damage(
            small_log, tmp_path,
            lambda lines: lines[:-1] + [lines[-1][: len(lines[-1]) // 2]],
        )
        restored = CampaignLog.load(path, strict=False)
        assert len(restored.rounds) == 4  # lost exactly the damaged round

    def test_mid_file_corruption_lenient_keeps_rest(
        self, small_log, tmp_path
    ):
        def mutate(lines):
            lines[3] = "not json at all"
            return lines
        path = self.write_with_damage(small_log, tmp_path, mutate)
        restored = CampaignLog.load(path, strict=False)
        assert len(restored.rounds) == 4
        times = [r.t for r in restored.rounds]
        assert 10.0 not in times  # round 3 (t=10) was the damaged one

    def test_unknown_car_type_rejected(self, small_log, tmp_path):
        def mutate(lines):
            lines[1] = lines[1].replace("uberX", "uberZeppelin")
            return lines
        path = self.write_with_damage(small_log, tmp_path, mutate)
        with pytest.raises(ValueError, match="line 2"):
            CampaignLog.load(path)


class TestHostileInputsElsewhere:
    def test_trace_with_binary_garbage(self, tmp_path):
        from repro.taxi.trace import read_trace
        path = tmp_path / "trace.csv"
        path.write_bytes(b"\x00\x01\x02\xff\xfe")
        with pytest.raises((ValueError, UnicodeDecodeError)):
            read_trace(path)

    def test_fleet_rejects_empty_world_duration(self):
        from conftest import toy_config
        from repro.marketplace.engine import MarketplaceEngine
        from repro.measurement.fleet import Fleet, MarketplaceWorld
        fleet = Fleet([LatLon(40.75, -73.99)])
        world = MarketplaceWorld(MarketplaceEngine(toy_config(), seed=1))
        with pytest.raises(ValueError):
            fleet.run(world, duration_s=-5.0)

    def test_analysis_handles_single_round_log(self):
        from repro.analysis.supply_demand import estimate_supply_demand
        log = CampaignLog("x", {"c00": LatLon(40.75, -73.99)}, 5.0)
        log.rounds.append(RoundRecord(
            t=0.0,
            samples={("c00", CarType.UBERX): ClientSample(1.0, 2.0, ())},
            cars={},
        ))
        estimates = estimate_supply_demand(log)
        assert len(estimates) == 1
        assert estimates[0].supply == 0
