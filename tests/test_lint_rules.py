"""Per-rule tests for the static analysis passes.

Both series are covered: the determinism rules (REP001-REP006) and the
concurrency/async hazard rules (REP101-REP105).  Every rule gets a
paired fire / no-fire fixture under ``tests/lint_fixtures/``; the
catalogue in ``docs/static_analysis.md`` and the combined rule registry
must stay in one-to-one correspondence.
"""

import re
from pathlib import Path

import pytest

from repro.devtools.concurrency import CONCURRENCY_RULES
from repro.devtools.lint import (
    ALL_CODE_SUMMARIES,
    ALL_LINT_RULES,
    explain_rule,
    run_lint,
)
from repro.devtools.rules import ALL_RULES, META_CODE

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
DOCS = Path(__file__).resolve().parent.parent / "docs" / "static_analysis.md"

RULE_CODES = [rule.code for rule in ALL_LINT_RULES]


def lint_codes(path):
    """All finding codes for one fixture (suppressed included)."""
    result = run_lint([path])
    return [f.code for f in result.findings]


# ----------------------------------------------------------------------
# Fire / no-fire pairs
# ----------------------------------------------------------------------
FIRE_EXPECTATIONS = {
    # code -> (fixture, minimum number of findings of that code)
    "REP001": ("rep001_fire.py", 6),
    "REP002": ("rep002_fire.py", 5),
    "REP003": ("rep003_fire.py", 2),
    "REP004": ("rep004_fire.py", 3),
    "REP005": ("rep005_fire.py", 5),
    "REP006": ("marketplace/rep006_fire.py", 2),
    "REP101": ("rep101_fire.py", 3),
    "REP102": ("rep102_fire.py", 2),
    "REP103": ("service/rep103_fire.py", 4),
    "REP104": ("rep104_fire.py", 4),
    "REP105": ("rep105_fire.py", 3),
}

OK_FIXTURES = {
    "REP001": "rep001_ok.py",
    "REP002": "rep002_ok.py",
    "REP003": "rep003_ok.py",
    "REP004": "rep004_ok.py",
    "REP005": "rep005_ok.py",
    "REP006": "marketplace/rep006_ok.py",
    "REP101": "rep101_ok.py",
    "REP102": "rep102_ok.py",
    "REP103": "service/rep103_ok.py",
    "REP104": "rep104_ok.py",
    "REP105": "rep105_ok.py",
}


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_fires_on_fixture(code):
    fixture, minimum = FIRE_EXPECTATIONS[code]
    codes = lint_codes(FIXTURES / fixture)
    assert codes.count(code) >= minimum, (
        f"{fixture} should produce >= {minimum} {code} findings, "
        f"got {codes}"
    )


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_quiet_on_clean_fixture(code):
    fixture = OK_FIXTURES[code]
    result = run_lint([FIXTURES / fixture])
    assert result.findings == [], (
        f"{fixture} should lint clean, got "
        f"{[f.render() for f in result.findings]}"
    )


def test_every_rule_has_both_fixtures():
    for code in RULE_CODES:
        assert code in FIRE_EXPECTATIONS
        assert code in OK_FIXTURES
        assert (FIXTURES / FIRE_EXPECTATIONS[code][0]).is_file()
        assert (FIXTURES / OK_FIXTURES[code]).is_file()


def test_registry_is_both_series_in_order():
    assert RULE_CODES == [r.code for r in ALL_RULES] + [
        r.code for r in CONCURRENCY_RULES
    ]


# ----------------------------------------------------------------------
# Specific rule behaviours worth pinning beyond fire/no-fire
# ----------------------------------------------------------------------
def test_rep001_seeded_constructions_pass(tmp_path):
    f = tmp_path / "seeded.py"
    f.write_text(
        "import random\n"
        "import numpy as np\n"
        "rng = random.Random  # class reference, not a draw\n"
        "def make(seed):\n"
        "    return random.Random(seed), np.random.default_rng(seed)\n"
    )
    assert lint_codes(f) == []


def test_rep002_exempts_benchmarks_paths(tmp_path):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    f = bench_dir / "bench_thing.py"
    f.write_text("import time\n\ndef t():\n    return time.time()\n")
    assert lint_codes(f) == []
    g = tmp_path / "engine_thing.py"
    g.write_text("import time\n\ndef t():\n    return time.time()\n")
    assert lint_codes(g) == ["REP002"]


def test_rep003_requires_rng_or_log_in_scope(tmp_path):
    f = tmp_path / "noscope.py"
    f.write_text(
        "def count(items):\n"
        "    out = []\n"
        "    for x in set(items):\n"
        "        out.append(x)\n"
        "    return out\n"
    )
    assert lint_codes(f) == []


def test_rep004_pow_half_only_fires_next_to_np_sqrt(tmp_path):
    plain = tmp_path / "plain.py"
    plain.write_text("def norm(x, y):\n    return (x * x + y * y) ** 0.5\n")
    assert lint_codes(plain) == []
    mixed = tmp_path / "mixed.py"
    mixed.write_text(
        "import numpy as np\n"
        "def norm(x, y):\n"
        "    return (x * x + y * y) ** 0.5\n"
        "def anorm(x):\n"
        "    return np.sqrt(x)\n"
    )
    assert lint_codes(mixed) == ["REP004"]


def test_rep006_skips_matrix_check_without_project(tmp_path):
    mp = tmp_path / "marketplace"
    mp.mkdir()
    f = mp / "engine.py"
    # Branched flag, but no pyproject.toml above tmp_path: only the
    # dead-flag half runs, so this is clean even though the flag is not
    # in any matrix file.
    f.write_text(
        "class E:\n"
        "    def __init__(self, use_warp: bool = True) -> None:\n"
        "        self.mode = 1 if use_warp else 0\n"
    )
    assert run_lint([f], flag_matrix_text=None).findings == []
    # With a matrix supplied that lacks the flag, the parity half fires.
    res = run_lint([f], flag_matrix_text="use_spatial_index only here")
    assert [x.code for x in res.findings] == ["REP006"]


def test_rep101_event_loop_guard_requires_async(tmp_path):
    f = tmp_path / "loopstate.py"
    f.write_text(
        "class Acc:\n"
        "    def __init__(self):\n"
        "        self._pending = []  # guarded-by: <event-loop>\n"
        "    async def submit(self, x):\n"
        "        self._pending.append(x)\n"
        "    def peek(self):\n"
        "        return len(self._pending)\n"
    )
    result = run_lint([f])
    assert [x.code for x in result.findings] == ["REP101"]
    assert "async" in result.findings[0].message
    # The async method's access is the one that did NOT fire.
    assert result.findings[0].line == 7


def test_rep101_annotated_method_body_checked_as_if_held(tmp_path):
    f = tmp_path / "heldbody.py"
    f.write_text(
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._spend = {}  # guarded-by: _lock\n"
        "        self._lock = threading.Lock()\n"
        "    def _live(self, k):  # guarded-by: _lock\n"
        "        return self._spend.get(k)\n"
        "    def read(self, k):\n"
        "        with self._lock:\n"
        "            return self._live(k)\n"
    )
    assert lint_codes(f) == []


def test_rep102_from_import_name_form_fires(tmp_path):
    f = tmp_path / "spawn.py"
    f.write_text(
        "from asyncio import create_task\n"
        "async def go(worker):\n"
        "    create_task(worker())\n"
    )
    assert lint_codes(f) == ["REP102"]


def test_rep103_only_scopes_service_paths(tmp_path):
    f = tmp_path / "engine.py"
    f.write_text(
        "import time\n"
        "async def poll():\n"
        "    time.sleep(0.1)\n"
    )
    # Not under a service/ directory: REP103 stays quiet (the sleep is
    # still an event-loop stall, but only the service layer's contract
    # demands the async discipline).
    assert lint_codes(f) == []


def test_rep104_only_checks_dispatched_functions(tmp_path):
    f = tmp_path / "plainwrites.py"
    f.write_text(
        "class F:\n"
        "    def __init__(self, arr):\n"
        "        self.arr = arr\n"
        "    def reset(self):\n"
        "        self.arr[:] = 0\n"
        "        self.count = 0\n"
    )
    # reset() is never handed to map_ordered/run_in_executor, so its
    # whole-array write is the single-threaded owner's business.
    assert lint_codes(f) == []


def test_rep105_submit_on_non_executor_receiver_ignored(tmp_path):
    f = tmp_path / "notpool.py"
    f.write_text(
        "def enqueue(rounds, request):\n"
        "    rounds.submit(request)\n"
    )
    # `rounds.submit` is the service accumulator, not an executor: no
    # future is being dropped.
    assert lint_codes(f) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_with_justification_silences():
    result = run_lint([FIXTURES / "suppression_ok.py"])
    assert result.active == []
    assert [f.code for f in result.suppressed] == ["REP004"]
    assert result.suppressed[0].justification


def test_suppression_without_justification_does_not_silence():
    result = run_lint([FIXTURES / "suppression_fire.py"])
    codes = sorted(f.code for f in result.active)
    assert codes == [META_CODE, "REP004"]
    assert result.suppressed == []


def test_stale_suppression_reports_meta():
    result = run_lint([FIXTURES / "suppression_stale.py"])
    assert [f.code for f in result.active] == [META_CODE]
    assert "stale" in result.active[0].message


def test_stale_suppression_names_each_unused_code(tmp_path):
    f = tmp_path / "partial.py"
    f.write_text(
        "import math\n"
        "def d(a, b):\n"
        "    return math.hypot(a, b)"
        "  # repro: noqa=REP004,REP002 -- hypot is deliberate here\n"
    )
    result = run_lint([f])
    # REP004 matched (and is suppressed); REP002 never fired, so the
    # stale half of the comma list is reported by name.
    assert [x.code for x in result.suppressed] == ["REP004"]
    assert [x.code for x in result.active] == [META_CODE]
    assert "REP002" in result.active[0].message
    assert "REP004" not in result.active[0].message


def test_concurrency_only_pass_ignores_foreign_suppressions(tmp_path):
    f = tmp_path / "justified.py"
    f.write_text(
        "import math\n"
        "def d(a, b):\n"
        "    return math.hypot(a, b)"
        "  # repro: noqa=REP004 -- circular stats, no numpy mirror\n"
    )
    # The concurrency pass never evaluates REP004, so it must not call
    # the suppression stale.
    result = run_lint([f], rules=CONCURRENCY_RULES)
    assert result.findings == []


def test_unparseable_file_reports_meta(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def broken(:\n")
    result = run_lint([f])
    assert [x.code for x in result.findings] == [META_CODE]
    assert "parse" in result.findings[0].message


# ----------------------------------------------------------------------
# --explain
# ----------------------------------------------------------------------
def test_explain_returns_doc_section_for_every_code():
    for code in RULE_CODES + [META_CODE]:
        entry = explain_rule(code)
        assert entry is not None
        assert code in entry


def test_explain_unknown_code_returns_none():
    assert explain_rule("REP999") is None


# ----------------------------------------------------------------------
# Docs <-> registry parity
# ----------------------------------------------------------------------
def test_codes_unique_and_well_formed():
    assert len(set(RULE_CODES)) == len(RULE_CODES)
    for code in RULE_CODES + [META_CODE]:
        assert re.fullmatch(r"REP\d{3}", code)
        assert code in ALL_CODE_SUMMARIES


def test_every_rule_code_is_documented():
    doc = DOCS.read_text(encoding="utf-8")
    documented = set(re.findall(r"### (REP\d{3})", doc))
    implemented = set(RULE_CODES) | {META_CODE}
    assert implemented <= documented, (
        f"rules missing from docs/static_analysis.md: "
        f"{sorted(implemented - documented)}"
    )
    assert documented <= implemented, (
        f"documented codes with no implementation: "
        f"{sorted(documented - implemented)}"
    )
