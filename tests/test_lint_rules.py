"""Per-rule tests for the determinism linter.

Every rule gets a paired fire / no-fire fixture under
``tests/lint_fixtures/``; the catalogue in ``docs/static_analysis.md``
and the rule registry must stay in one-to-one correspondence.
"""

import re
from pathlib import Path

import pytest

from repro.devtools.lint import run_lint
from repro.devtools.rules import ALL_RULES, CODE_SUMMARIES, META_CODE

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
DOCS = Path(__file__).resolve().parent.parent / "docs" / "static_analysis.md"

RULE_CODES = [rule.code for rule in ALL_RULES]


def lint_codes(path):
    """All finding codes for one fixture (suppressed included)."""
    result = run_lint([path])
    return [f.code for f in result.findings]


# ----------------------------------------------------------------------
# Fire / no-fire pairs
# ----------------------------------------------------------------------
FIRE_EXPECTATIONS = {
    # code -> (fixture, minimum number of findings of that code)
    "REP001": ("rep001_fire.py", 6),
    "REP002": ("rep002_fire.py", 5),
    "REP003": ("rep003_fire.py", 2),
    "REP004": ("rep004_fire.py", 3),
    "REP005": ("rep005_fire.py", 5),
    "REP006": ("marketplace/rep006_fire.py", 2),
}

OK_FIXTURES = {
    "REP001": "rep001_ok.py",
    "REP002": "rep002_ok.py",
    "REP003": "rep003_ok.py",
    "REP004": "rep004_ok.py",
    "REP005": "rep005_ok.py",
    "REP006": "marketplace/rep006_ok.py",
}


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_fires_on_fixture(code):
    fixture, minimum = FIRE_EXPECTATIONS[code]
    codes = lint_codes(FIXTURES / fixture)
    assert codes.count(code) >= minimum, (
        f"{fixture} should produce >= {minimum} {code} findings, "
        f"got {codes}"
    )


@pytest.mark.parametrize("code", RULE_CODES)
def test_rule_quiet_on_clean_fixture(code):
    fixture = OK_FIXTURES[code]
    result = run_lint([FIXTURES / fixture])
    assert result.findings == [], (
        f"{fixture} should lint clean, got "
        f"{[f.render() for f in result.findings]}"
    )


def test_every_rule_has_both_fixtures():
    for code in RULE_CODES:
        assert code in FIRE_EXPECTATIONS
        assert code in OK_FIXTURES
        assert (FIXTURES / FIRE_EXPECTATIONS[code][0]).is_file()
        assert (FIXTURES / OK_FIXTURES[code]).is_file()


# ----------------------------------------------------------------------
# Specific rule behaviours worth pinning beyond fire/no-fire
# ----------------------------------------------------------------------
def test_rep001_seeded_constructions_pass(tmp_path):
    f = tmp_path / "seeded.py"
    f.write_text(
        "import random\n"
        "import numpy as np\n"
        "rng = random.Random  # class reference, not a draw\n"
        "def make(seed):\n"
        "    return random.Random(seed), np.random.default_rng(seed)\n"
    )
    assert lint_codes(f) == []


def test_rep002_exempts_benchmarks_paths(tmp_path):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    f = bench_dir / "bench_thing.py"
    f.write_text("import time\n\ndef t():\n    return time.time()\n")
    assert lint_codes(f) == []
    g = tmp_path / "engine_thing.py"
    g.write_text("import time\n\ndef t():\n    return time.time()\n")
    assert lint_codes(g) == ["REP002"]


def test_rep003_requires_rng_or_log_in_scope(tmp_path):
    f = tmp_path / "noscope.py"
    f.write_text(
        "def count(items):\n"
        "    out = []\n"
        "    for x in set(items):\n"
        "        out.append(x)\n"
        "    return out\n"
    )
    assert lint_codes(f) == []


def test_rep004_pow_half_only_fires_next_to_np_sqrt(tmp_path):
    plain = tmp_path / "plain.py"
    plain.write_text("def norm(x, y):\n    return (x * x + y * y) ** 0.5\n")
    assert lint_codes(plain) == []
    mixed = tmp_path / "mixed.py"
    mixed.write_text(
        "import numpy as np\n"
        "def norm(x, y):\n"
        "    return (x * x + y * y) ** 0.5\n"
        "def anorm(x):\n"
        "    return np.sqrt(x)\n"
    )
    assert lint_codes(mixed) == ["REP004"]


def test_rep006_skips_matrix_check_without_project(tmp_path):
    mp = tmp_path / "marketplace"
    mp.mkdir()
    f = mp / "engine.py"
    # Branched flag, but no pyproject.toml above tmp_path: only the
    # dead-flag half runs, so this is clean even though the flag is not
    # in any matrix file.
    f.write_text(
        "class E:\n"
        "    def __init__(self, use_warp: bool = True) -> None:\n"
        "        self.mode = 1 if use_warp else 0\n"
    )
    assert run_lint([f], flag_matrix_text=None).findings == []
    # With a matrix supplied that lacks the flag, the parity half fires.
    res = run_lint([f], flag_matrix_text="use_spatial_index only here")
    assert [x.code for x in res.findings] == ["REP006"]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_with_justification_silences():
    result = run_lint([FIXTURES / "suppression_ok.py"])
    assert result.active == []
    assert [f.code for f in result.suppressed] == ["REP004"]
    assert result.suppressed[0].justification


def test_suppression_without_justification_does_not_silence():
    result = run_lint([FIXTURES / "suppression_fire.py"])
    codes = sorted(f.code for f in result.active)
    assert codes == [META_CODE, "REP004"]
    assert result.suppressed == []


def test_stale_suppression_reports_meta():
    result = run_lint([FIXTURES / "suppression_stale.py"])
    assert [f.code for f in result.active] == [META_CODE]
    assert "stale" in result.active[0].message


def test_unparseable_file_reports_meta(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def broken(:\n")
    result = run_lint([f])
    assert [x.code for x in result.findings] == [META_CODE]
    assert "parse" in result.findings[0].message


# ----------------------------------------------------------------------
# Docs <-> registry parity
# ----------------------------------------------------------------------
def test_codes_unique_and_well_formed():
    assert len(set(RULE_CODES)) == len(RULE_CODES)
    for code in RULE_CODES + [META_CODE]:
        assert re.fullmatch(r"REP\d{3}", code)
        assert code in CODE_SUMMARIES


def test_every_rule_code_is_documented():
    doc = DOCS.read_text(encoding="utf-8")
    documented = set(re.findall(r"### (REP\d{3})", doc))
    implemented = set(RULE_CODES) | {META_CODE}
    assert implemented <= documented, (
        f"rules missing from docs/static_analysis.md: "
        f"{sorted(implemented - documented)}"
    )
    assert documented <= implemented, (
        f"documented codes with no implementation: "
        f"{sorted(documented - implemented)}"
    )
