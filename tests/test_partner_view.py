"""Tests for the Partner-app surge map view."""

import pytest

from conftest import toy_config
from repro.api.partner import PartnerView
from repro.marketplace.engine import MarketplaceEngine


@pytest.fixture
def view():
    engine = MarketplaceEngine(toy_config(), seed=71)
    engine.run(600.0)
    return PartnerView(engine)


class TestSurgeMap:
    def test_one_cell_per_area(self, view):
        cells = view.surge_map()
        assert len(cells) == 4
        assert {c.area_id for c in cells} == {0, 1, 2, 3}

    def test_cells_track_engine(self, view):
        view.engine.surge.force_multipliers(
            {0: 1.0, 1: 1.0, 2: 1.8, 3: 1.0}
        )
        cells = {c.area_id: c for c in view.surge_map()}
        assert cells[2].multiplier == 1.8
        assert cells[2].is_surging
        assert not cells[0].is_surging

    def test_hottest_area(self, view):
        view.engine.surge.force_multipliers(
            {0: 1.0, 1: 2.4, 2: 1.0, 3: 1.0}
        )
        assert view.hottest_area().area_id == 1

    def test_render_shows_levels_and_legend(self, view):
        view.engine.surge.force_multipliers(
            {0: 1.0, 1: 1.5, 2: 1.0, 3: 1.0}
        )
        text = view.render(columns=10, rows=6)
        assert "5" in text        # the 1.5x area renders as '5'
        assert "." in text        # non-surging cells
        assert "x1.5" in text     # legend

    def test_render_caps_extremes(self, view):
        view.engine.surge.force_multipliers(
            {0: 4.0, 1: 1.0, 2: 1.0, 3: 1.0}
        )
        text = view.render(columns=8, rows=4)
        assert "9" in text
