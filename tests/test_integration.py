"""End-to-end audit pipeline over a live toy campaign.

These tests exercise the full measurement-then-analysis path exactly as
the benches do — fleet pings a real engine, and the analysis must recover
the structure the engine actually has (5-minute clock, jitter, per-area
pricing, supply/demand coupling) *from the log alone*.
"""

import pytest

from repro.marketplace.types import CarType
from repro.analysis.cleaning import build_tracks, filter_short_lived
from repro.analysis.jitter import detect_jitter_events
from repro.analysis.supply_demand import estimate_supply_demand
from repro.analysis.surge_stats import (
    interval_multipliers,
    surge_episodes,
    update_moments,
)
from repro.analysis.heatmap import client_heatmap
from repro.analysis.lifespan import lifespans_by_group


class TestCampaignPipeline:
    def test_supply_estimates_track_truth(self, toy_campaign):
        engine, log = toy_campaign
        estimates = estimate_supply_demand(
            log, car_type=CarType.UBERX,
            boundary=engine.config.region.boundary,
        )
        assert len(estimates) >= 15
        truth_by_idx = {t.interval_index: t for t in engine.truth}
        for est in estimates[1:-1]:
            truth = truth_by_idx.get(est.interval_index)
            if truth is None:
                continue
            # Measured unique IDs must be within sane bounds of true
            # distinct online drivers (tokens refresh per idle stretch,
            # so measured can exceed driver-level truth).
            assert est.supply <= 4 * max(truth.distinct_online_uberx, 1)
            assert est.supply >= 1

    def test_demand_upper_bounds_are_sane(self, toy_campaign):
        engine, log = toy_campaign
        estimates = estimate_supply_demand(
            log, car_type=CarType.UBERX,
            boundary=engine.config.region.boundary,
        )
        measured = sum(e.demand for e in estimates[1:-1])
        fulfilled = sum(
            t.fulfilled_total for t in engine.truth
            if estimates[1].interval_index
            <= t.interval_index
            <= estimates[-2].interval_index
        )
        assert measured > 0
        assert fulfilled > 0

    def test_clock_recovered_from_observations(self, toy_campaign):
        """Multiplier changes must cluster at the engine's publish phase."""
        engine, log = toy_campaign
        cid = log.client_ids[0]
        series = log.multiplier_series(cid, CarType.UBERX)
        clock = interval_multipliers(series)
        # The recovered per-interval values must match the engine's own
        # published multipliers for the client's area.
        area_id = engine.area_id_of(log.client_positions[cid])
        truth = {
            t.interval_index: t.multipliers[area_id]
            for t in engine.truth
        }
        matches = 0
        total = 0
        for idx, value in clock.items():
            if idx in truth:
                total += 1
                if value == truth[idx]:
                    matches += 1
        assert total >= 10
        assert matches / total > 0.8

    def test_jitter_events_match_previous_interval(self, toy_campaign):
        engine, log = toy_campaign
        all_events = []
        for cid in log.client_ids:
            series = log.multiplier_series(cid, CarType.UBERX)
            all_events.extend(detect_jitter_events(series, client_id=cid))
        if all_events:  # surging campaign at p=0.3 should produce some
            matching = sum(
                1 for e in all_events if e.matches_previous_interval
            )
            assert matching / len(all_events) > 0.8
            for event in all_events:
                assert event.duration_s <= 60.0

    def test_heatmap_covers_all_clients(self, toy_campaign):
        _, log = toy_campaign
        cells = client_heatmap(log)
        assert len(cells) == len(log.client_positions)
        assert any(c.unique_cars_per_day > 0 for c in cells)

    def test_lifespans_mostly_short_for_uberx(self, toy_campaign):
        _, log = toy_campaign
        tracks = filter_short_lived(build_tracks(log), 30.0)
        low, _ = lifespans_by_group(tracks)
        assert len(low) > 10
        # In a strained market, availability stretches are short.
        median = sorted(low)[len(low) // 2]
        assert median < 3600.0

    def test_surge_episodes_exist_and_are_positive(self, toy_campaign):
        _, log = toy_campaign
        cid = log.client_ids[0]
        series = log.multiplier_series(cid, CarType.UBERX)
        for episode in surge_episodes(series):
            assert episode.duration_s > 0
