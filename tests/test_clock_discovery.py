"""Tests for update-clock discovery."""

import random

import pytest

from repro.analysis.clock import (
    change_times,
    discover_clock,
    duration_quantization,
    score_period,
)


def make_clocked_stream(period_s=300.0, phase_s=55.0, n_intervals=40,
                        dt=5.0, seed=1):
    """A stream whose value changes at phase_s into every period."""
    rng = random.Random(seed)
    values = [1.0]
    for _ in range(n_intervals):
        values.append(round(rng.choice([1.0, 1.1, 1.3, 1.6]), 1))
    series = []
    t = 0.0
    end = n_intervals * period_s
    while t < end:
        idx = int(t // period_s)
        current = values[idx + 1] if (t % period_s) >= phase_s else values[idx]
        series.append((t, current))
        t += dt
    return series


class TestChangeTimes:
    def test_finds_changes(self):
        series = [(0, 1.0), (5, 1.0), (10, 1.2), (15, 1.2), (20, 1.0)]
        assert change_times(series) == [10, 20]

    def test_constant_series(self):
        assert change_times([(0, 1.0), (5, 1.0)]) == []


class TestScorePeriod:
    def test_perfect_clock_concentrates(self):
        times = [300.0 * k + 50.0 for k in range(20)]
        score = score_period(times, 300.0)
        assert score.concentration > 0.99
        assert score.phase_s == pytest.approx(50.0, abs=1.0)

    def test_wrong_period_spreads(self):
        times = [300.0 * k + 50.0 for k in range(60)]
        score = score_period(times, 420.0)
        assert score.concentration < 0.5

    def test_empty_times(self):
        assert score_period([], 300.0).concentration == 0.0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            score_period([1.0], 0.0)


class TestDiscoverClock:
    def test_recovers_five_minutes(self):
        series = make_clocked_stream(period_s=300.0)
        estimate = discover_clock(series)
        assert estimate is not None
        assert estimate.period_s == 300.0
        assert estimate.concentration > 0.9
        assert estimate.phase_s == pytest.approx(55.0, abs=10.0)

    def test_recovers_other_periods(self):
        series = make_clocked_stream(period_s=180.0, phase_s=20.0)
        estimate = discover_clock(series)
        assert estimate is not None
        assert estimate.period_s == 180.0

    def test_divisors_do_not_win(self):
        """Divisors of the true period concentrate perfectly too; the
        estimator must still return the fundamental (largest strong)."""
        series = make_clocked_stream(period_s=300.0, n_intervals=60)
        estimate = discover_clock(
            series, candidate_periods=[60.0, 150.0, 300.0, 600.0]
        )
        assert estimate.period_s == 300.0

    def test_too_few_changes_returns_none(self):
        series = [(t, 1.0) for t in range(0, 3000, 5)]
        assert discover_clock(series) is None

    def test_unclocked_stream_returns_none(self):
        rng = random.Random(3)
        series = []
        value = 1.0
        for t in range(0, 30_000, 5):
            if rng.random() < 0.02:
                value = round(rng.uniform(1.0, 2.0), 1)
            series.append((float(t), value))
        estimate = discover_clock(series, threshold=0.8)
        assert estimate is None


class TestDurationQuantization:
    def test_quantized_durations(self):
        durations = [300.0, 600.0, 315.0, 830.0]
        frac = duration_quantization(durations, 300.0, tolerance_s=30.0)
        assert frac == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            duration_quantization([], 300.0)
        with pytest.raises(ValueError):
            duration_quantization([1.0], 0.0)
