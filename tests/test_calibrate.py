"""Tests for the §3.4 calibration experiments."""

import pytest

from conftest import toy_config
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.calibrate import (
    RADIUS_COEFFICIENT,
    check_determinism,
    check_surge_impact,
    visibility_radius,
    visibility_radius_profile,
)
from repro.measurement.fleet import MarketplaceWorld


@pytest.fixture
def quiet_world():
    """A jitter-free world with stable supply."""
    engine = MarketplaceEngine(
        toy_config(jitter_probability=0.0, surge_noise=0.0,
                   pressure_floor=0.5, peak_requests_per_hour=8.0),
        seed=13,
    )
    engine.run(1200.0)
    return MarketplaceWorld(engine)


class TestDeterminism:
    def test_jitter_free_world_is_deterministic(self, quiet_world):
        center = quiet_world.engine.config.region.bounding_box.center
        report = check_determinism(
            quiet_world, center, n_clients=10, rounds=20
        )
        assert report.passed, report.detail
        assert report.rounds == 20


class TestSurgeImpact:
    def test_fleet_does_not_induce_surge(self, quiet_world):
        center = quiet_world.engine.config.region.bounding_box.center
        report = check_surge_impact(
            quiet_world, center, n_clients=20, duration_s=600.0
        )
        assert report.passed, report.detail


class TestVisibilityRadius:
    def test_radius_is_plausible(self, quiet_world):
        center = quiet_world.engine.config.region.bounding_box.center
        radius = visibility_radius(quiet_world, center)
        assert radius is not None
        # The toy city is ~1.4 km wide with ~30 cars: the 8th-nearest car
        # should sit a few hundred metres out.
        assert 50.0 <= radius <= 1500.0

    def test_radius_shrinks_with_density(self):
        """More cars on the road -> nearer 8th car -> smaller radius."""
        sparse_engine = MarketplaceEngine(
            toy_config(pressure_floor=0.5), seed=19
        )
        sparse_engine.run(1200.0)
        dense_config = toy_config(pressure_floor=0.5)
        dense_config.fleet[list(dense_config.fleet)[0]] = 400
        dense_engine = MarketplaceEngine(dense_config, seed=19)
        dense_engine.run(1200.0)
        center = sparse_engine.config.region.bounding_box.center
        sparse_r = visibility_radius(MarketplaceWorld(sparse_engine), center)
        dense_r = visibility_radius(MarketplaceWorld(dense_engine), center)
        assert sparse_r is not None and dense_r is not None
        assert dense_r < sparse_r

    def test_coefficient_matches_paper(self):
        assert RADIUS_COEFFICIENT == pytest.approx(0.1768, abs=1e-4)

    def test_profile_collects_samples(self, quiet_world):
        center = quiet_world.engine.config.region.bounding_box.center
        profile = visibility_radius_profile(
            quiet_world, center,
            sample_every_s=1800.0, duration_s=5400.0,
        )
        assert len(profile) == 3
        times = [t for t, _ in profile]
        assert times == sorted(times)
