"""Tests for the real-TLC-format reader."""

import pytest

from repro.geo.polygon import BoundingBox
from repro.taxi.tlc import TlcReadStats, read_tlc_csv, read_tlc_rows

HEADER = (
    "medallion,hack_license,vendor_id,rate_code,store_and_fwd_flag,"
    "pickup_datetime,dropoff_datetime,passenger_count,"
    "trip_time_in_secs,trip_distance,pickup_longitude,pickup_latitude,"
    "dropoff_longitude,dropoff_latitude"
)


def row(medallion="89D2", pickup="2013-04-04 08:00:00",
        dropoff="2013-04-04 08:10:00",
        plon="-73.985", plat="40.755", dlon="-73.98", dlat="40.76"):
    return (
        f"{medallion},HL1,VTS,1,N,{pickup},{dropoff},1,600,1.2,"
        f"{plon},{plat},{dlon},{dlat}"
    )


def write_csv(tmp_path, lines):
    path = tmp_path / "trip_data.csv"
    path.write_text(HEADER + "\n" + "\n".join(lines) + "\n")
    return path


class TestReadTlcCsv:
    def test_reads_valid_rows(self, tmp_path):
        path = write_csv(tmp_path, [
            row(),
            row(medallion="AA11", pickup="2013-04-04 09:00:00",
                dropoff="2013-04-04 09:05:00"),
        ])
        trips, stats = read_tlc_csv(path)
        assert stats.rows == 2 and stats.kept == 2
        assert stats.medallions == 2
        assert len(trips) == 2
        # Epoch anchors at midnight of the first pickup day.
        assert trips[0].pickup_s == 8 * 3600.0
        assert trips[0].duration_s == 600.0

    def test_medallions_interned_densely(self, tmp_path):
        path = write_csv(tmp_path, [
            row(medallion="X1"),
            row(medallion="X2", pickup="2013-04-04 09:00:00",
                dropoff="2013-04-04 09:10:00"),
            row(medallion="X1", pickup="2013-04-04 10:00:00",
                dropoff="2013-04-04 10:10:00"),
        ])
        trips, _ = read_tlc_csv(path)
        assert {t.medallion for t in trips} == {1, 2}

    def test_drops_zeroed_coordinates(self, tmp_path):
        path = write_csv(tmp_path, [
            row(),
            row(plon="0", plat="0"),
        ])
        trips, stats = read_tlc_csv(path)
        assert len(trips) == 1
        assert stats.bad_coordinates == 1

    def test_drops_negative_durations(self, tmp_path):
        path = write_csv(tmp_path, [
            row(pickup="2013-04-04 08:10:00",
                dropoff="2013-04-04 08:00:00"),
        ])
        trips, stats = read_tlc_csv(path)
        assert not trips
        assert stats.bad_times == 1

    def test_drops_unparseable_times(self, tmp_path):
        path = write_csv(tmp_path, [row(pickup="04/04/2013 8am")])
        trips, stats = read_tlc_csv(path)
        assert not trips and stats.bad_times == 1

    def test_region_filter(self, tmp_path):
        midtown = BoundingBox(south=40.74, west=-74.0, north=40.77,
                              east=-73.96)
        path = write_csv(tmp_path, [
            row(),                                   # inside midtown
            row(plat="40.60", dlat="40.61"),         # Brooklyn-ish
        ])
        trips, stats = read_tlc_csv(path, region=midtown)
        assert len(trips) == 1
        assert stats.outside_region == 1

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "fare.csv"
        path.write_text("medallion,fare_amount\nX,12.5\n")
        with pytest.raises(ValueError):
            read_tlc_csv(path)

    def test_max_rows(self, tmp_path):
        path = write_csv(tmp_path, [row() for _ in range(10)])
        trips, stats = read_tlc_csv(path, max_rows=3)
        assert stats.rows == 3

    def test_replayable(self, tmp_path):
        """The converted trips feed straight into the replayer."""
        from repro.taxi.replay import TaxiReplayServer
        path = write_csv(tmp_path, [
            row(),
            row(pickup="2013-04-04 08:20:00",
                dropoff="2013-04-04 08:30:00"),
        ])
        trips, _ = read_tlc_csv(path)
        replay = TaxiReplayServer(trips, seed=1)
        assert len(replay.segments) == 1  # the 08:10 -> 08:20 gap
