"""Property-based invariants of the marketplace engine.

Run short simulations under randomized seeds and parameter jitters and
check the invariants that every analysis silently relies on.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import toy_config
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


def build_engine(seed, demand, elasticity):
    config = toy_config(
        peak_requests_per_hour=demand, elasticity=elasticity
    )
    return MarketplaceEngine(config, seed=seed)


class TestEngineInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        demand=st.floats(min_value=10.0, max_value=400.0),
        elasticity=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_core_invariants_hold(self, seed, demand, elasticity):
        engine = build_engine(seed, demand, elasticity)
        engine.run(1800.0)

        # Fleet conservation, per type.
        for car_type, count in engine.config.fleet.items():
            online = engine.online_count(car_type)
            offline = len(engine._offline_by_type[car_type])
            assert online + offline == count

        # All published multipliers quantized into [1, cap].
        cap = engine.config.surge.cap
        for truth in engine.truth:
            for m in truth.multipliers.values():
                assert 1.0 <= m <= cap
                assert abs(m * 10 - round(m * 10)) < 1e-9

        # Online drivers carry unique session tokens.
        tokens = [
            d.session_token
            for pool in engine._online_by_type.values()
            for d in pool
        ]
        assert len(tokens) == len(set(tokens))
        assert all(tokens)

        # Completed trips are causally ordered and positively priced.
        for trip in engine.completed_trips:
            assert trip.completed_at > trip.requested_at
            assert trip.fare_usd > 0

        # Truth intervals are contiguous from zero.
        indices = [t.interval_index for t in engine.truth]
        assert indices == list(range(len(indices)))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=6, deadline=None)
    def test_burst_level_bounded(self, seed):
        engine = build_engine(seed, 100.0, 1.8)
        levels = []
        for _ in range(40):
            engine.run(300.0)
            levels.append(engine.burst_level)
        p = engine.config.burst
        assert all(p.floor <= level <= p.cap for level in levels)
        # The process moves (it is not stuck at 1).
        assert len({round(level, 3) for level in levels}) > 3

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=5, deadline=None)
    def test_drivers_stay_near_region(self, seed):
        """The wander clamp keeps the fleet working the city."""
        engine = build_engine(seed, 150.0, 1.8)
        engine.run(3600.0)
        boundary = engine.config.region.boundary
        strays = 0
        total = 0
        for pool in engine._online_by_type.values():
            for driver in pool:
                total += 1
                if (
                    not boundary.contains(driver.location)
                    and boundary.distance_to_boundary_m(driver.location)
                    > 800.0
                ):
                    strays += 1
        assert total > 0
        assert strays / total < 0.1
