"""Differential + lifecycle tests for the process shard executor.

``shard_executor="process"`` runs the sharded tick's stripe kernels in
worker *processes* over one ``multiprocessing.shared_memory`` segment
(:mod:`repro.parallel.shm`) instead of on the engine's thread pool.
Its contract is twofold and both halves are pinned here:

* **Bit-identity** — shard counts {1, 2, 4, 7} × {thread, process}
  reproduce the serial kernel exactly: same ``IntervalTruth`` streams,
  trip ledgers, ping replies, final RNG state, and ``Driver`` objects
  (plus randomized hypothesis scenarios).  The executor is a pure
  speed knob, like every other parallel flag.
* **Segment lifecycle** — the engine creates the segment, workers only
  attach, and ``MarketplaceEngine.close()`` (or the GC finalizer)
  unlinks it; a worker killed mid-tick surfaces one clean
  ``RuntimeError`` — no hung engine, no orphaned ``/dev/shm`` entry.

The kernel-level attach tests double as in-process coverage of the
worker entry points (``_shm_attach_worker`` / ``_shm_move_worker``),
which otherwise only execute inside child processes where coverage
cannot see them.

See ``tests/test_sharded_state.py`` for the thread-executor
differential suite and ``tests/test_golden_campaign.py`` for the
golden SF digest parametrized over both executors.
"""

from __future__ import annotations

import dataclasses
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import toy_config
from repro.api.ping import PingEndpoint
from repro.marketplace.config import ParallelParams
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace import fleet_array
from repro.marketplace.fleet_array import (
    FleetArray,
    ShardedFleetState,
    _shared_specs,
)
from repro.marketplace.types import CarType
from repro.measurement.placement import place_clients
from repro.parallel.partition import GridPartition
from repro.parallel.sharding import ShardPool
from repro.parallel.shm import ProcessShardPool, SharedArrayBlock

SHARD_COUNTS = (1, 2, 4, 7)


def _segment_path(block: SharedArrayBlock) -> str:
    return f"/dev/shm/{block.name}"


def _sharded_cfg(**kwargs):
    cfg = toy_config(**kwargs)
    return dataclasses.replace(
        cfg, parallel=ParallelParams(min_shard_rows=1)
    )


def _run_engine(cfg, seed, ticks, shards, executor, ping_every=0):
    """One engine run; returns the engine plus collected ping replies.

    ``shards=None`` is the unsharded serial reference; otherwise the
    count is forced through the requested executor with the one-row
    shard floor from :func:`_sharded_cfg`.
    """
    if shards is None:
        engine = MarketplaceEngine(cfg, seed=seed, use_sharded_state=False)
    else:
        engine = MarketplaceEngine(
            cfg,
            seed=seed,
            use_sharded_state=True,
            state_shards=shards,
            shard_executor=executor,
        )
    endpoint = PingEndpoint(engine)
    clients = list(place_clients(cfg.region, max_clients=4))
    requests = [(f"p{i}", loc, None) for i, loc in enumerate(clients)]
    replies = []
    for t in range(ticks):
        engine.tick()
        if ping_every and t % ping_every == 0:
            replies.extend(endpoint.serve_round(requests))
    engine.sync_fleet()
    return engine, replies


# ----------------------------------------------------------------------
# Differential: {1, 2, 4, 7} × {thread, process} == serial
# ----------------------------------------------------------------------
def test_process_executor_matches_serial_and_thread_at_every_count():
    """The acceptance-criteria grid: every (shard count, executor)
    cell reproduces the serial reference bit for bit — truth, trips,
    replies, RNG state, drivers — and the process cells equal the
    thread cells besides."""
    cfg = _sharded_cfg(peak_requests_per_hour=220.0)
    seed, ticks = 31, 40
    reference, replies_ref = _run_engine(cfg, seed, ticks, None, None, 4)
    for shards in SHARD_COUNTS:
        per_executor = {}
        for executor in ("thread", "process"):
            engine, replies = _run_engine(
                cfg, seed, ticks, shards, executor, 4
            )
            label = f"{shards} shards / {executor}"
            assert engine.truth == reference.truth, f"truth @ {label}"
            assert engine.completed_trips == reference.completed_trips, (
                f"trips @ {label}"
            )
            assert replies == replies_ref, f"replies @ {label}"
            assert engine.rng.getstate() == reference.rng.getstate(), (
                f"rng @ {label}"
            )
            assert engine.drivers == reference.drivers, (
                f"drivers @ {label}"
            )
            per_executor[executor] = engine
            engine.close()
        assert (
            per_executor["thread"].truth == per_executor["process"].truth
        ), f"thread vs process truth @ {shards}"


@settings(max_examples=3, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    peak=st.floats(min_value=60.0, max_value=320.0),
    ticks=st.integers(min_value=8, max_value=20),
)
def test_process_executor_matches_serial_randomized(seed, peak, ticks):
    cfg = _sharded_cfg(peak_requests_per_hour=peak)
    reference, _ = _run_engine(cfg, seed, ticks, None, None)
    for shards in (2, 7):
        engine, _ = _run_engine(cfg, seed, ticks, shards, "process")
        assert engine.truth == reference.truth
        assert engine.completed_trips == reference.completed_trips
        assert engine.rng.getstate() == reference.rng.getstate()
        engine.close()


# ----------------------------------------------------------------------
# Kernel-level: worker entry points, attached in-process
# ----------------------------------------------------------------------
def _square_fleet(n, shared):
    """*n* idle drivers with cruise targets on a small ring, as a
    FleetArray (optionally shared-memory backed)."""
    from repro.geo.latlon import LatLon
    from repro.marketplace.driver import Driver

    region = toy_config().region
    box = region.bounding_box
    drivers = [
        Driver(
            driver_id=i + 1,
            car_type=CarType.UBERX,
            location=LatLon(
                box.south + (box.north - box.south) * ((i % 7) / 7.0 + 0.05),
                box.west + (box.east - box.west) * ((i % 11) / 11.0 + 0.02),
            ),
            speed_mps=9.0,
        )
        for i in range(n)
    ]
    fleet = FleetArray(drivers, shared=shared)
    for i, d in enumerate(drivers):
        d.planned_offline_at = 1e9
        fleet.on_online(d, 0.0)
    # Aim everyone somewhere else so every row is a mover.
    fleet.state[:] = fleet_array.EN_ROUTE
    fleet.tgt_lat[:] = np.roll(fleet.lat.copy(), 3)
    fleet.tgt_lon[:] = np.roll(fleet.lon.copy(), 3)
    fleet.drop_lat[:] = fleet.lat[::-1].copy()
    fleet.drop_lon[:] = fleet.lon[::-1].copy()
    return fleet


def test_worker_entry_points_run_the_identical_kernel():
    """``_shm_attach_worker`` + ``_shm_move_worker`` attached *in this
    process* step a shared fleet exactly as ``_move_rows`` steps a heap
    fleet: same positions, states, rings, masks."""
    heap = _square_fleet(30, shared=False)
    shm = _square_fleet(30, shared=True)
    block = shm.shm_block
    assert block is not None
    try:
        fleet_array._shm_attach_worker(block.name, block.specs)
        worker = fleet_array._SHM_WORKER
        assert worker is not None
        for tick in range(1, 25):
            now = tick * 5.0
            masks_h, mv_h = heap._step_masks()
            if mv_h.size:
                heap._move_rows(mv_h, now, 5.0, masks_h)
            masks_s, mv_s = shm._step_masks()
            np.testing.assert_array_equal(mv_h, mv_s)
            if mv_s.size:
                # Parent writes the rows; the "worker" picks them up
                # through the attached scratch view.
                block.arrays["mv_scratch"][: mv_s.size] = mv_s
                fleet_array._shm_move_worker(0, int(mv_s.size), now, 5.0)
            for name in fleet_array._KERNEL_ARRAY_NAMES:
                np.testing.assert_array_equal(
                    getattr(heap, name),
                    getattr(shm, name),
                    err_msg=f"{name} diverged at tick {tick}",
                )
            for field in ("cruise_arrived", "completed", "idle_like"):
                np.testing.assert_array_equal(
                    getattr(masks_h, field),
                    getattr(masks_s, field),
                    err_msg=f"{field} diverged at tick {tick}",
                )
    finally:
        worker_state = fleet_array._SHM_WORKER
        fleet_array._SHM_WORKER = None
        if worker_state is not None:
            worker_state.block.close()
        block.close()
        block.unlink()


def test_shm_move_worker_requires_attach():
    assert fleet_array._SHM_WORKER is None
    with pytest.raises(RuntimeError, match="_shm_attach_worker"):
        fleet_array._shm_move_worker(0, 0, 0.0, 5.0)


def test_sharded_state_requires_shared_fleet_for_process_pool():
    heap = _square_fleet(8, shared=False)
    region = toy_config().region
    box = region.bounding_box
    with pytest.raises(ValueError, match="shared-memory fleet"):
        ShardedFleetState(
            heap,
            GridPartition(box.south, box.north, box.west, box.east, 2),
            ShardPool(2),
            min_shard_rows=1,
            process_pool=ProcessShardPool(2),
        )


# ----------------------------------------------------------------------
# SharedArrayBlock units
# ----------------------------------------------------------------------
def test_shared_block_roundtrip_and_layout():
    specs = _shared_specs(13)
    block = SharedArrayBlock.create(specs)
    try:
        assert set(block.arrays) == {name for name, _, _ in specs}
        for name, shape, dtype in specs:
            view = block.arrays[name]
            assert view.shape == shape and view.dtype == np.dtype(dtype)
            # Fresh segments read as zeros, like np.zeros.
            assert not view.any()
            # Cache-line alignment per array.
            offset = view.__array_interface__["data"][0]
            assert offset % 64 == 0
        other = SharedArrayBlock.attach(block.name, specs)
        other.arrays["path_cnt"][:] = 7
        assert (block.arrays["path_cnt"] == 7).all()
        assert not other.owner and block.owner
        other.close()
    finally:
        block.close()
        block.unlink()
    assert not os.path.exists(_segment_path(block))
    # Unlink is idempotent; non-owners never unlink.
    block.unlink()


def test_engine_close_unlinks_segment_and_is_idempotent():
    cfg = _sharded_cfg()
    engine = MarketplaceEngine(
        cfg, seed=3, state_shards=4, shard_executor="process"
    )
    block = engine._vec.shm_block
    assert block is not None
    assert os.path.exists(_segment_path(block))
    for _ in range(10):
        engine.tick()
    engine.close()
    assert not os.path.exists(_segment_path(block))
    engine.close()  # idempotent


def test_dropped_engine_finalizer_unlinks_segment():
    cfg = _sharded_cfg()
    engine = MarketplaceEngine(
        cfg, seed=3, state_shards=2, shard_executor="process"
    )
    block = engine._vec.shm_block
    path = _segment_path(block)
    assert os.path.exists(path)
    finalizer = engine._finalizer
    del engine, block
    import gc

    gc.collect()
    assert not finalizer.alive
    assert not os.path.exists(path)


def test_thread_executor_allocates_no_segment_and_no_process_pool():
    cfg = _sharded_cfg()
    engine = MarketplaceEngine(
        cfg, seed=3, state_shards=4, shard_executor="thread"
    )
    assert engine._vec.shm_block is None
    assert engine._process_pool is None
    engine.close()


def test_engine_rejects_unknown_executor():
    with pytest.raises(ValueError, match="shard_executor"):
        MarketplaceEngine(_sharded_cfg(), seed=1, shard_executor="fiber")
    with pytest.raises(ValueError, match="shard_executor"):
        ParallelParams(shard_executor="fiber")


# ----------------------------------------------------------------------
# Worker death: clean error, no hang, no orphaned segment
# ----------------------------------------------------------------------
def test_worker_death_mid_tick_is_a_clean_error():
    cfg = _sharded_cfg(peak_requests_per_hour=220.0)
    engine = MarketplaceEngine(
        cfg, seed=17, state_shards=4, shard_executor="process"
    )
    block = engine._vec.shm_block
    path = _segment_path(block)
    pool = engine._process_pool
    assert pool is not None
    for _ in range(8):
        engine.tick()
    executor = pool._executor
    assert executor is not None, "process pool never engaged"
    victim = next(iter(executor._processes.values()))
    os.kill(victim.pid, signal.SIGKILL)
    with pytest.raises(RuntimeError, match="worker process died"):
        # The kill may land between ticks; every subsequent dispatch
        # must fail loudly rather than hang.  Single-stripe ticks
        # bypass the pool, so allow a few ticks for a multi-stripe one.
        for _ in range(50):
            engine.tick()
    # The broken executor was torn down inside map_ordered...
    assert pool._executor is None
    # ...and the segment is still owned and unlinked by the engine.
    assert os.path.exists(path)
    engine.close()
    assert not os.path.exists(path)


def test_process_pool_single_engine_has_one_thread_pool():
    """Satellite regression: parallel ping + sharded state share ONE
    thread pool (two independent auto-sized pools oversubscribed
    ≤4-core hosts), and the process executor adds exactly one process
    pool on top — used for movement only."""
    cfg = dataclasses.replace(
        toy_config(),
        parallel=ParallelParams(min_shard_rows=1, min_shard_elements=1),
    )
    threaded = MarketplaceEngine(
        cfg, seed=5, parallel_workers=3, state_shards=3
    )
    try:
        assert threaded._shard_pool is not None
        assert threaded._sharded is not None
        assert threaded._sharded.pool is threaded._shard_pool
        assert threaded._state_pool is threaded._shard_pool
        # Sized for the larger demand of the two layers.
        assert threaded._shard_pool.workers == 3
        assert threaded._process_pool is None
    finally:
        threaded.close()
    process = MarketplaceEngine(
        cfg,
        seed=5,
        parallel_workers=3,
        state_shards=3,
        shard_executor="process",
    )
    try:
        assert process._sharded is not None
        assert process._sharded.pool is process._shard_pool
        assert process._sharded.process_pool is process._process_pool
        assert process._process_pool is not None
    finally:
        process.close()


def test_ping_only_engine_still_builds_single_pool():
    cfg = dataclasses.replace(
        toy_config(),
        parallel=ParallelParams(min_shard_rows=1, min_shard_elements=1),
    )
    engine = MarketplaceEngine(
        cfg, seed=5, parallel_workers=4, state_shards=1
    )
    try:
        assert engine._shard_pool is not None
        assert engine._shard_pool.workers == 4
        assert engine._state_pool is None
        assert engine._sharded is None
    finally:
        engine.close()
