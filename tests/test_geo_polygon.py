"""Tests for bounding boxes and polygons."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.latlon import LatLon
from repro.geo.polygon import BoundingBox, Polygon

BOX = BoundingBox(south=40.70, west=-74.01, north=40.72, east=-73.98)


def square(center: LatLon, half_m: float) -> Polygon:
    sw = center.offset(-half_m, -half_m)
    ne = center.offset(half_m, half_m)
    return BoundingBox(sw.lat, sw.lon, ne.lat, ne.lon).to_polygon()


class TestBoundingBox:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoundingBox(south=1.0, west=0.0, north=0.0, east=1.0)
        with pytest.raises(ValueError):
            BoundingBox(south=0.0, west=1.0, north=1.0, east=0.0)

    def test_contains(self):
        assert BOX.contains(LatLon(40.71, -74.00))
        assert not BOX.contains(LatLon(40.73, -74.00))
        assert BOX.contains(LatLon(40.70, -74.01))  # corners included

    def test_around(self):
        pts = [LatLon(0.0, 0.0), LatLon(1.0, 2.0), LatLon(-1.0, 1.0)]
        box = BoundingBox.around(pts)
        assert box.south == -1.0 and box.north == 1.0
        assert box.west == 0.0 and box.east == 2.0

    def test_around_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])

    def test_dimensions_in_metres(self):
        # 0.02 deg of latitude ~ 2.22 km.
        assert BOX.height_m() == pytest.approx(2224.0, rel=0.01)
        assert BOX.width_m() == pytest.approx(
            BOX.height_m() * 1.5 * math.cos(math.radians(40.71)), rel=0.01
        )

    def test_expand(self):
        grown = BOX.expand(100.0)
        assert grown.height_m() == pytest.approx(
            BOX.height_m() + 200.0, rel=1e-3
        )
        assert grown.contains(LatLon(BOX.south, BOX.west))

    def test_center(self):
        c = BOX.center
        assert BOX.contains(c)
        assert c.lat == pytest.approx((BOX.south + BOX.north) / 2)


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([LatLon(0, 0), LatLon(1, 1)])

    def test_contains_square(self):
        poly = BOX.to_polygon()
        assert poly.contains(LatLon(40.71, -74.0))
        assert not poly.contains(LatLon(40.73, -74.0))
        assert not poly.contains(LatLon(40.71, -74.05))

    def test_contains_concave(self):
        # L-shaped polygon: notch in the NE corner.
        poly = Polygon([
            LatLon(0.0, 0.0), LatLon(0.0, 2.0), LatLon(1.0, 2.0),
            LatLon(1.0, 1.0), LatLon(2.0, 1.0), LatLon(2.0, 0.0),
        ])
        assert poly.contains(LatLon(0.5, 0.5))
        assert poly.contains(LatLon(0.5, 1.5))
        assert not poly.contains(LatLon(1.5, 1.5))  # in the notch

    def test_area_of_square(self):
        poly = square(LatLon(40.71, -74.0), half_m=500.0)
        assert poly.area_m2() == pytest.approx(1_000_000.0, rel=0.01)

    def test_centroid_of_square_is_center(self):
        center = LatLon(40.71, -74.0)
        poly = square(center, half_m=400.0)
        c = poly.centroid()
        assert c.fast_distance_m(center) < 1.0

    def test_centroid_inside_convex_polygon(self):
        poly = Polygon([
            LatLon(0.0, 0.0), LatLon(0.0, 1.0), LatLon(1.0, 1.5),
            LatLon(2.0, 1.0), LatLon(1.5, 0.0),
        ])
        assert poly.contains(poly.centroid())

    def test_edges_count(self):
        poly = BOX.to_polygon()
        assert len(poly.edges()) == 4

    @given(
        dlat=st.floats(min_value=-0.009, max_value=0.009),
        dlon=st.floats(min_value=-0.009, max_value=0.009),
    )
    @settings(max_examples=60)
    def test_contains_agrees_with_bbox_for_rectangles(self, dlat, dlon):
        poly = BOX.to_polygon()
        p = LatLon(40.71 + dlat, -73.995 + dlon)
        # Strictly inside / strictly outside (skip boundary cases).
        if (
            abs(p.lat - BOX.south) > 1e-6
            and abs(p.lat - BOX.north) > 1e-6
            and abs(p.lon - BOX.west) > 1e-6
            and abs(p.lon - BOX.east) > 1e-6
        ):
            assert poly.contains(p) == BOX.contains(p)


class TestBoundaryDistance:
    def test_interior_point_distance(self):
        poly = square(LatLon(40.71, -74.0), half_m=500.0)
        d = poly.distance_to_boundary_m(LatLon(40.71, -74.0))
        assert d == pytest.approx(500.0, rel=0.02)

    def test_exterior_point_distance(self):
        center = LatLon(40.71, -74.0)
        poly = square(center, half_m=500.0)
        outside = center.offset(0.0, 800.0)
        assert poly.distance_to_boundary_m(outside) == pytest.approx(
            300.0, rel=0.05
        )

    def test_closest_boundary_point_is_on_boundary(self):
        center = LatLon(40.71, -74.0)
        poly = square(center, half_m=500.0)
        outside = center.offset(0.0, 900.0)
        cp = poly.closest_boundary_point(outside)
        assert poly.distance_to_boundary_m(cp) < 1.0
        # And it is the eastern edge that is closest.
        assert cp.fast_distance_m(outside) == pytest.approx(400.0, rel=0.05)
