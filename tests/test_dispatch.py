"""Tests for dispatch: nearest-idle selection and EWT."""

import random

import pytest

from repro.geo.latlon import LatLon
from repro.marketplace.dispatch import Dispatcher
from repro.marketplace.driver import Driver, DriverState
from repro.marketplace.rider import RideRequest
from repro.marketplace.types import CarType

ORIGIN = LatLon(40.75, -73.99)


def idle_driver(driver_id: int, east_m: float, car_type=CarType.UBERX,
                speed=5.0) -> Driver:
    d = Driver(
        driver_id=driver_id,
        car_type=car_type,
        location=ORIGIN.offset(0.0, east_m),
        speed_mps=speed,
    )
    d.come_online(0.0, 7200.0, random.Random(driver_id))
    return d


def request(east_m: float = 0.0, car_type=CarType.UBERX,
            converted=True) -> RideRequest:
    return RideRequest(
        rider_id=1,
        requested_at=0.0,
        pickup=ORIGIN.offset(0.0, east_m),
        dropoff=ORIGIN.offset(500.0, 500.0),
        car_type=car_type,
        multiplier_seen=1.0,
        converted=converted,
    )


class TestNearestIdle:
    def test_orders_by_distance(self):
        dispatcher = Dispatcher()
        drivers = [idle_driver(i, east_m=100.0 * (5 - i)) for i in range(5)]
        nearest = dispatcher.nearest_idle(drivers, ORIGIN, CarType.UBERX,
                                          k=3)
        assert [d.driver_id for d in nearest] == [4, 3, 2]

    def test_limits_to_k(self):
        dispatcher = Dispatcher()
        drivers = [idle_driver(i, east_m=10.0 * i) for i in range(12)]
        assert len(
            dispatcher.nearest_idle(drivers, ORIGIN, CarType.UBERX, k=8)
        ) == 8

    def test_filters_by_type(self):
        dispatcher = Dispatcher()
        drivers = [
            idle_driver(1, 10.0, CarType.UBERX),
            idle_driver(2, 5.0, CarType.UBERBLACK),
        ]
        nearest = dispatcher.nearest_idle(drivers, ORIGIN, CarType.UBERX)
        assert [d.driver_id for d in nearest] == [1]

    def test_skips_busy_drivers(self):
        dispatcher = Dispatcher()
        busy = idle_driver(1, 5.0)
        busy.state = DriverState.ON_TRIP
        free = idle_driver(2, 50.0)
        nearest = dispatcher.nearest_idle([busy, free], ORIGIN,
                                          CarType.UBERX)
        assert [d.driver_id for d in nearest] == [2]


class TestEstimateWait:
    def test_none_when_no_cars(self):
        dispatcher = Dispatcher()
        assert dispatcher.estimate_wait([], ORIGIN, CarType.UBERX) is None

    def test_floor_of_one_minute(self):
        dispatcher = Dispatcher(pickup_overhead_s=0.0)
        est = dispatcher.estimate_wait(
            [idle_driver(1, 10.0)], ORIGIN, CarType.UBERX
        )
        assert est.minutes == 1.0

    def test_scales_with_distance(self):
        dispatcher = Dispatcher(pickup_overhead_s=0.0)
        # 3000 m at 5 m/s = 600 s = 10 min.
        est = dispatcher.estimate_wait(
            [idle_driver(1, 3000.0)], ORIGIN, CarType.UBERX
        )
        assert est.minutes == pytest.approx(10.0, rel=0.01)
        assert est.nearest_distance_m == pytest.approx(3000.0, rel=0.01)

    def test_overhead_added(self):
        dispatcher = Dispatcher(pickup_overhead_s=60.0)
        est = dispatcher.estimate_wait(
            [idle_driver(1, 3000.0)], ORIGIN, CarType.UBERX
        )
        assert est.minutes == pytest.approx(11.0, rel=0.01)


class TestDispatch:
    def test_books_nearest(self):
        dispatcher = Dispatcher()
        near = idle_driver(1, 50.0)
        far = idle_driver(2, 500.0)
        booked = dispatcher.dispatch(request(), [far, near], now=0.0)
        assert booked is near
        assert near.state is DriverState.EN_ROUTE
        assert near.trip is not None
        assert far.is_dispatchable

    def test_none_when_out_of_radius(self):
        dispatcher = Dispatcher(max_radius_m=1000.0)
        far = idle_driver(1, 2000.0)
        assert dispatcher.dispatch(request(), [far], now=0.0) is None
        assert far.is_dispatchable

    def test_none_when_no_matching_type(self):
        dispatcher = Dispatcher()
        assert dispatcher.dispatch(
            request(car_type=CarType.UBERSUV),
            [idle_driver(1, 10.0)],
            now=0.0,
        ) is None

    def test_rejects_unconverted_request(self):
        dispatcher = Dispatcher()
        with pytest.raises(ValueError):
            dispatcher.dispatch(request(converted=False), [], now=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dispatcher(pickup_overhead_s=-1.0)
        with pytest.raises(ValueError):
            Dispatcher(max_radius_m=0.0)
