"""Tests for the API surface: models, ping, REST, rate limiting."""

import dataclasses
import threading

import numpy as np
import pytest

from conftest import toy_config
from repro.geo.latlon import LatLon
from repro.api.models import (
    CarView,
    PingReply,
    PriceEstimate,
    TimeEstimate,
    TypeStatus,
)
from repro.api.ping import PingEndpoint
from repro.api.ratelimit import (
    RateLimiter,
    RateLimitExceeded,
    retry_after_hint,
)
from repro.api.rest import RestApi
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


@pytest.fixture(scope="module")
def warm_engine():
    engine = MarketplaceEngine(toy_config(jitter_probability=0.3), seed=21)
    engine.run(3600.0)
    return engine


@pytest.fixture(scope="module")
def center(warm_engine):
    return warm_engine.config.region.bounding_box.center


class TestModels:
    def test_carview_roundtrip(self):
        view = CarView(
            car_id="abc",
            location=LatLon(40.75, -73.99),
            path=((1.0, 40.75, -73.99), (6.0, 40.751, -73.99)),
        )
        assert CarView.from_json(view.to_json()) == view

    def test_pingreply_roundtrip(self):
        reply = PingReply(
            timestamp=55.0,
            location=LatLon(40.75, -73.99),
            statuses=(
                TypeStatus(
                    car_type=CarType.UBERX,
                    cars=(CarView("x", LatLon(40.7501, -73.9901)),),
                    ewt_minutes=3.5,
                    surge_multiplier=1.4,
                ),
                TypeStatus(
                    car_type=CarType.UBERT,
                    cars=(),
                    ewt_minutes=None,
                    surge_multiplier=1.0,
                ),
            ),
        )
        restored = PingReply.from_json(reply.to_json())
        assert restored == reply
        assert restored.status_for(CarType.UBERX).surge_multiplier == 1.4
        assert restored.status_for(CarType.UBERBLACK) is None

    def test_price_estimate_roundtrip(self):
        est = PriceEstimate(CarType.UBERX, 1.3, 10.0, 14.0)
        assert PriceEstimate.from_json(est.to_json()) == est

    def test_time_estimate_roundtrip(self):
        est = TimeEstimate(CarType.UBERX, None)
        assert TimeEstimate.from_json(est.to_json()) == est


class TestRateLimiter:
    def test_allows_up_to_limit(self):
        limiter = RateLimiter(limit=3, window_s=100.0)
        for t in (0.0, 1.0, 2.0):
            limiter.check("a", t)
        with pytest.raises(RateLimitExceeded) as exc:
            limiter.check("a", 3.0)
        assert exc.value.retry_after_s == pytest.approx(97.0)

    def test_window_slides(self):
        limiter = RateLimiter(limit=2, window_s=10.0)
        limiter.check("a", 0.0)
        limiter.check("a", 1.0)
        limiter.check("a", 10.5)  # the t=0 request has expired

    def test_accounts_are_independent(self):
        limiter = RateLimiter(limit=1, window_s=100.0)
        limiter.check("a", 0.0)
        limiter.check("b", 0.0)
        with pytest.raises(RateLimitExceeded):
            limiter.check("a", 1.0)

    def test_remaining(self):
        limiter = RateLimiter(limit=5, window_s=100.0)
        assert limiter.remaining("a", 0.0) == 5
        limiter.check("a", 0.0)
        assert limiter.remaining("a", 1.0) == 4
        assert limiter.remaining("a", 200.0) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(limit=0)
        with pytest.raises(ValueError):
            RateLimiter(window_s=0.0)

    def test_remaining_prunes_expired_history(self):
        # Regression: `remaining` used to report against stale
        # timestamps `check` had not yet pruned, and idle accounts
        # pinned up to `limit` floats forever.
        limiter = RateLimiter(limit=3, window_s=10.0)
        for t in (0.0, 1.0, 2.0):
            limiter.check("a", t)
        assert limiter.remaining("a", 11.5) == 2  # only t=2 survives
        assert list(limiter._history["a"]) == [2.0]

    def test_remaining_forgets_fully_idle_accounts(self):
        limiter = RateLimiter(limit=2, window_s=10.0)
        limiter.check("a", 0.0)
        assert limiter.remaining("a", 100.0) == 2
        assert "a" not in limiter._history
        # An account never seen stays unknown too.
        assert limiter.remaining("ghost", 0.0) == 2
        assert "ghost" not in limiter._history

    def test_retry_after_hint_rounds_up_and_clamps(self):
        # Truncation (`:.0f`) rendered a sub-second wait as "0 s",
        # inviting an immediate re-hit that is rejected again.  The
        # hint must round *up* and never go negative.
        assert retry_after_hint(0.0) == 0
        assert retry_after_hint(1e-9) == 1
        assert retry_after_hint(0.4) == 1
        assert retry_after_hint(1.0) == 1
        assert retry_after_hint(1.2) == 2
        assert retry_after_hint(-5.0) == 0

    def test_exception_surfaces_rounded_up_hint(self):
        limiter = RateLimiter(limit=1, window_s=0.4)
        limiter.check("a", 0.0)
        with pytest.raises(RateLimitExceeded) as exc:
            limiter.check("a", 0.1)
        assert exc.value.retry_after_s == pytest.approx(0.3)
        assert exc.value.retry_after_hint_s == 1
        assert str(exc.value).endswith("retry after 1s")
        # A clock that ran past the window end still never advertises
        # a negative wait.
        assert RateLimitExceeded("a", -0.5).retry_after_hint_s == 0

    def test_concurrent_hammer_admits_exactly_limit(self):
        # Regression: `check`/`remaining` used to mutate the shared
        # per-account deque with no lock, so concurrent prune/append
        # interleavings could miscount budgets or pop from a deque
        # another thread had just emptied.  Under the lock, a storm of
        # threads on one account admits exactly `limit` requests.
        limit, n_threads, per_thread = 64, 8, 32
        limiter = RateLimiter(limit=limit, window_s=3600.0)
        outcomes = [0] * n_threads
        barrier = threading.Barrier(n_threads)

        def hammer(slot):
            barrier.wait()
            for _ in range(per_thread):
                try:
                    limiter.check("shared", 0.0)
                    outcomes[slot] += 1
                except RateLimitExceeded:
                    pass
                limiter.remaining("shared", 0.0)

        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == limit
        assert limiter.remaining("shared", 0.0) == 0


class TestPingEndpoint:
    def test_reply_shape(self, warm_engine, center):
        ping = PingEndpoint(warm_engine)
        reply = ping.ping("acct", center)
        assert reply.timestamp == warm_engine.clock.now
        types = {s.car_type for s in reply.statuses}
        assert types == set(warm_engine.config.fleet)

    def test_nearest_eight_cap(self, warm_engine, center):
        ping = PingEndpoint(warm_engine)
        reply = ping.ping("acct", center, [CarType.UBERX])
        status = reply.status_for(CarType.UBERX)
        assert 0 < len(status.cars) <= 8

    def test_cars_have_ids_and_paths(self, warm_engine, center):
        ping = PingEndpoint(warm_engine)
        status = ping.ping("acct", center, [CarType.UBERX]).status_for(
            CarType.UBERX
        )
        for car in status.cars:
            assert car.car_id
            assert len(car.path) >= 1

    def test_type_restriction(self, warm_engine, center):
        ping = PingEndpoint(warm_engine)
        reply = ping.ping("acct", center, [CarType.UBERBLACK])
        assert len(reply.statuses) == 1
        assert reply.statuses[0].car_type is CarType.UBERBLACK

    def test_rejects_bad_k(self, warm_engine):
        with pytest.raises(ValueError):
            PingEndpoint(warm_engine, nearest_k=0)

    def test_never_serves_empty_car_id(self):
        # Regression: a driver whose session token was cleared used to
        # be served as `car_id=""`, collapsing every such car into one
        # colliding identity and corrupting the unique-car supply and
        # death-based demand counts (§3.3).  Tokenless drivers must be
        # excluded from the reply instead.
        engine = MarketplaceEngine(toy_config(), seed=9)
        engine.run(1800.0)
        ping = PingEndpoint(engine)
        center = engine.config.region.bounding_box.center
        served = ping.ping("acct", center, [CarType.UBERX]).status_for(
            CarType.UBERX
        )
        assert len(served.cars) > 1
        # Strip the nearest car's public identity in place.
        victim_token = served.cars[0].car_id
        victim = next(
            d for d in engine.drivers if d.session_token == victim_token
        )
        victim.session_token = None
        after = ping.ping("acct", center, [CarType.UBERX]).status_for(
            CarType.UBERX
        )
        ids = [c.car_id for c in after.cars]
        assert "" not in ids
        assert victim_token not in ids
        assert all(ids)

    def test_jitter_can_diverge_across_accounts(self):
        """With the bug active and surge changing, some account somewhere
        must eventually see a stale value."""
        engine = MarketplaceEngine(
            toy_config(
                jitter_probability=1.0,
                peak_requests_per_hour=420.0,
                pressure_floor=0.04,
            ),
            seed=33,
        )
        engine.run(1800.0)
        ping = PingEndpoint(engine)
        center = engine.config.region.bounding_box.center
        diverged = False
        for _ in range(720):
            engine.run(5.0)
            values = {
                ping.ping(f"acct{i}", center, [CarType.UBERX])
                .status_for(CarType.UBERX).surge_multiplier
                for i in range(6)
            }
            if len(values) > 1:
                diverged = True
                break
        assert diverged, "jitter at p=1.0 never produced divergent views"


class TestServeRound:
    def _requests(self, center):
        return [
            ("acct0", center, None),
            ("acct1", center.offset(250.0, -150.0), [CarType.UBERX]),
            (
                "acct2",
                center.offset(-400.0, 300.0),
                [CarType.UBERX, CarType.UBERBLACK],
            ),
            # Same account twice: the per-round jitter memo must serve
            # the second request exactly like the first.
            ("acct0", center.offset(90.0, 40.0), None),
        ]

    def test_batched_matches_per_client(self, warm_engine, center):
        """The batched round path is reply-for-reply identical to N
        independent pings (same engine, same instant)."""
        endpoint = PingEndpoint(warm_engine)
        requests = self._requests(center)
        batched = endpoint.serve_round(requests)
        individual = [
            endpoint.ping(account_id, location, car_types)
            for account_id, location, car_types in requests
        ]
        assert batched == individual

    def test_empty_round(self, warm_engine):
        assert PingEndpoint(warm_engine).serve_round([]) == []

    def test_flag_off_declines_batch_query(self, center):
        engine = MarketplaceEngine(
            toy_config(), seed=11, use_batched_ping=False
        )
        lats = np.array([center.lat])
        lons = np.array([center.lon])
        assert engine.round_query(lats, lons, 8) is None

    def test_scalar_engine_declines_batch_query(self, center):
        # No FleetArray -> no distance matrix to batch over; serve_round
        # must fall back to the per-client path and still answer.
        engine = MarketplaceEngine(
            toy_config(), seed=11, use_vectorized_step=False
        )
        engine.run(600.0)
        lats = np.array([center.lat])
        lons = np.array([center.lon])
        assert engine.round_query(lats, lons, 8) is None
        endpoint = PingEndpoint(engine)
        replies = endpoint.serve_round([("a", center, None)])
        assert replies == [endpoint.ping("a", center, None)]

    def _spy_round_query(self, engine, monkeypatch):
        captured = []
        original = engine.round_query

        def spy(lats, lons, k, car_types=None):
            captured.append(
                None if car_types is None else list(car_types)
            )
            return original(lats, lons, k, car_types)

        monkeypatch.setattr(engine, "round_query", spy)
        return captured

    def test_union_stays_tight_when_all_restrict(
        self, warm_engine, center, monkeypatch
    ):
        captured = self._spy_round_query(warm_engine, monkeypatch)
        endpoint = PingEndpoint(warm_engine)
        endpoint.serve_round(
            [
                ("a", center, [CarType.UBERX]),
                ("b", center.offset(100.0, 50.0), [CarType.UBERX]),
            ]
        )
        assert captured[-1] == [CarType.UBERX]

    def test_mixed_round_unions_none_as_all_types(
        self, warm_engine, center, monkeypatch
    ):
        # Regression: the union used to be built only when *every*
        # request restricted its types — one `None` in a mixed round
        # silently widened the batch to the whole fleet instead of
        # contributing "all types" to an explicit union.  The observable
        # contract: a mixed round queries exactly the fleet's types and
        # stays reply-for-reply identical to per-client pings.
        captured = self._spy_round_query(warm_engine, monkeypatch)
        endpoint = PingEndpoint(warm_engine)
        requests = [
            ("a", center, [CarType.UBERX]),
            ("b", center.offset(-150.0, 200.0), None),
            ("c", center.offset(80.0, -60.0), [CarType.UBERBLACK]),
        ]
        batched = endpoint.serve_round(requests)
        assert set(captured[-1]) == set(warm_engine.config.fleet)
        assert batched == [
            endpoint.ping(account_id, location, car_types)
            for account_id, location, car_types in requests
        ]

    def test_round_restricted_to_unfielded_type(
        self, warm_engine, center, monkeypatch
    ):
        # A request may restrict to a type the fleet doesn't field
        # (UBERT here): the union must not mistake "as many types seen
        # as the fleet has" for "the fleet is covered", and the reply
        # still matches the per-client path (an empty status).
        captured = self._spy_round_query(warm_engine, monkeypatch)
        endpoint = PingEndpoint(warm_engine)
        requests = [
            ("a", center, [CarType.UBERT, CarType.UBERX]),
            ("b", center.offset(40.0, 40.0), [CarType.UBERX]),
        ]
        batched = endpoint.serve_round(requests)
        assert captured[-1] == [CarType.UBERT, CarType.UBERX]
        assert batched == [
            endpoint.ping(account_id, location, car_types)
            for account_id, location, car_types in requests
        ]


class TestViewsMemoEviction:
    def _big_fleet_engine(self, seed=5):
        # A fleet much larger than its online count, so stale views can
        # outgrow the sweep threshold (2 x online + 16 < fleet size).
        cfg = dataclasses.replace(
            toy_config(),
            fleet={CarType.UBERX: 220, CarType.UBERBLACK: 12},
        )
        engine = MarketplaceEngine(cfg, seed=seed)
        engine.run(600.0)
        return engine

    def test_sweep_evicts_departed_identities(self):
        engine = self._big_fleet_engine()
        endpoint = PingEndpoint(engine)
        center = engine.config.region.bounding_box.center
        baseline = endpoint.ping("acct", center)
        # Strand a view of a dead identity for every driver, as a long
        # campaign's churn would.
        for driver in engine.drivers:
            endpoint._views.setdefault(
                driver.driver_id,
                CarView(f"dead{driver.driver_id}", center),
            )
        polluted = len(endpoint._views)
        reply = endpoint.ping("acct", center)
        assert reply == baseline  # eviction never changes served replies
        online = sum(
            engine.online_count(ct) for ct in engine.config.fleet
        )
        assert len(endpoint._views) <= 2 * online + 16
        assert len(endpoint._views) < polluted

    def test_memo_bounded_over_long_campaign(self):
        # Regression: views of departed drivers were never evicted, so
        # week-scale campaigns grew the memo with every driver death.
        engine = self._big_fleet_engine()
        endpoint = PingEndpoint(engine)
        center = engine.config.region.bounding_box.center
        for _ in range(180):  # three simulated hours of churn
            engine.run(60.0)
            endpoint.ping("acct", center)
        online = sum(
            engine.online_count(ct) for ct in engine.config.fleet
        )
        # Bounded by the live fleet, not by total identities ever seen.
        assert len(endpoint._views) <= 2 * online + 16
        assert 2 * online + 16 < len(engine.drivers)
        churned = sum(d.token_serial for d in engine.drivers)
        assert churned > len(engine.drivers)  # the churn really happened


class TestRestApi:
    def test_price_estimates(self, warm_engine, center):
        api = RestApi(warm_engine, RateLimiter(limit=10_000))
        estimates = api.price_estimates(
            "acct", center, center.offset(800.0, 800.0)
        )
        by_type = {e.car_type: e for e in estimates}
        assert CarType.UBERX in by_type
        x = by_type[CarType.UBERX]
        assert 0 < x.low_usd < x.high_usd
        assert x.surge_multiplier >= 1.0

    def test_time_estimates(self, warm_engine, center):
        api = RestApi(warm_engine, RateLimiter(limit=10_000))
        estimates = api.time_estimates("acct", center, [CarType.UBERX])
        assert len(estimates) == 1
        ewt = estimates[0].ewt_seconds
        assert ewt is None or ewt >= 60.0

    def test_rate_limit_enforced(self, warm_engine, center):
        api = RestApi(warm_engine, RateLimiter(limit=2, window_s=3600.0))
        api.surge_multiplier("acct", center)
        api.surge_multiplier("acct", center)
        with pytest.raises(RateLimitExceeded):
            api.surge_multiplier("acct", center)

    def test_api_is_jitter_free(self):
        """The REST stream serves true multipliers even with the bug on."""
        engine = MarketplaceEngine(
            toy_config(jitter_probability=1.0), seed=8
        )
        engine.run(900.0)
        api = RestApi(engine, RateLimiter(limit=10_000))
        center = engine.config.region.bounding_box.center
        for i in range(120):
            engine.run(5.0)
            value = api.surge_multiplier(f"acct{i}", center)
            assert value == engine.true_multiplier(center, CarType.UBERX)
