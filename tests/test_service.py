"""Tests for the socket service layer (:mod:`repro.service`).

Everything here runs in-process through :class:`AsgiTestClient` — no
sockets, no third-party dependencies — except the final smoke test,
which binds a real localhost socket and skips cleanly where binding is
not permitted.  The load on these tests is the transport *contract*:

* routes, status codes, and error bodies;
* HTTP 429 + ``Retry-After`` for over-budget accounts (§3.2);
* **byte-identity**: every payload served over the transport equals the
  canonical encoding of the in-process result, across the full
  performance-flag matrix (the bit-identity contract extended across a
  socket);
* round coalescing: concurrent pings collapse into one
  ``serve_round`` batch without changing any reply.
"""

from __future__ import annotations

import asyncio
import gc
import json

import pytest

from conftest import toy_config
from repro.api import serialize
from repro.api.ping import PingEndpoint
from repro.api.ratelimit import RateLimiter
from repro.api.rest import RestApi
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.service import (
    AsgiHttpServer,
    AsgiTestClient,
    MarketplaceService,
    RoundAccumulator,
)


@pytest.fixture(scope="module")
def engine():
    engine = MarketplaceEngine(toy_config(jitter_probability=0.3), seed=17)
    engine.run(1800.0)
    return engine


@pytest.fixture(scope="module")
def center(engine):
    return engine.config.region.bounding_box.center


@pytest.fixture()
def client(engine):
    with AsgiTestClient(MarketplaceService(engine, city="toyville")) as c:
        yield c


def _price_target(account_id, start, end, car_types=""):
    return (
        f"/v1/estimates/price?account_id={account_id}"
        f"&start_lat={start.lat!r}&start_lon={start.lon!r}"
        f"&end_lat={end.lat!r}&end_lon={end.lon!r}"
        + (f"&car_types={car_types}" if car_types else "")
    )


def _time_target(account_id, location, car_types=""):
    return (
        f"/v1/estimates/time?account_id={account_id}"
        f"&lat={location.lat!r}&lon={location.lon!r}"
        + (f"&car_types={car_types}" if car_types else "")
    )


class TestHttpRoutes:
    def test_health(self, client, engine):
        response = client.get("/v1/health")
        assert response.status == 200
        assert response.header("content-type") == "application/json"
        assert response.body == serialize.canonical_json(
            serialize.health_payload(engine.clock.now, city="toyville")
        )

    def test_unknown_path_is_404(self, client):
        response = client.get("/v1/nope")
        assert response.status == 404
        assert response.json()["error"] == "not_found"

    def test_non_get_is_405(self, client):
        response = client.request("POST", "/v1/health")
        assert response.status == 405
        assert response.json()["error"] == "method_not_allowed"

    def test_missing_parameter_is_400(self, client):
        response = client.get("/v1/surge?account_id=a&lat=40.7")
        assert response.status == 400
        assert "lon" in response.json()["detail"]

    def test_non_numeric_parameter_is_400(self, client):
        response = client.get("/v1/surge?account_id=a&lat=x&lon=-74.0")
        assert response.status == 400
        assert response.json()["error"] == "bad_request"

    def test_non_finite_parameter_is_400(self, client):
        response = client.get("/v1/surge?account_id=a&lat=nan&lon=-74.0")
        assert response.status == 400

    def test_unknown_car_type_is_400(self, client, center):
        response = client.get(
            _time_target("a", center, car_types="warp_drive")
        )
        assert response.status == 400
        assert "warp_drive" in response.json()["detail"]


class TestRateLimitContract:
    """§3.2: over-budget accounts get HTTP 429 + ``Retry-After``."""

    def test_429_with_retry_after(self, engine, center):
        service = MarketplaceService(
            engine, limiter=RateLimiter(limit=2, window_s=3600.0)
        )
        with AsgiTestClient(service) as client:
            target = _time_target("heavy", center)
            assert client.get(target).status == 200
            assert client.get(target).status == 200
            response = client.get(target)
            assert response.status == 429
            header = response.header("retry-after")
            assert header is not None and header.isdigit()
            assert int(header) >= 1  # rounded up, never "0"
            body = response.json()
            assert body["error"] == "rate_limited"
            assert body["account_id"] == "heavy"
            assert body["retry_after_s"] == int(header)
            # Budgets are per account: another account still passes.
            assert client.get(_time_target("light", center)).status == 200

    def test_ping_stream_is_never_limited(self, engine, center):
        # The production pingClient path had no rate limit (§3.2).
        service = MarketplaceService(
            engine, limiter=RateLimiter(limit=1, window_s=3600.0)
        )
        with AsgiTestClient(service) as client:
            with client.websocket("/v1/ping") as ws:
                for _ in range(5):
                    ws.send_json(
                        {
                            "account_id": "pinger",
                            "lat": center.lat,
                            "lon": center.lon,
                        }
                    )
                    assert "error" not in ws.receive_json()


FLAG_MATRIX = [
    # (use_spatial_index, use_vectorized_step, use_batched_ping,
    #  use_parallel_ping)
    (True, True, True, True),
    (True, True, True, False),
    (True, True, False, False),
    (True, False, False, False),
    (False, True, True, True),
    (False, True, True, False),
    (False, True, False, False),
    (False, False, False, False),
]


class TestTransportByteIdentity:
    """Socket payloads == canonical encoding of in-process results,
    across the performance-flag matrix."""

    @pytest.mark.parametrize(
        "spatial,vectorized,batched,parallel", FLAG_MATRIX
    )
    def test_flag_matrix(self, spatial, vectorized, batched, parallel):
        engine = MarketplaceEngine(
            toy_config(jitter_probability=0.3),
            seed=23,
            use_spatial_index=spatial,
            use_vectorized_step=vectorized,
            use_batched_ping=batched,
            use_parallel_ping=parallel,
        )
        engine.run(600.0)
        center = engine.config.region.bounding_box.center
        edge = center.offset(300.0, -200.0)
        service = MarketplaceService(engine)
        # Independent reference instances: same engine, same instant,
        # fresh memos — identity must not depend on shared caches.
        reference_ping = PingEndpoint(engine)
        reference_rest = RestApi(engine, RateLimiter())
        with AsgiTestClient(service) as client:
            with client.websocket("/v1/ping") as ws:
                ws.send_json(
                    {
                        "account_id": "idacct",
                        "lat": center.lat,
                        "lon": center.lon,
                    }
                )
                wire = ws.receive_text().encode("utf-8")
                expected = serialize.encode_ping_reply(
                    reference_ping.ping("idacct", center)
                )
                assert wire == expected
                # A restricted ping, same session.
                ws.send_json(
                    {
                        "account_id": "idacct",
                        "lat": edge.lat,
                        "lon": edge.lon,
                        "car_types": [CarType.UBERX.value],
                    }
                )
                wire = ws.receive_text().encode("utf-8")
                expected = serialize.encode_ping_reply(
                    reference_ping.ping("idacct", edge, [CarType.UBERX])
                )
                assert wire == expected

            response = client.get(_price_target("idacct", center, edge))
            assert response.status == 200
            assert response.body == serialize.encode_price_estimates(
                reference_rest.price_estimates("idacct", center, edge)
            )

            response = client.get(
                _time_target("idacct", center, car_types="uberX")
            )
            assert response.status == 200
            assert response.body == serialize.encode_time_estimates(
                reference_rest.time_estimates(
                    "idacct", center, [CarType.UBERX]
                )
            )

            response = client.get(
                f"/v1/surge?account_id=idacct"
                f"&lat={center.lat!r}&lon={center.lon!r}"
            )
            assert response.status == 200
            assert response.body == serialize.encode_surge(
                CarType.UBERX,
                reference_rest.surge_multiplier("idacct", center),
            )


class TestWebSocketProtocol:
    def test_wrong_path_is_refused(self, client):
        with pytest.raises(AssertionError, match="not accepted"):
            client.websocket("/v1/elsewhere")

    def test_malformed_messages_get_error_replies(self, client, center):
        with client.websocket("/v1/ping") as ws:
            ws.send_text("{not json")
            assert ws.receive_json()["error"] == "bad_request"
            ws.send_json(["not", "an", "object"])
            assert "object" in ws.receive_json()["detail"]
            ws.send_json({"account_id": "a", "lat": 40.7})
            assert "lon" in ws.receive_json()["detail"]
            ws.send_json({"account_id": 7, "lat": 40.7, "lon": -74.0})
            assert "string" in ws.receive_json()["detail"]
            ws.send_json(
                {
                    "account_id": "a",
                    "lat": center.lat,
                    "lon": center.lon,
                    "car_types": ["warp_drive"],
                }
            )
            assert "warp_drive" in ws.receive_json()["detail"]
            # The session survives every malformed message: a valid
            # ping on the same connection is still answered.
            ws.send_json(
                {"account_id": "a", "lat": center.lat, "lon": center.lon}
            )
            reply = ws.receive_json()
            assert "statuses" in reply and "error" not in reply


class TestRoundAccumulator:
    def test_concurrent_pings_coalesce_into_one_round(
        self, engine, center
    ):
        endpoint = PingEndpoint(engine)
        accumulator = RoundAccumulator(endpoint, coalesce_window_s=0.005)
        requests = [
            (f"acct{i}", center.offset(30.0 * i, -20.0 * i), None)
            for i in range(12)
        ]

        async def fan_out():
            return await asyncio.gather(
                *(accumulator.submit(request) for request in requests)
            )

        replies = asyncio.run(fan_out())
        assert accumulator.rounds_served == 1
        assert accumulator.requests_served == len(requests)
        assert accumulator.max_round_size == len(requests)
        # Coalescing is a throughput lever, never a semantics one.
        reference = PingEndpoint(engine)
        assert replies == [
            reference.ping(account_id, location, car_types)
            for account_id, location, car_types in requests
        ]

    def test_zero_window_still_batches_a_loop_pass(self, engine, center):
        accumulator = RoundAccumulator(
            PingEndpoint(engine), coalesce_window_s=0.0
        )

        async def fan_out():
            return await asyncio.gather(
                *(
                    accumulator.submit((f"a{i}", center, None))
                    for i in range(5)
                )
            )

        replies = asyncio.run(fan_out())
        assert len(replies) == 5
        assert accumulator.rounds_served == 1

    def test_serve_round_failure_fans_out(self, center):
        class ExplodingServer:
            def serve_round(self, requests):
                raise RuntimeError("boom")

        accumulator = RoundAccumulator(ExplodingServer())

        async def fan_out():
            return await asyncio.gather(
                *(
                    accumulator.submit((f"a{i}", center, None))
                    for i in range(3)
                ),
                return_exceptions=True,
            )

        results = asyncio.run(fan_out())
        assert len(results) == 3
        assert all(
            isinstance(r, RuntimeError) and str(r) == "boom"
            for r in results
        )

    def test_negative_window_rejected(self, engine):
        with pytest.raises(ValueError):
            RoundAccumulator(PingEndpoint(engine), coalesce_window_s=-1.0)

    def test_drain_task_survives_gc_during_the_window(
        self, engine, center
    ):
        """The accumulator must hold a *strong* reference to its drain
        task.  The event loop only keeps weak task references, so a
        discarded ``create_task()`` result can be collected mid-window,
        stranding every parked ping on a future that never resolves."""
        accumulator = RoundAccumulator(
            PingEndpoint(engine), coalesce_window_s=0.01
        )

        async def parked_then_collected():
            ping = asyncio.ensure_future(
                accumulator.submit(("gc", center, None))
            )
            await asyncio.sleep(0)  # submit runs, drain gets scheduled
            assert accumulator._drain_task is not None
            gc.collect()  # would reap a weakly-held drain task
            return await asyncio.wait_for(ping, timeout=5.0)

        reply = asyncio.run(parked_then_collected())
        assert accumulator.rounds_served == 1
        assert reply == PingEndpoint(engine).ping("gc", center)

    def test_cancelled_submit_withdraws_from_the_round(
        self, engine, center
    ):
        """A ping whose awaiter is cancelled mid-window (client hung
        up) must leave the round: the surviving pings are served, the
        withdrawn request is never counted, and nothing stays parked."""
        accumulator = RoundAccumulator(
            PingEndpoint(engine), coalesce_window_s=0.01
        )

        async def scenario():
            doomed = asyncio.ensure_future(
                accumulator.submit(("gone", center, None))
            )
            survivor = asyncio.ensure_future(
                accumulator.submit(("alive", center, None))
            )
            await asyncio.sleep(0)  # both parked, drain scheduled
            doomed.cancel()
            reply = await asyncio.wait_for(survivor, timeout=5.0)
            with pytest.raises(asyncio.CancelledError):
                await doomed
            return reply

        reply = asyncio.run(scenario())
        assert accumulator.rounds_served == 1
        assert accumulator.requests_served == 1
        assert accumulator.max_round_size == 1
        assert accumulator._pending == []
        assert reply == PingEndpoint(engine).ping("alive", center)


class TestDisconnectDuringPing:
    """Soak: a WebSocket client that vanishes while its ping is parked
    in the coalesce window must not wedge the accumulator — later
    clients keep getting served, and the abandoned request is
    withdrawn rather than served to nobody."""

    def test_disconnect_while_parked_does_not_strand_later_pings(
        self, engine, center
    ):
        service = MarketplaceService(engine, coalesce_window_s=0.05)
        reference = PingEndpoint(engine)
        with AsgiTestClient(service) as client:
            quitter = client.websocket("/v1/ping")
            quitter.send_json(
                {
                    "account_id": "quitter",
                    "lat": center.lat,
                    "lon": center.lon,
                }
            )
            # Advance the loop just enough for the handler to park the
            # ping in the accumulator, then kill the connection's app
            # task mid-submit — the in-process equivalent of the socket
            # dropping while the coalesce window is still open.
            client._loop.run_until_complete(asyncio.sleep(0.005))
            assert len(service.rounds._pending) == 1
            quitter._task.cancel()
            # Let the cancellation land and the window elapse.
            client._loop.run_until_complete(asyncio.sleep(0.1))
            assert service.rounds._pending == []
            assert service.rounds.requests_served == 0
            # Soak: fresh connections after the abandonment are served
            # normally, byte-identical to the in-process endpoint.
            for i in range(5):
                with client.websocket("/v1/ping") as ws:
                    ws.send_json(
                        {
                            "account_id": f"late{i}",
                            "lat": center.lat,
                            "lon": center.lon,
                        }
                    )
                    assert ws.receive_text() == (
                        serialize.encode_ping_reply(
                            reference.ping(f"late{i}", center)
                        ).decode("utf-8")
                    )
        assert service.rounds.requests_served == 5
        assert service.rounds.rounds_served == 5


class TestRealSocketSmoke:
    """One exchange over a real localhost socket (stdlib server +
    stdlib client).  Skips where binding sockets is not permitted."""

    def test_http_and_websocket_roundtrip(self, engine, center):
        from repro.service.loadgen import WebSocketClient, http_get

        service = MarketplaceService(engine, coalesce_window_s=0.002)
        reference = PingEndpoint(engine)
        expected_ping = serialize.encode_ping_reply(
            reference.ping("sock", center)
        ).decode("utf-8")
        expected_health = serialize.canonical_json(
            serialize.health_payload(engine.clock.now)
        )

        async def exercise():
            server = AsgiHttpServer(service, port=0)
            try:
                await server.start()
            except OSError as exc:  # pragma: no cover - sandboxed env
                pytest.skip(f"cannot bind localhost sockets: {exc}")
            try:
                response = await http_get(
                    "127.0.0.1", server.port, "/v1/health"
                )
                assert response.status == 200
                assert response.body == expected_health
                ws = await WebSocketClient.connect(
                    "127.0.0.1", server.port, "/v1/ping"
                )
                try:
                    await ws.send_text(
                        json.dumps(
                            {
                                "account_id": "sock",
                                "lat": center.lat,
                                "lon": center.lon,
                            }
                        )
                    )
                    text = await ws.receive_text()
                finally:
                    await ws.close()
                assert text == expected_ping
            finally:
                await server.stop()

        asyncio.run(exercise())
