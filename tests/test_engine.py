"""Tests for the top-level marketplace engine."""

import dataclasses

import pytest

from conftest import toy_config
from repro.geo.latlon import LatLon
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


@pytest.fixture(scope="module")
def run_engine():
    """One 2-hour run shared by the read-only assertions below."""
    engine = MarketplaceEngine(toy_config(surge_noise=0.05), seed=3)
    engine.run(7200.0)
    return engine


class TestSupplyManagement:
    def test_online_pool_tracks_target(self, run_engine):
        # Flat 0.4 online fraction of a 70-car X fleet -> ~28 online.
        online = run_engine.online_count(CarType.UBERX)
        assert 15 <= online <= 45

    def test_both_types_online(self, run_engine):
        assert run_engine.online_count(CarType.UBERBLACK) >= 1

    def test_online_drivers_have_tokens(self, run_engine):
        for d in run_engine.idle_drivers(CarType.UBERX):
            assert d.session_token

    def test_offline_plus_online_equals_fleet(self, run_engine):
        total = 0
        for car_type, count in run_engine.config.fleet.items():
            online = run_engine.online_count(car_type)
            offline = len(run_engine._offline_by_type[car_type])
            assert online + offline == count
            total += count
        assert total == len(run_engine.drivers)


class TestTripsAndTruth:
    def test_trips_completed(self, run_engine):
        assert len(run_engine.completed_trips) > 30

    def test_completed_trips_have_positive_fares(self, run_engine):
        for trip in run_engine.completed_trips:
            assert trip.fare_usd > 0
            assert trip.completed_at > trip.requested_at

    def test_truth_intervals_contiguous(self, run_engine):
        indices = [t.interval_index for t in run_engine.truth]
        assert indices == list(range(indices[0], indices[0] + len(indices)))

    def test_truth_counts_fulfilled_rides(self, run_engine):
        fulfilled = sum(t.fulfilled_total for t in run_engine.truth)
        # Every fulfilled ride eventually completes (some still in
        # flight when the run ends).
        assert fulfilled >= len(run_engine.completed_trips)
        assert fulfilled > 0

    def test_truth_multipliers_quantized(self, run_engine):
        for truth in run_engine.truth:
            for m in truth.multipliers.values():
                assert m >= 1.0
                assert abs(m * 10 - round(m * 10)) < 1e-9


class TestPricingLookups:
    def test_multiplier_outside_region_is_one(self, run_engine):
        assert run_engine.true_multiplier(
            LatLon(0.0, 0.0), CarType.UBERX
        ) == 1.0

    def test_ubert_never_surges(self, run_engine):
        center = run_engine.config.region.bounding_box.center
        assert run_engine.true_multiplier(center, CarType.UBERT) == 1.0

    def test_observed_matches_true_without_jitter(self, run_engine):
        center = run_engine.config.region.bounding_box.center
        assert run_engine.observed_multiplier(
            "acct", center, CarType.UBERX
        ) == run_engine.true_multiplier(center, CarType.UBERX)

    def test_area_id_of_center(self, run_engine):
        center = run_engine.config.region.bounding_box.center
        assert run_engine.area_id_of(center) in (0, 1, 2, 3)


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = MarketplaceEngine(toy_config(), seed=5)
        b = MarketplaceEngine(toy_config(), seed=5)
        a.run(1800.0)
        b.run(1800.0)
        assert len(a.completed_trips) == len(b.completed_trips)
        assert [t.multipliers for t in a.truth] == [
            t.multipliers for t in b.truth
        ]
        assert a.online_count(CarType.UBERX) == b.online_count(
            CarType.UBERX
        )

    def test_different_seeds_differ(self):
        a = MarketplaceEngine(toy_config(), seed=5)
        b = MarketplaceEngine(toy_config(), seed=6)
        a.run(1800.0)
        b.run(1800.0)
        assert (
            len(a.completed_trips) != len(b.completed_trips)
            or [t.multipliers for t in a.truth]
            != [t.multipliers for t in b.truth]
        )

    def test_spatial_index_flag_is_behaviour_free(self):
        """Same seed, index on vs off ⇒ bit-identical worlds.

        The spatial index is a pure acceleration structure; if it ever
        changes a dispatch choice, an EWT, or an rng draw, every
        downstream analysis silently forks.  Compare the full
        IntervalTruth log, the trip ledger, and the rng stream itself.
        """
        def run(flag):
            engine = MarketplaceEngine(
                toy_config(jitter_probability=0.2),
                seed=13,
                use_spatial_index=flag,
            )
            engine.run(2 * 3600.0)
            return engine

        indexed, brute = run(True), run(False)
        assert indexed.truth == brute.truth
        assert indexed.completed_trips == brute.completed_trips
        assert indexed.rng.random() == brute.rng.random()

    def test_zero_surge_areas_engine_still_ticks(self):
        """No surge polygons (driver-set-pricing city) must not crash.

        Regression: ``_target_online`` divided by ``len(multipliers)``,
        a ZeroDivisionError the moment a region had no surge areas.
        """
        cfg = toy_config()
        region = dataclasses.replace(cfg.region, surge_areas=())
        engine = MarketplaceEngine(
            dataclasses.replace(cfg, region=region), seed=4
        )
        engine.run(1800.0)
        assert engine.online_count(CarType.UBERX) > 0
        center = engine.config.region.bounding_box.center
        assert engine.area_id_of(center) is None
        assert engine.true_multiplier(center, CarType.UBERX) == 1.0


class TestSurgeDynamics:
    def test_strained_market_surges(self):
        config = toy_config(
            peak_requests_per_hour=400.0, pressure_floor=0.05
        )
        engine = MarketplaceEngine(config, seed=9)
        engine.run(3 * 3600.0)
        mults = [
            m for t in engine.truth for m in t.multipliers.values()
        ]
        assert max(mults) > 1.0

    def test_quiet_market_does_not_surge(self):
        config = toy_config(
            peak_requests_per_hour=5.0, pressure_floor=3.0,
            surge_noise=0.0,
        )
        engine = MarketplaceEngine(config, seed=9)
        engine.run(2 * 3600.0)
        mults = [
            m for t in engine.truth for m in t.multipliers.values()
        ]
        assert max(mults) == 1.0

    def test_elastic_demand_suppressed_by_surge(self):
        """Priced-out riders appear once the market surges."""
        config = toy_config(
            peak_requests_per_hour=400.0, pressure_floor=0.05,
            elasticity=3.0,
        )
        engine = MarketplaceEngine(config, seed=9)
        engine.run(3 * 3600.0)
        priced_out = sum(t.priced_out for t in engine.truth)
        assert priced_out > 0


class TestNearestCarsView:
    def test_at_most_eight(self, run_engine):
        center = run_engine.config.region.bounding_box.center
        cars = run_engine.nearest_cars(center, CarType.UBERX, k=8)
        assert len(cars) <= 8
        for car in cars:
            assert car.is_dispatchable

    def test_sorted_by_distance(self, run_engine):
        center = run_engine.config.region.bounding_box.center
        cars = run_engine.nearest_cars(center, CarType.UBERX, k=8)
        dists = [c.location.fast_distance_m(center) for c in cars]
        assert dists == sorted(dists)
