"""Unit and property tests for the lat/lon primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.latlon import (
    EARTH_RADIUS_M,
    WALKING_SPEED_M_PER_MIN,
    LatLon,
    bearing_deg,
    destination,
    equirectangular_m,
    haversine_m,
    interpolate,
    walking_minutes,
)

NYC = LatLon(40.7580, -73.9855)
SF = LatLon(37.7946, -122.3999)

# Keep random coordinates away from the poles and the antimeridian,
# where the equirectangular comparison is meaningless at city scale.
lat_st = st.floats(min_value=-70.0, max_value=70.0)
lon_st = st.floats(min_value=-170.0, max_value=170.0)
small_offset = st.floats(min_value=-2000.0, max_value=2000.0)


class TestLatLon:
    def test_validation_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            LatLon(91.0, 0.0)
        with pytest.raises(ValueError):
            LatLon(-90.5, 0.0)

    def test_validation_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            LatLon(0.0, 181.0)

    def test_is_hashable_and_comparable(self):
        a = LatLon(1.0, 2.0)
        b = LatLon(1.0, 2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_offset_north_increases_latitude(self):
        p = NYC.offset(north_m=100.0, east_m=0.0)
        assert p.lat > NYC.lat
        assert p.lon == pytest.approx(NYC.lon)

    def test_offset_distance_matches_request(self):
        p = NYC.offset(north_m=300.0, east_m=400.0)
        assert NYC.distance_m(p) == pytest.approx(500.0, rel=1e-3)


class TestDistances:
    def test_zero_distance(self):
        assert haversine_m(NYC, NYC) == 0.0
        assert equirectangular_m(NYC, NYC) == 0.0

    def test_known_distance_nyc_to_sf(self):
        # Great-circle Times Square -> SF Financial District ~ 4,129 km.
        assert haversine_m(NYC, SF) == pytest.approx(4.13e6, rel=0.01)

    def test_one_degree_latitude(self):
        a = LatLon(0.0, 0.0)
        b = LatLon(1.0, 0.0)
        expected = math.radians(1.0) * EARTH_RADIUS_M
        assert haversine_m(a, b) == pytest.approx(expected, rel=1e-9)

    @given(lat=lat_st, lon=lon_st, north=small_offset, east=small_offset)
    @settings(max_examples=100)
    def test_equirectangular_matches_haversine_at_city_scale(
        self, lat, lon, north, east
    ):
        a = LatLon(lat, lon)
        b = a.offset(north, east)
        exact = haversine_m(a, b)
        fast = equirectangular_m(a, b)
        assert fast == pytest.approx(exact, rel=2e-3, abs=0.5)

    @given(lat1=lat_st, lon1=lon_st, lat2=lat_st, lon2=lon_st)
    @settings(max_examples=100)
    def test_haversine_symmetry(self, lat1, lon1, lat2, lon2):
        a, b = LatLon(lat1, lon1), LatLon(lat2, lon2)
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a))

    @given(lat1=lat_st, lon1=lon_st, lat2=lat_st, lon2=lon_st)
    @settings(max_examples=100)
    def test_haversine_bounded_by_half_circumference(
        self, lat1, lon1, lat2, lon2
    ):
        d = haversine_m(LatLon(lat1, lon1), LatLon(lat2, lon2))
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_M + 1.0


class TestDestinationAndBearing:
    def test_destination_north(self):
        p = destination(NYC, bearing=0.0, distance_m=1000.0)
        assert p.lat > NYC.lat
        assert haversine_m(NYC, p) == pytest.approx(1000.0, rel=1e-6)

    @given(
        lat=lat_st, lon=lon_st,
        bearing=st.floats(min_value=0.0, max_value=360.0),
        dist=st.floats(min_value=1.0, max_value=100_000.0),
    )
    @settings(max_examples=100)
    def test_destination_distance_roundtrip(self, lat, lon, bearing, dist):
        start = LatLon(lat, lon)
        end = destination(start, bearing, dist)
        assert haversine_m(start, end) == pytest.approx(dist, rel=1e-6)

    def test_bearing_cardinal_directions(self):
        east = NYC.offset(north_m=0.0, east_m=500.0)
        assert bearing_deg(NYC, east) == pytest.approx(90.0, abs=0.5)
        south = NYC.offset(north_m=-500.0, east_m=0.0)
        assert bearing_deg(NYC, south) == pytest.approx(180.0, abs=0.5)


class TestInterpolateAndWalking:
    def test_interpolate_endpoints(self):
        b = NYC.offset(500.0, 500.0)
        assert interpolate(NYC, b, 0.0) == NYC
        assert interpolate(NYC, b, 1.0) == b

    def test_interpolate_midpoint(self):
        b = NYC.offset(1000.0, 0.0)
        mid = interpolate(NYC, b, 0.5)
        assert haversine_m(NYC, mid) == pytest.approx(500.0, rel=1e-3)

    def test_interpolate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            interpolate(NYC, SF, 1.5)

    def test_walking_minutes_uses_paper_speed(self):
        b = NYC.offset(0.0, 830.0)
        assert walking_minutes(NYC, b) == pytest.approx(10.0, rel=1e-3)
        assert WALKING_SPEED_M_PER_MIN == 83.0
