"""Tests for the demand process: profiles, sampling, elasticity."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import toy_region
from repro.marketplace.rider import (
    DemandModel,
    DiurnalProfile,
    RideRequest,
    _poisson,
)
from repro.marketplace.types import CarType


def simple_profile() -> DiurnalProfile:
    return DiurnalProfile(
        weekday=((0.0, 0.2), (8.0, 1.0), (20.0, 0.4)),
        weekend=((0.0, 0.5), (14.0, 1.0)),
    )


def make_model(**kwargs) -> DemandModel:
    defaults = dict(
        region=toy_region(),
        profile=simple_profile(),
        peak_requests_per_hour=120.0,
        type_mix={CarType.UBERX: 10.0, CarType.UBERBLACK: 1.0},
    )
    defaults.update(kwargs)
    return DemandModel(**defaults)


class TestDiurnalProfile:
    def test_interpolates_between_points(self):
        p = simple_profile()
        assert p.level(4.0, False) == pytest.approx(0.6)

    def test_exact_control_points(self):
        p = simple_profile()
        assert p.level(8.0, False) == pytest.approx(1.0)
        assert p.level(0.0, False) == pytest.approx(0.2)

    def test_wraps_around_midnight(self):
        p = simple_profile()
        # Between 20.0 (0.4) and 24.0 (= next day's 0.0 at 0.2).
        assert p.level(22.0, False) == pytest.approx(0.3)
        assert p.level(23.99, False) < 0.3

    def test_weekend_uses_weekend_points(self):
        p = simple_profile()
        assert p.level(14.0, True) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(weekday=((0.0, 1.0),), weekend=((0.0, 1.0),))
        with pytest.raises(ValueError):
            DiurnalProfile(
                weekday=((8.0, 1.0), (0.0, 0.5)),
                weekend=((0.0, 1.0), (12.0, 1.0)),
            )
        with pytest.raises(ValueError):
            DiurnalProfile(
                weekday=((0.0, -0.1), (12.0, 1.0)),
                weekend=((0.0, 1.0), (12.0, 1.0)),
            )

    @given(hour=st.floats(min_value=0.0, max_value=23.999))
    @settings(max_examples=80)
    def test_level_always_nonnegative_and_bounded(self, hour):
        p = simple_profile()
        level = p.level(hour, False)
        assert 0.0 <= level <= 1.0


class TestPoissonSampler:
    def test_zero_lambda(self):
        assert _poisson(0.0, random.Random(0)) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            _poisson(-1.0, random.Random(0))

    def test_small_lambda_mean(self):
        rng = random.Random(42)
        n = 20_000
        total = sum(_poisson(0.3, rng) for _ in range(n))
        assert total / n == pytest.approx(0.3, rel=0.05)

    def test_large_lambda_uses_normal_approx(self):
        rng = random.Random(42)
        samples = [_poisson(400.0, rng) for _ in range(500)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(400.0, rel=0.02)
        assert all(s >= 0 for s in samples)


class TestElasticity:
    def test_no_surge_always_converts(self):
        model = make_model()
        assert model.conversion_probability(1.0, CarType.UBERX) == 1.0

    def test_ubert_immune_to_surge(self):
        model = make_model()
        assert model.conversion_probability(3.0, CarType.UBERT) == 1.0

    def test_exponential_decay(self):
        model = make_model(elasticity=2.0)
        p = model.conversion_probability(1.5, CarType.UBERX)
        assert p == pytest.approx(math.exp(-1.0))

    @given(
        m1=st.floats(min_value=1.0, max_value=3.0),
        m2=st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=50)
    def test_conversion_monotone_decreasing(self, m1, m2):
        model = make_model()
        p1 = model.conversion_probability(m1, CarType.UBERX)
        p2 = model.conversion_probability(m2, CarType.UBERX)
        if m1 <= m2:
            assert p1 >= p2


class TestGeneration:
    def test_requests_land_inside_region(self):
        model = make_model()
        rng = random.Random(3)
        region = model.region
        requests = []
        for step in range(600):
            requests.extend(
                model.generate(
                    now=step * 5.0, dt=5.0, hour=8.0, is_weekend=False,
                    rng=rng, multiplier_at=lambda loc, ct: 1.0,
                )
            )
        assert len(requests) > 20
        for request in requests:
            assert region.boundary.contains(request.pickup)
            assert region.boundary.contains(request.dropoff)
            assert request.converted  # no surge -> all convert

    def test_rate_scales_with_profile(self):
        model = make_model()
        rng = random.Random(5)
        count_peak = sum(
            len(model.generate(i * 5.0, 5.0, 8.0, False, rng,
                               lambda loc, ct: 1.0))
            for i in range(500)
        )
        model2 = make_model()
        count_off = sum(
            len(model2.generate(i * 5.0, 5.0, 0.0, False, rng,
                                lambda loc, ct: 1.0))
            for i in range(500)
        )
        assert count_peak > 2.5 * count_off

    def test_surge_suppresses_conversion(self):
        model = make_model(elasticity=3.0, wait_out_fraction=0.0)
        rng = random.Random(7)
        requests = []
        for i in range(800):
            requests.extend(
                model.generate(i * 5.0, 5.0, 8.0, False, rng,
                               lambda loc, ct: 2.0)
            )
        converted = [r for r in requests if r.converted]
        # exp(-3) ~ 5 % conversion expected.
        assert len(converted) < 0.15 * len(requests)

    def test_wait_out_riders_return_after_interval(self):
        model = make_model(elasticity=10.0, wait_out_fraction=1.0)
        rng = random.Random(9)
        # Priced-out riders at t~0 must re-request shortly after t=300.
        for i in range(20):
            model.generate(i * 5.0, 5.0, 8.0, False, rng,
                           lambda loc, ct: 3.0)
        assert model._deferred  # some riders are waiting
        returned = []
        for i in range(60, 80):
            returned.extend(
                model.generate(i * 5.0, 5.0, 8.0, False, rng,
                               lambda loc, ct: 1.0)
            )
        deferred = [r for r in returned if r.deferred_from is not None]
        assert deferred
        for r in deferred:
            assert r.converted  # surge gone, they ride
            assert r.requested_at >= 300.0

    def test_rider_ids_unique(self):
        model = make_model()
        rng = random.Random(11)
        ids = []
        for i in range(200):
            for r in model.generate(i * 5.0, 5.0, 8.0, False, rng,
                                    lambda loc, ct: 1.0):
                ids.append(r.rider_id)
        assert len(ids) == len(set(ids))

    def test_type_mix_ranking(self):
        model = make_model()
        rng = random.Random(13)
        counts = {CarType.UBERX: 0, CarType.UBERBLACK: 0}
        for i in range(3000):
            for r in model.generate(i * 5.0, 5.0, 8.0, False, rng,
                                    lambda loc, ct: 1.0):
                counts[r.car_type] += 1
        assert counts[CarType.UBERX] > 3 * counts[CarType.UBERBLACK]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_model(peak_requests_per_hour=0.0)
        with pytest.raises(ValueError):
            make_model(type_mix={})
        with pytest.raises(ValueError):
            make_model(wait_out_fraction=1.5)
