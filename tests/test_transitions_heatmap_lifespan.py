"""Tests for the transition model, heatmaps, and lifespan grouping."""

import pytest

from repro.geo.latlon import LatLon
from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog, ClientSample, RoundRecord
from repro.analysis.cleaning import CarTrack
from repro.analysis.heatmap import client_heatmap, render_grid
from repro.analysis.lifespan import lifespans_by_group, lifespans_by_type
from repro.analysis.transitions import (
    STATES,
    classify_conditions,
    transition_probabilities,
)

WEST = LatLon(40.75, -74.00)
EAST = LatLon(40.75, -73.98)


def area_of(p: LatLon):
    """Two areas: 0 west of -73.99, 1 east of it."""
    return 0 if p.lon < -73.99 else 1


def track(car_id, sightings, car_type=CarType.UBERX):
    t = CarTrack(car_id=car_id, car_type=car_type)
    t.sightings = sightings
    return t


class TestClassifyConditions:
    ADJ = {0: [1], 1: [0]}

    def test_equal_condition(self):
        mults = {0: {0: 1.0, 1: 1.0}, 1: {0: 1.0, 1: 1.0}}
        labels = classify_conditions(mults, self.ADJ)
        assert labels[0][1] == "equal"
        assert labels[1][1] == "equal"

    def test_surging_condition(self):
        mults = {0: {0: 1.5, 1: 1.0}, 1: {0: 1.0, 1: 1.0}}
        labels = classify_conditions(mults, self.ADJ)
        assert labels[0][1] == "surging"  # area 0 was 0.5 above at t-1
        assert labels[1][1] == "other"

    def test_below_margin_is_other(self):
        mults = {0: {0: 1.1, 1: 1.0}, 1: {0: 1.0, 1: 1.0}}
        labels = classify_conditions(mults, self.ADJ)
        assert labels[0][1] == "other"

    def test_missing_previous_interval_skipped(self):
        mults = {0: {5: 1.0}, 1: {5: 1.0}}
        labels = classify_conditions(mults, self.ADJ)
        assert 5 not in labels[0]


class TestTransitions:
    ADJ = {0: [1], 1: [0]}
    EQUAL_MULTS = {
        0: {i: 1.0 for i in range(6)},
        1: {i: 1.0 for i in range(6)},
    }

    def test_new_old_dying(self):
        # One car that lives in area 0 for intervals 1-3.
        tracks = {
            "a": track("a", [
                (300.0 + 10.0 * k, WEST.lat, WEST.lon) for k in range(90)
            ]),
        }
        stats = transition_probabilities(
            tracks, area_of, self.EQUAL_MULTS, self.ADJ,
            campaign_end_s=1800.0,
        )
        equal_0 = stats[(0, "equal")]
        assert equal_0.counts["new"] == 1
        assert equal_0.counts["dying"] == 1
        assert equal_0.counts["old"] >= 1
        assert equal_0.counts["in"] == 0

    def test_move_between_areas(self):
        # Interval 1: starts west, ends east.
        tracks = {
            "b": track("b", [
                (310.0, WEST.lat, WEST.lon),
                (590.0, EAST.lat, EAST.lon),
            ]),
        }
        stats = transition_probabilities(
            tracks, area_of, self.EQUAL_MULTS, self.ADJ,
            campaign_end_s=1800.0,
        )
        assert stats[(0, "equal")].counts["out"] == 1
        assert stats[(1, "equal")].counts["in"] == 1

    def test_survivor_not_dying(self):
        tracks = {
            "c": track("c", [
                (t, WEST.lat, WEST.lon) for t in range(300, 1800, 10)
            ]),
        }
        stats = transition_probabilities(
            tracks, area_of, self.EQUAL_MULTS, self.ADJ,
            campaign_end_s=1800.0,
        )
        assert stats[(0, "equal")].counts["dying"] == 0

    def test_probabilities_sum_to_one(self):
        tracks = {
            "a": track("a", [
                (300.0 + 10 * k, WEST.lat, WEST.lon) for k in range(60)
            ]),
            "b": track("b", [
                (310.0, WEST.lat, WEST.lon),
                (590.0, EAST.lat, EAST.lon),
            ]),
        }
        stats = transition_probabilities(
            tracks, area_of, self.EQUAL_MULTS, self.ADJ,
            campaign_end_s=1800.0,
        )
        probs = stats[(0, "equal")].probabilities()
        assert set(probs) == set(STATES)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_empty_area_all_zero(self):
        stats = transition_probabilities(
            {}, area_of, self.EQUAL_MULTS, self.ADJ
        )
        assert sum(stats[(1, "surging")].counts.values()) == 0
        assert all(
            v == 0.0
            for v in stats[(1, "surging")].probabilities().values()
        )


class TestHeatmap:
    def make_log(self):
        log = CampaignLog(
            city="x",
            client_positions={"c00": WEST, "c01": EAST},
            ping_interval_s=5.0,
        )
        for k in range(10):
            log.rounds.append(RoundRecord(
                t=5.0 * k,
                samples={
                    ("c00", CarType.UBERX): ClientSample(
                        1.0, 2.0, ("a", "b")),
                    ("c01", CarType.UBERX): ClientSample(
                        1.0, 4.0, ("c",)),
                },
                cars={},
            ))
        return log

    def test_unique_cars_and_ewt(self):
        cells = client_heatmap(self.make_log())
        by_id = {c.client_id: c for c in cells}
        # 45 s of data -> tiny fraction of a day, but unique counts hold.
        assert by_id["c00"].unique_cars_per_day > by_id[
            "c01"].unique_cars_per_day
        assert by_id["c00"].mean_ewt_minutes == pytest.approx(2.0)
        assert by_id["c01"].mean_ewt_minutes == pytest.approx(4.0)

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            client_heatmap(CampaignLog("x", {}, 5.0))

    def test_render_grid(self):
        cells = client_heatmap(self.make_log())
        text = render_grid(cells, value="ewt")
        assert "2.0" in text and "4.0" in text
        with pytest.raises(ValueError):
            render_grid(cells, value="bogus")


class TestLifespans:
    def test_grouping(self):
        tracks = {
            "x": track("x", [(0.0, 40.75, -74.0), (100.0, 40.75, -74.0)],
                       CarType.UBERX),
            "b": track("b", [(0.0, 40.75, -74.0), (900.0, 40.75, -74.0)],
                       CarType.UBERBLACK),
            "p": track("p", [(0.0, 40.75, -74.0), (50.0, 40.75, -74.0)],
                       CarType.UBERPOOL),
        }
        low, other = lifespans_by_group(tracks)
        assert sorted(low) == [50.0, 100.0]
        assert other == [900.0]

    def test_by_type(self):
        tracks = {
            "x": track("x", [(0.0, 40.75, -74.0), (100.0, 40.75, -74.0)]),
        }
        by_type = lifespans_by_type(tracks)
        assert by_type == {CarType.UBERX: [100.0]}
