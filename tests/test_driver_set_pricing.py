"""Tests for the Sidecar-style driver-set pricing engine."""

import pytest

from conftest import toy_config
from repro.marketplace.driver_set import (
    DriverSetParams,
    DriverSetPricingEngine,
)
from repro.marketplace.types import CarType


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriverSetParams(floor=0.0)
        with pytest.raises(ValueError):
            DriverSetParams(floor=1.2)
        with pytest.raises(ValueError):
            DriverSetParams(busy_minutes=20.0, slow_minutes=10.0)
        with pytest.raises(ValueError):
            DriverSetParams(step=0.0)


@pytest.fixture(scope="module")
def engine():
    e = DriverSetPricingEngine(
        toy_config(peak_requests_per_hour=250.0), seed=61
    )
    e.run(2 * 3600.0)
    return e


class TestPricingPath:
    def test_multiplier_is_nearest_drivers_rate(self, engine):
        center = engine.config.region.bounding_box.center
        nearest = engine.nearest_cars(center, CarType.UBERX, k=1)
        assert nearest
        assert engine.true_multiplier(
            center, CarType.UBERX
        ) == nearest[0].personal_rate

    def test_no_cars_means_base_rate(self, engine):
        from repro.geo.latlon import LatLon
        assert engine.true_multiplier(
            LatLon(0.0, 0.0), CarType.UBERSUV
        ) >= 0.8  # nearest-driver rate or base

    def test_observed_equals_true_everywhere(self, engine):
        """No jitter bug in the free-market mode."""
        center = engine.config.region.bounding_box.center
        for i in range(20):
            assert engine.observed_multiplier(
                f"acct{i}", center, CarType.UBERX
            ) == engine.true_multiplier(center, CarType.UBERX)

    def test_ubert_still_fixed(self, engine):
        center = engine.config.region.bounding_box.center
        assert engine.true_multiplier(center, CarType.UBERT) == 1.0


class TestRateDynamics:
    def test_rates_stay_in_bounds(self, engine):
        p = engine.pricing
        rates = engine.rate_distribution(CarType.UBERX)
        assert rates
        assert all(p.floor <= r <= p.cap for r in rates)

    def test_rates_diversify_over_time(self, engine):
        """A busy market pushes some rates up and some down."""
        rates = engine.rate_distribution(CarType.UBERX)
        assert len(set(rates)) > 1

    def test_busy_drivers_raise_idle_drivers_cut(self):
        e = DriverSetPricingEngine(toy_config(), seed=3)
        e.run(600.0)
        driver = e.idle_drivers(CarType.UBERX)[0]
        p = e.pricing
        # Simulate a just-finished trip: rate should step up.
        driver.last_trip_at = e.clock.now
        driver.personal_rate = 1.0
        for _ in range(200):
            e._post_step(e.clock.now, p.decision_s)  # force reviews
        assert driver.personal_rate > 1.0

    def test_fares_use_personal_rate(self):
        e = DriverSetPricingEngine(
            toy_config(peak_requests_per_hour=250.0), seed=5
        )
        e.run(3 * 3600.0)
        surged = [
            t for t in e.completed_trips if t.surge_multiplier != 1.0
        ]
        # In a busy free market, some trips clear above or below base.
        assert surged
