"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_defaults(self):
        args = build_parser().parse_args(
            ["measure", "--out", "x.jsonl"]
        )
        assert args.city == "manhattan"
        assert args.hours == 2.0
        assert args.func.__name__ == "cmd_measure"

    def test_rejects_unknown_city(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["measure", "--city", "tokyo", "--out", "x"]
            )


class TestEndToEnd:
    def test_measure_then_analyze(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        rc = main([
            "measure", "--city", "manhattan",
            "--hours", "0.25", "--warmup-hours", "0.5",
            "--ping-interval", "30", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "rounds" in captured.out

        rc = main(["analyze", str(out)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "supply/5min" in captured.out
        assert "surge" in captured.out

    def test_calibrate(self, capsys):
        rc = main(["calibrate", "--city", "manhattan", "--hour", "1"])
        captured = capsys.readouterr()
        # Either a radius was measured or the quiet hour had no cars;
        # both are legitimate outcomes the command must report cleanly.
        assert rc in (0, 1)
        assert captured.out


class TestTraceStats:
    def test_synthetic_summary(self, capsys):
        from repro.cli import main
        rc = main(["tracestats", "--cabs", "30", "--days", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "synthetic trace:" in out
        assert "medallions" in out

    def test_tlc_file(self, tmp_path, capsys):
        from repro.cli import main
        header = (
            "medallion,hack_license,vendor_id,rate_code,"
            "store_and_fwd_flag,pickup_datetime,dropoff_datetime,"
            "passenger_count,trip_time_in_secs,trip_distance,"
            "pickup_longitude,pickup_latitude,dropoff_longitude,"
            "dropoff_latitude"
        )
        row = (
            "M1,H,V,1,N,2013-04-04 08:00:00,2013-04-04 08:10:00,1,600,"
            "1.2,-73.985,40.755,-73.98,40.76"
        )
        path = tmp_path / "trip_data.csv"
        path.write_text(header + "\n" + row + "\n")
        rc = main(["tracestats", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tlc trace:" in out


class TestSurgeMapCommand:
    def test_renders(self, capsys):
        from repro.cli import main
        rc = main(["surgemap", "--city", "manhattan", "--hour", "0.2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "surge map" in out
        assert "area 0" in out
