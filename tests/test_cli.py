"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_defaults(self):
        args = build_parser().parse_args(
            ["measure", "--out", "x.jsonl"]
        )
        assert args.city == "manhattan"
        assert args.hours == 2.0
        assert args.func.__name__ == "cmd_measure"

    def test_rejects_unknown_city(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["measure", "--city", "tokyo", "--out", "x"]
            )


class TestEndToEnd:
    def test_measure_then_analyze(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        rc = main([
            "measure", "--city", "manhattan",
            "--hours", "0.25", "--warmup-hours", "0.5",
            "--ping-interval", "30", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "rounds" in captured.out

        rc = main(["analyze", str(out)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "supply/5min" in captured.out
        assert "surge" in captured.out

    def test_measure_multi_seed_sweep(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        rc = main([
            "measure", "--city", "manhattan",
            "--hours", "0.05", "--warmup-hours", "0",
            "--seeds", "3,4", "--jobs", "2", "--out", str(out),
        ])
        assert rc == 0
        assert (tmp_path / "sweep.s3.jsonl").exists()
        assert (tmp_path / "sweep.s4.jsonl").exists()
        captured = capsys.readouterr()
        assert "manhattan-s3" in captured.out
        assert "manhattan-s4" in captured.out

    def test_measure_sweep_reports_failures(self, tmp_path, capsys,
                                            monkeypatch):
        # Duplicate seeds are a spec error the CLI must reject early.
        with pytest.raises(SystemExit):
            main([
                "measure", "--seeds", "3,3", "--jobs", "2",
                "--out", str(tmp_path / "x.jsonl"),
            ])

    def test_calibrate(self, capsys):
        rc = main(["calibrate", "--city", "manhattan", "--hour", "1"])
        captured = capsys.readouterr()
        # Either a radius was measured or the quiet hour had no cars;
        # both are legitimate outcomes the command must report cleanly.
        assert rc in (0, 1)
        assert captured.out


class TestTraceStats:
    def test_synthetic_summary(self, capsys):
        from repro.cli import main
        rc = main(["tracestats", "--cabs", "30", "--days", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "synthetic trace:" in out
        assert "medallions" in out

    def test_tlc_file(self, tmp_path, capsys):
        from repro.cli import main
        header = (
            "medallion,hack_license,vendor_id,rate_code,"
            "store_and_fwd_flag,pickup_datetime,dropoff_datetime,"
            "passenger_count,trip_time_in_secs,trip_distance,"
            "pickup_longitude,pickup_latitude,dropoff_longitude,"
            "dropoff_latitude"
        )
        row = (
            "M1,H,V,1,N,2013-04-04 08:00:00,2013-04-04 08:10:00,1,600,"
            "1.2,-73.985,40.755,-73.98,40.76"
        )
        path = tmp_path / "trip_data.csv"
        path.write_text(header + "\n" + row + "\n")
        rc = main(["tracestats", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tlc trace:" in out


class TestSurgeMapCommand:
    def test_renders(self, capsys):
        from repro.cli import main
        rc = main(["surgemap", "--city", "manhattan", "--hour", "0.2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "surge map" in out
        assert "area 0" in out


class TestLintCommand:
    """The `repro lint` subcommand (determinism + concurrency passes)."""

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text(
            "import random\n\n\n"
            "def make(seed: int) -> random.Random:\n"
            "    return random.Random(seed)\n"
        )
        rc = main(["lint", str(clean)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_exit_nonzero_with_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import random\n\n\n"
            "def roll() -> float:\n"
            "    return random.random()\n"
        )
        rc = main(["lint", str(dirty)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "dirty.py:5" in out

    def test_json_report(self, tmp_path, capsys):
        import json as jsonlib

        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n\n\n"
            "def stamp() -> float:\n"
            "    return time.time()\n"
        )
        rc = main(["lint", "--json", str(dirty)])
        assert rc == 1
        payload = jsonlib.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        codes = [f["code"] for f in payload["findings"]]
        assert codes == ["REP002"]

    def test_missing_path_exits_two(self, capsys):
        rc = main(["lint", "definitely/not/a/path.py"])
        assert rc == 2
        assert "no such path" in capsys.readouterr().err

    def test_repo_source_tree_is_clean_via_cli(self, capsys):
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        rc = main(["lint", str(src)])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_sarif_report(self, tmp_path, capsys):
        import json as jsonlib

        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n\n\n"
            "def stamp() -> float:\n"
            "    return time.time()\n"
        )
        rc = main(["lint", "--format", "sarif", str(dirty)])
        assert rc == 1
        payload = jsonlib.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"REP001", "REP101", "REP105"} <= rule_ids
        results = run["results"]
        assert [r["ruleId"] for r in results] == ["REP002"]
        assert results[0]["level"] == "error"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5

    def test_sarif_suppressed_finding_carries_justification(
        self, tmp_path, capsys
    ):
        import json as jsonlib

        justified = tmp_path / "justified.py"
        justified.write_text(
            "import math\n\n\n"
            "def d(a: float, b: float) -> float:\n"
            "    return math.hypot(a, b)"
            "  # repro: noqa=REP004 -- exercising sarif suppression\n"
        )
        rc = main(["lint", "--format", "sarif", str(justified)])
        assert rc == 0
        payload = jsonlib.loads(capsys.readouterr().out)
        results = payload["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["level"] == "note"
        assert results[0]["suppressions"][0]["kind"] == "inSource"
        assert "sarif" in results[0]["suppressions"][0]["justification"]

    def test_output_writes_report_to_file(self, tmp_path, capsys):
        import json as jsonlib

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        out_file = tmp_path / "report.sarif"
        rc = main([
            "lint", "--format", "sarif",
            "--output", str(out_file), str(clean),
        ])
        assert rc == 0
        assert capsys.readouterr().out == ""
        payload = jsonlib.loads(out_file.read_text())
        assert payload["runs"][0]["results"] == []

    def test_explain_prints_rule_entry(self, capsys):
        rc = main(["lint", "--explain", "REP102"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "REP102" in out
        assert "weak" in out.lower()

    def test_explain_unknown_code_exits_two(self, capsys):
        rc = main(["lint", "--explain", "REP999"])
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_json_format_conflict_rejected(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        rc = main(["lint", "--json", "--format", "sarif", str(clean)])
        assert rc == 2
        assert "conflicts" in capsys.readouterr().err

    def test_concurrency_finding_via_cli(self, tmp_path, capsys):
        dirty = tmp_path / "spawn.py"
        dirty.write_text(
            "import asyncio\n\n\n"
            "async def go(worker) -> None:\n"
            "    asyncio.create_task(worker())\n"
        )
        rc = main(["lint", str(dirty)])
        assert rc == 1
        assert "REP102" in capsys.readouterr().out
