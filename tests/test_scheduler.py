"""Tests for the API request scheduler."""

import pytest

from repro.api.ratelimit import RateLimiter, RateLimitExceeded
from repro.measurement.scheduler import ProbePlan, RequestScheduler


class TestPlanning:
    def test_small_workload_one_account(self):
        scheduler = RequestScheduler()
        plan = scheduler.plan(queries_per_round=30, round_period_s=300.0)
        # 30 * 12 = 360 req/h < 900 effective.
        assert plan.accounts_needed == 1

    def test_large_workload_scales_accounts(self):
        scheduler = RequestScheduler()
        plan = scheduler.plan(queries_per_round=500, round_period_s=300.0)
        # 6000 req/h over 900 effective -> 7 accounts.
        assert plan.accounts_needed == 7
        assert plan.queries_per_account_per_hour <= scheduler.effective_limit

    def test_margin_reserves_headroom(self):
        tight = RequestScheduler(safety_margin=1.0)
        safe = RequestScheduler(safety_margin=0.5)
        assert safe.plan(300, 300.0).accounts_needed >= tight.plan(
            300, 300.0
        ).accounts_needed

    def test_describe(self):
        plan = RequestScheduler().plan(100, 300.0)
        assert "accounts" in plan.describe()

    def test_validation(self):
        scheduler = RequestScheduler()
        with pytest.raises(ValueError):
            scheduler.plan(0, 300.0)
        with pytest.raises(ValueError):
            scheduler.plan(10, 0.0)
        with pytest.raises(ValueError):
            RequestScheduler(limit_per_hour=0)
        with pytest.raises(ValueError):
            RequestScheduler(safety_margin=0.0)

    def test_accounts_named(self):
        scheduler = RequestScheduler()
        plan = ProbePlan(3, 10, 12.0, 40.0)
        assert scheduler.make_accounts(plan) == [
            "probe000", "probe001", "probe002"
        ]


class TestEffectiveLimitClamp:
    """Regression: `int(limit * margin)` truncated small limits to 0,
    making `account_for` reject every account and `plan` divide by
    zero."""

    def test_small_limit_not_truncated_to_zero(self):
        scheduler = RequestScheduler(limit_per_hour=1, safety_margin=0.9)
        assert scheduler.effective_limit == 1

    def test_plan_survives_clamped_limit(self):
        scheduler = RequestScheduler(limit_per_hour=1, safety_margin=0.9)
        plan = scheduler.plan(queries_per_round=1, round_period_s=3600.0)
        assert plan.accounts_needed == 1

    def test_account_for_usable_at_clamped_limit(self):
        scheduler = RequestScheduler(limit_per_hour=1, safety_margin=0.9)
        # The single unit of budget is grantable — and then enforced.
        assert scheduler.account_for(["a"], 0.0) == "a"
        assert scheduler.account_for(["a"], 1.0) is None

    def test_margin_still_trims_above_one(self):
        # The clamp must not weaken the margin where it is meaningful.
        scheduler = RequestScheduler(
            limit_per_hour=10, safety_margin=0.95
        )
        assert scheduler.effective_limit == 9


class TestRuntimeAssignment:
    def test_spreads_load_evenly(self):
        scheduler = RequestScheduler(limit_per_hour=10, safety_margin=1.0)
        accounts = ["a", "b"]
        picks = [scheduler.account_for(accounts, 0.0) for _ in range(10)]
        assert picks.count("a") == 5
        assert picks.count("b") == 5

    def test_exhausted_budget_returns_none(self):
        scheduler = RequestScheduler(limit_per_hour=2, safety_margin=1.0)
        accounts = ["a"]
        assert scheduler.account_for(accounts, 0.0) == "a"
        assert scheduler.account_for(accounts, 1.0) == "a"
        assert scheduler.account_for(accounts, 2.0) is None

    def test_window_expiry_frees_budget(self):
        scheduler = RequestScheduler(
            limit_per_hour=1, window_s=100.0, safety_margin=1.0
        )
        assert scheduler.account_for(["a"], 0.0) == "a"
        assert scheduler.account_for(["a"], 50.0) is None
        assert scheduler.account_for(["a"], 150.0) == "a"

    def test_never_trips_the_limiter(self):
        """Scheduler-approved requests must never raise in the limiter."""
        limiter = RateLimiter(limit=20, window_s=3600.0)
        scheduler = RequestScheduler(
            limit_per_hour=20, safety_margin=0.9
        )
        accounts = ["a", "b", "c"]
        t = 0.0
        issued = 0
        for _ in range(200):
            account = scheduler.account_for(accounts, t)
            if account is not None:
                limiter.check(account, t)  # must not raise
                issued += 1
            t += 30.0
        assert issued > 50

    def test_requires_accounts(self):
        with pytest.raises(ValueError):
            RequestScheduler().account_for([], 0.0)

    def test_total_spent(self):
        scheduler = RequestScheduler(limit_per_hour=100,
                                     safety_margin=1.0)
        for i in range(7):
            scheduler.account_for(["a", "b"], float(i))
        assert scheduler.total_spent(10.0) == 7
