"""Tests for the wait-out strategy analysis."""

import pytest

from repro.strategy.waiting import expected_premium_paid, wait_out_table


def spiky_clock():
    """Surges of exactly one interval: 1, X, 1, 1, Y, 1, ..."""
    clock = {}
    for i in range(60):
        if i % 5 == 1:
            clock[i] = 1.5
        else:
            clock[i] = 1.0
    return clock


def sustained_clock():
    """A single long surge."""
    clock = {i: 1.0 for i in range(30)}
    for i in range(10, 20):
        clock[i] = 2.0
    return clock


class TestWaitOutTable:
    def test_spiky_market_rewards_waiting_one_interval(self):
        outcomes = wait_out_table(spiky_clock(), max_wait_intervals=2)
        one = outcomes[0]
        assert one.intervals_waited == 1
        assert one.fully_cleared == 1.0
        assert one.improved == 1.0
        assert one.mean_reduction == pytest.approx(0.5)
        assert one.mean_after == pytest.approx(1.0)

    def test_sustained_market_needs_longer_waits(self):
        outcomes = wait_out_table(sustained_clock(), max_wait_intervals=3)
        one, two, three = outcomes
        # Waiting 1 interval only helps near the surge's end.
        assert one.fully_cleared < 0.2
        assert three.fully_cleared > one.fully_cleared

    def test_observation_counts(self):
        outcomes = wait_out_table(spiky_clock(), max_wait_intervals=1)
        assert outcomes[0].observations == len(
            [i for i, m in spiky_clock().items() if m > 1.0]
        )

    def test_no_surges_yields_empty(self):
        clock = {i: 1.0 for i in range(20)}
        assert wait_out_table(clock) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            wait_out_table({0: 1.5}, max_wait_intervals=0)


class TestExpectedPremium:
    def test_spiky_market_premium_recovered(self):
        now, later = expected_premium_paid(spiky_clock(), 1)
        assert now == pytest.approx(0.5)
        assert later == pytest.approx(0.0)

    def test_sustained_market_premium_persists(self):
        now, later = expected_premium_paid(sustained_clock(), 1)
        assert later > 0.5 * now

    def test_no_surge_raises(self):
        with pytest.raises(ValueError):
            expected_premium_paid({0: 1.0, 1: 1.0}, 1)


class TestOnLiveCampaign:
    def test_toy_market_waiting_pays(self, toy_campaign):
        from repro.marketplace.types import CarType
        from repro.analysis.surge_stats import interval_multipliers
        _, log = toy_campaign
        cid = log.client_ids[0]
        clock = interval_multipliers(
            log.multiplier_series(cid, CarType.UBERX)
        )
        outcomes = wait_out_table(clock, max_wait_intervals=3)
        if outcomes:  # the toy campaign surges, so it should
            # In a flickering market, waiting usually helps or at least
            # does not systematically hurt by much.
            assert outcomes[-1].mean_reduction > -0.5
            for o in outcomes:
                assert 0.0 <= o.fully_cleared <= 1.0
