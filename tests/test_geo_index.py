"""Property tests: spatial indexes vs their brute-force references.

The dispatcher and ping endpoint replaced linear scans with
:class:`PointIndex` / :class:`AreaIndex` on the promise of *exact*
behavioural equivalence — same results, same ``(distance, id)``
tie-break, same first-match area resolution.  These tests hold the
indexes to that promise under randomized fleets, moves, removals,
off-grid queries, and overlapping polygons.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.index import METERS_PER_DEG_LAT, AreaIndex, PointIndex
from repro.geo.latlon import LatLon
from repro.geo.polygon import Polygon

# A ~11 km box around lower Manhattan keeps coordinates in the regime
# the simulator actually uses.
LAT0, LAT1 = 40.70, 40.80
LON0, LON1 = -74.02, -73.92

lat_st = st.floats(LAT0, LAT1, allow_nan=False)
lon_st = st.floats(LON0, LON1, allow_nan=False)
point_st = st.builds(LatLon, lat_st, lon_st)
# Queries may land outside the populated box (edge-of-city clients).
q_lat_st = st.floats(LAT0 - 0.05, LAT1 + 0.05, allow_nan=False)
q_lon_st = st.floats(LON0 - 0.05, LON1 + 0.05, allow_nan=False)
query_st = st.builds(LatLon, q_lat_st, q_lon_st)

REF_LAT = (LAT0 + LAT1) / 2.0


def make_index(metric: str, cell_m: float) -> PointIndex:
    if metric == "planar":
        return PointIndex(
            cell_m=cell_m,
            metric="planar",
            deg_lat_m=METERS_PER_DEG_LAT,
            deg_lon_m=METERS_PER_DEG_LAT * math.cos(math.radians(REF_LAT)),
        )
    return PointIndex(cell_m=cell_m, ref_lat=REF_LAT)


def brute_nearest(index, points, query, k, predicate=None):
    found = [
        (index._distance(loc, query), pid, payload)
        for pid, (loc, payload) in points.items()
        if predicate is None or predicate(payload)
    ]
    found.sort()
    return found[:k]


@st.composite
def fleet_histories(draw):
    """An insert/move/remove history plus the surviving ground truth."""
    n = draw(st.integers(min_value=0, max_value=120))
    inserts = [(i, draw(point_st)) for i in range(n)]
    moved = draw(
        st.lists(st.integers(0, n - 1), max_size=n, unique=True)
        if n
        else st.just([])
    )
    moves = [(i, draw(point_st)) for i in moved]
    removed = draw(
        st.lists(st.integers(0, n - 1), max_size=n // 2, unique=True)
        if n
        else st.just([])
    )
    return inserts, moves, removed


class TestPointIndexMatchesBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        history=fleet_histories(),
        metric=st.sampled_from(["equirect", "planar"]),
        cell_m=st.sampled_from([40.0, 120.0, 250.0]),
        queries=st.lists(query_st, min_size=1, max_size=6),
        k=st.integers(min_value=1, max_value=12),
    )
    def test_nearest_k(self, history, metric, cell_m, queries, k):
        inserts, moves, removed = history
        index = make_index(metric, cell_m)
        points = {}
        for pid, loc in inserts:
            index.insert(pid, loc, payload=pid * 10)
            points[pid] = (loc, pid * 10)
        for pid, loc in moves:
            index.move(pid, loc)
            points[pid] = (loc, points[pid][1])
        for pid in removed:
            index.remove(pid)
            del points[pid]
        assert len(index) == len(points)
        for query in queries:
            got = index.nearest_k(query, k)
            assert got == brute_nearest(index, points, query, k)
            # Predicate form must filter *before* ranking.
            pred = lambda payload: (payload // 10) % 2 == 0
            got_pred = index.nearest_k(query, k, predicate=pred)
            assert got_pred == brute_nearest(
                index, points, query, k, predicate=pred
            )

    def test_empty_and_nonpositive_k(self):
        index = make_index("equirect", 120.0)
        center = LatLon(REF_LAT, (LON0 + LON1) / 2.0)
        assert index.nearest_k(center, 5) == []
        index.insert("a", center)
        assert index.nearest_k(center, 0) == []

    def test_duplicate_insert_rejected(self):
        index = make_index("equirect", 120.0)
        index.insert("a", LatLon(40.75, -73.98))
        with pytest.raises(ValueError):
            index.insert("a", LatLon(40.76, -73.97))

    def test_membership_and_location(self):
        index = make_index("equirect", 120.0)
        loc = LatLon(40.75, -73.98)
        index.insert("a", loc)
        assert "a" in index
        assert index.location_of("a") == loc
        moved = LatLon(40.751, -73.981)
        index.move("a", moved)
        assert index.location_of("a") == moved
        index.remove("a")
        assert "a" not in index
        with pytest.raises(KeyError):
            index.remove("a")


@st.composite
def area_polys(draw):
    """A rectangle or triangle somewhere in the box (overlaps allowed)."""
    lat = draw(st.floats(LAT0, LAT1 - 0.03, allow_nan=False))
    lon = draw(st.floats(LON0, LON1 - 0.03, allow_nan=False))
    if draw(st.booleans()):
        h = draw(st.floats(0.002, 0.03, allow_nan=False))
        w = draw(st.floats(0.002, 0.03, allow_nan=False))
        return Polygon(
            [
                LatLon(lat, lon),
                LatLon(lat, lon + w),
                LatLon(lat + h, lon + w),
                LatLon(lat + h, lon),
            ]
        )
    dl = st.floats(0.0, 0.03, allow_nan=False)
    return Polygon(
        [
            LatLon(lat, lon + draw(dl)),
            LatLon(lat + draw(dl), lon + 0.03),
            LatLon(lat + 0.03, lon + draw(dl)),
        ]
    )


class TestAreaIndexMatchesBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(
        polys=st.lists(area_polys(), max_size=5),
        queries=st.lists(query_st, min_size=1, max_size=25),
    )
    def test_locate_is_first_match(self, polys, queries):
        areas = [(area_id, poly) for area_id, poly in enumerate(polys)]
        index = AreaIndex(areas, cell_m=300.0)
        for query in queries:
            expected = next(
                (
                    area_id
                    for area_id, poly in areas
                    if poly.contains(query)
                ),
                None,
            )
            assert index.locate(query) == expected

    @settings(max_examples=25, deadline=None)
    @given(polys=st.lists(area_polys(), min_size=1, max_size=4))
    def test_vertices_resolve_like_brute_force(self, polys):
        """Edge-adjacent points land in boundary cells → exact ray cast."""
        areas = [(area_id, poly) for area_id, poly in enumerate(polys)]
        index = AreaIndex(areas, cell_m=300.0)
        for _, poly in areas:
            for vertex in poly.vertices:
                expected = next(
                    (
                        area_id
                        for area_id, p in areas
                        if p.contains(vertex)
                    ),
                    None,
                )
                assert index.locate(vertex) == expected

    def test_empty_area_set(self):
        index = AreaIndex([])
        assert index.locate(LatLon(40.75, -73.98)) is None
        assert index.cell_count == 0

    def test_far_outside_bbox_is_none(self):
        poly = Polygon(
            [
                LatLon(40.70, -74.00),
                LatLon(40.70, -73.98),
                LatLon(40.72, -73.98),
                LatLon(40.72, -74.00),
            ]
        )
        index = AreaIndex([(7, poly)])
        assert index.locate(LatLon(41.5, -74.0)) is None
        assert index.locate(LatLon(40.71, -73.99)) == 7
