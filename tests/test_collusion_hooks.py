"""Tests for the supply-withholding experiment hooks."""

import pytest

from conftest import toy_config
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


@pytest.fixture
def engine():
    e = MarketplaceEngine(toy_config(), seed=31)
    e.run(1200.0)
    return e


class TestWithholdSupply:
    def test_withholds_idle_drivers(self, engine):
        before = engine.online_count(CarType.UBERX)
        ids = engine.withhold_supply(CarType.UBERX, 10)
        assert 0 < len(ids) <= 10
        assert engine.online_count(CarType.UBERX) == before - len(ids)
        # Withheld drivers are genuinely offline.
        online_ids = {
            d.driver_id for d in engine._online_by_type[CarType.UBERX]
        }
        assert not online_ids & set(ids)

    def test_capped_by_idle_pool(self, engine):
        idle = len(engine.idle_drivers(CarType.UBERX))
        ids = engine.withhold_supply(CarType.UBERX, idle + 50)
        assert len(ids) == idle

    def test_area_filter(self, engine):
        ids = engine.withhold_supply(CarType.UBERX, 100, area_id=0)
        # None of the withheld drivers were outside area 0 when taken.
        assert isinstance(ids, list)

    def test_rejects_negative_count(self, engine):
        with pytest.raises(ValueError):
            engine.withhold_supply(CarType.UBERX, -1)


class TestReleaseSupply:
    def test_roundtrip_restores_drivers(self, engine):
        before = engine.online_count(CarType.UBERX)
        ids = engine.withhold_supply(CarType.UBERX, 8)
        restored = engine.release_supply(ids)
        assert restored == len(ids)
        assert engine.online_count(CarType.UBERX) == before
        online_ids = {
            d.driver_id for d in engine._online_by_type[CarType.UBERX]
        }
        assert set(ids) <= online_ids

    def test_released_drivers_get_fresh_tokens(self, engine):
        driver = engine.idle_drivers(CarType.UBERX)[0]
        token = driver.session_token
        engine.withhold_supply(CarType.UBERX, 999)
        engine.release_supply([driver.driver_id])
        assert driver.session_token != token

    def test_unknown_ids_ignored(self, engine):
        assert engine.release_supply([999_999]) == 0


class TestAttackMovesPrices:
    def test_withholding_shrinks_observed_supply_pressure(self):
        """Removing most idle supply must raise subsequent multipliers."""
        import dataclasses
        from repro.marketplace.config import BurstParams
        config = toy_config(
            surge_noise=0.0, pressure_floor=0.05,
            peak_requests_per_hour=250.0,
        )
        # Freeze exogenous bursts so the runs differ only by the attack.
        config = dataclasses.replace(
            config, burst=BurstParams(sigma=0.0)
        )
        attack = MarketplaceEngine(config, seed=41)
        control = MarketplaceEngine(config, seed=41)
        for engine in (attack, control):
            engine.run(1800.0)
        attack.withhold_supply(CarType.UBERX, 60)
        attack.run(900.0)
        control.run(900.0)
        # Compare the peak over the post-attack intervals (ramping is
        # capped per update, so give it three updates).
        attack_mult = max(
            m for t in attack.truth[-3:] for m in t.multipliers.values()
        )
        control_mult = max(
            m for t in control.truth[-3:] for m in t.multipliers.values()
        )
        assert attack_mult >= control_mult
        assert attack_mult > 1.0
