"""Tests for the surge-avoidance strategy (§6)."""

import pytest

from conftest import toy_config
from repro.geo.latlon import LatLon, walking_minutes
from repro.api.ratelimit import RateLimiter
from repro.api.rest import RestApi
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.strategy.avoidance import SurgeAvoider, evaluate_campaign
from repro.measurement.fleet import MarketplaceWorld


@pytest.fixture
def setup():
    """A warm toy marketplace with a jumbo rate budget for the avoider."""
    engine = MarketplaceEngine(
        toy_config(surge_noise=0.0, pressure_floor=0.5,
                   peak_requests_per_hour=60.0),
        seed=23,
    )
    engine.run(1800.0)
    api = RestApi(engine, RateLimiter(limit=10_000_000))
    avoider = SurgeAvoider(api, engine.config.region)
    return engine, api, avoider


def origin_in_area(engine, area_id):
    """A point well inside the given surge area."""
    return engine.config.region.area_by_id(area_id).polygon.centroid()


class TestEvaluate:
    def test_no_surge_nothing_to_save(self, setup):
        engine, _, avoider = setup
        engine.surge.force_multipliers({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        outcome = avoider.evaluate(origin_in_area(engine, 0))
        assert outcome.origin_multiplier == 1.0
        assert not outcome.saved
        assert outcome.reduction == 0.0
        # All adjacent areas were still queried.
        assert len(outcome.options) == 3

    def test_saves_when_neighbor_cheaper(self, setup):
        engine, _, avoider = setup
        engine.surge.force_multipliers({0: 2.5, 1: 1.0, 2: 1.0, 3: 1.0})
        outcome = avoider.evaluate(origin_in_area(engine, 0))
        assert outcome.origin_multiplier == 2.5
        # Toy areas are ~700 m across: the walk beats a multi-minute EWT
        # whenever any car is a few hundred metres away.
        if outcome.saved:
            assert outcome.best.multiplier < 2.5
            assert outcome.reduction == pytest.approx(
                2.5 - outcome.best.multiplier
            )
            assert outcome.best.walk_minutes <= outcome.best.ewt_minutes

    def test_never_picks_more_expensive_area(self, setup):
        engine, _, avoider = setup
        engine.surge.force_multipliers({0: 1.5, 1: 2.5, 2: 2.5, 3: 2.5})
        outcome = avoider.evaluate(origin_in_area(engine, 0))
        assert not outcome.saved

    def test_pickup_points_inside_target_area(self, setup):
        engine, _, avoider = setup
        engine.surge.force_multipliers({0: 2.0, 1: 1.0, 2: 1.0, 3: 1.0})
        outcome = avoider.evaluate(origin_in_area(engine, 0))
        region = engine.config.region
        for option in outcome.options:
            area = region.area_of(option.pickup_point)
            assert area is not None
            assert area.area_id == option.area_id

    def test_walk_minutes_uses_great_circle(self, setup):
        engine, _, avoider = setup
        origin = origin_in_area(engine, 0)
        outcome = avoider.evaluate(origin)
        for option in outcome.options:
            assert option.walk_minutes == pytest.approx(
                walking_minutes(origin, option.pickup_point)
            )

    def test_outside_region_yields_no_options(self, setup):
        _, _, avoider = setup
        outcome = avoider.evaluate(LatLon(0.0, 0.0))
        assert outcome.options == ()
        assert not outcome.saved


class TestEvaluateCampaign:
    def test_collects_per_origin_outcomes(self, setup):
        engine, _, avoider = setup
        world = MarketplaceWorld(engine)
        origins = [origin_in_area(engine, 0), origin_in_area(engine, 1)]
        results = evaluate_campaign(world, avoider, origins, rounds=3,
                                    interval_s=300.0)
        assert set(results) == {0, 1}
        assert all(len(v) == 3 for v in results.values())

    def test_rejects_zero_rounds(self, setup):
        engine, _, avoider = setup
        with pytest.raises(ValueError):
            evaluate_campaign(
                MarketplaceWorld(engine), avoider, [], rounds=0
            )
