"""End-to-end methodology validation against taxi ground truth (§3.5)."""

import pytest

from repro.geo.regions import midtown_manhattan
from repro.measurement.fleet import Fleet, TaxiWorld
from repro.measurement.placement import place_clients
from repro.taxi.generator import TaxiGeneratorParams, TaxiTraceGenerator
from repro.taxi.replay import TaxiReplayServer
from repro.validation.validate import validate_against_taxis


@pytest.fixture(scope="module")
def validation_setup():
    """A 2-hour midday taxi measurement with a dense client grid."""
    region = midtown_manhattan()
    gen = TaxiTraceGenerator(
        TaxiGeneratorParams(fleet_size=250, days=0.8), seed=31,
        region=region,
    )
    replay = TaxiReplayServer(gen.generate(), seed=31)
    fleet = Fleet(
        place_clients(region, radius_m=100.0),
        ping_interval_s=10.0,
    )
    log = fleet.run(TaxiWorld(replay), duration_s=2 * 3600.0,
                    city="taxi-validation", warmup_s=10 * 3600.0)
    return region, replay, log


class TestTaxiValidation:
    def test_capture_rates_are_high(self, validation_setup):
        region, replay, log = validation_setup
        report = validate_against_taxis(log, replay,
                                        boundary=region.boundary)
        # The paper reports 97 % / 95 %; a dense grid on the synthetic
        # trace must land in the same regime.
        assert report.car_capture > 0.85
        assert 0.5 < report.death_capture <= 1.3

    def test_series_track_ground_truth(self, validation_setup):
        region, replay, log = validation_setup
        report = validate_against_taxis(log, replay,
                                        boundary=region.boundary)
        assert report.supply_correlation > 0.7
        assert len(report.intervals) >= 20

    def test_short_campaign_rejected(self, validation_setup):
        region, replay, log = validation_setup
        from repro.measurement.records import CampaignLog
        tiny = CampaignLog(log.city, log.client_positions,
                           log.ping_interval_s)
        tiny.rounds = log.rounds[:3]
        with pytest.raises(ValueError):
            validate_against_taxis(tiny, replay)

    def test_sparse_grid_captures_less(self, validation_setup):
        """Undercoverage must be *visible* — that is the experiment's
        point: too few clients -> missed cars."""
        region, replay, log = validation_setup
        dense = validate_against_taxis(log, replay,
                                       boundary=region.boundary)
        # Re-run with a 5x sparser grid on a fresh replayer (clocks are
        # monotonic, so the original instance cannot be reused).
        gen = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=250, days=0.8), seed=31,
            region=region,
        )
        replay2 = TaxiReplayServer(gen.generate(), seed=31)
        sparse_fleet = Fleet(
            place_clients(region, radius_m=100.0, max_clients=6),
            ping_interval_s=10.0,
        )
        sparse_log = sparse_fleet.run(
            TaxiWorld(replay2), duration_s=2 * 3600.0,
            city="sparse", warmup_s=10 * 3600.0,
        )
        sparse = validate_against_taxis(sparse_log, replay2,
                                        boundary=region.boundary)
        assert sparse.car_capture < dense.car_capture
