"""Tests for the taxi substrate: trace model, generator, replayer."""

import pytest

from repro.geo.latlon import LatLon
from repro.geo.regions import midtown_manhattan
from repro.marketplace.types import CarType
from repro.taxi.generator import TaxiGeneratorParams, TaxiTraceGenerator
from repro.taxi.replay import (
    OFFLINE_GAP_S,
    TaxiReplayServer,
    build_segments,
)
from repro.taxi.trace import TripRecord, read_trace, write_trace

P1 = LatLon(40.750, -73.990)
P2 = LatLon(40.755, -73.985)
P3 = LatLon(40.760, -73.980)


def trip(medallion, pickup_s, dropoff_s, pickup=P1, dropoff=P2):
    return TripRecord(
        medallion=medallion,
        pickup_s=pickup_s,
        dropoff_s=dropoff_s,
        pickup=pickup,
        dropoff=dropoff,
    )


class TestTripRecord:
    def test_rejects_time_travel(self):
        with pytest.raises(ValueError):
            trip(1, 100.0, 50.0)

    def test_duration(self):
        assert trip(1, 100.0, 400.0).duration_s == 300.0

    def test_sorts_by_pickup_time(self):
        trips = [trip(1, 200.0, 300.0), trip(2, 100.0, 150.0)]
        assert sorted(trips)[0].medallion == 2

    def test_csv_roundtrip(self, tmp_path):
        trips = [trip(1, 0.0, 100.0), trip(2, 50.0, 400.0, P2, P3)]
        path = tmp_path / "trace.csv"
        assert write_trace(trips, path) == 2
        restored = read_trace(path)
        assert len(restored) == 2
        assert restored[0].medallion == 1
        assert restored[1].pickup.lat == pytest.approx(P2.lat)

    def test_read_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,trace\n")
        with pytest.raises(ValueError):
            read_trace(path)


class TestGenerator:
    @pytest.fixture(scope="class")
    def trace(self):
        gen = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=60, days=1.0), seed=3
        )
        return gen.generate()

    def test_sorted_by_pickup(self, trace):
        times = [t.pickup_s for t in trace]
        assert times == sorted(times)

    def test_stays_inside_region(self, trace):
        region = midtown_manhattan()
        for t in trace[:500]:
            assert region.boundary.contains(t.pickup)
            assert region.boundary.contains(t.dropoff)

    def test_trips_chain_spatially(self, trace):
        """The next pickup should be near the previous dropoff."""
        by_taxi = {}
        for t in trace:
            by_taxi.setdefault(t.medallion, []).append(t)
        gaps = []
        for trips in by_taxi.values():
            trips.sort()
            for a, b in zip(trips, trips[1:]):
                if b.pickup_s - a.dropoff_s < OFFLINE_GAP_S:
                    gaps.append(a.dropoff.fast_distance_m(b.pickup))
        assert gaps
        # Chained hails are drawn ~300 m from the last dropoff.
        assert sum(gaps) / len(gaps) < 900.0

    def test_deterministic(self):
        params = TaxiGeneratorParams(fleet_size=20, days=0.5)
        a = TaxiTraceGenerator(params, seed=5).generate()
        b = TaxiTraceGenerator(params, seed=5).generate()
        assert a == b

    def test_diurnal_variation(self, trace):
        """Deep-night hours must be quieter than rush hours."""
        def count_between(h0, h1):
            return sum(
                1 for t in trace if h0 * 3600 <= t.pickup_s < h1 * 3600
            )
        assert count_between(8, 10) > 2 * count_between(3, 5)


class TestSegments:
    def test_gap_becomes_segment(self):
        trips = [trip(1, 0.0, 100.0, P1, P2), trip(1, 400.0, 500.0, P3, P1)]
        segments = build_segments(trips)
        assert len(segments) == 1
        seg = segments[0]
        assert seg.start_s == 100.0
        assert seg.end_s == 400.0
        assert seg.end_reason == "booked"
        assert seg.start_loc == P2
        assert seg.end_loc == P3

    def test_long_gap_is_offline(self):
        trips = [
            trip(1, 0.0, 100.0),
            trip(1, 100.0 + OFFLINE_GAP_S + 1.0, 100.0 + OFFLINE_GAP_S + 50.0),
        ]
        segments = build_segments(trips)
        assert len(segments) == 1
        assert segments[0].end_reason == "offline"
        assert segments[0].end_s - segments[0].start_s == pytest.approx(60.0)

    def test_tokens_unique_per_segment(self):
        trips = [
            trip(1, 0.0, 100.0),
            trip(1, 200.0, 300.0),
            trip(1, 400.0, 500.0),
        ]
        segments = build_segments(trips)
        tokens = [s.token for s in segments]
        assert len(tokens) == len(set(tokens))

    def test_position_interpolates(self):
        trips = [trip(1, 0.0, 100.0, P1, P2), trip(1, 300.0, 400.0, P3, P1)]
        seg = build_segments(trips)[0]
        mid = seg.position_at(200.0)
        assert mid.lat == pytest.approx((P2.lat + P3.lat) / 2)
        with pytest.raises(ValueError):
            seg.position_at(50.0)


class TestReplayServer:
    @pytest.fixture(scope="class")
    def server(self):
        gen = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=80, days=0.6), seed=9
        )
        return TaxiReplayServer(gen.generate(), seed=9)

    def test_clock_is_monotonic(self, server):
        with pytest.raises(ValueError):
            server.advance(-1.0)

    def test_ping_midday(self, server):
        server.seek(12 * 3600.0)
        reply = server.ping("acct", P2)
        status = reply.status_for(CarType.UBERT)
        assert status is not None
        assert 0 < len(status.cars) <= 8
        assert status.surge_multiplier == 1.0
        assert status.ewt_minutes >= 1.0

    def test_cars_sorted_by_distance(self, server):
        server.advance(600.0)
        status = server.ping("acct", P2).status_for(CarType.UBERT)
        dists = [c.location.fast_distance_m(P2) for c in status.cars]
        assert dists == sorted(dists)

    def test_ground_truth_totals(self, server):
        gt = server.ground_truth(10 * 3600.0, 14 * 3600.0)
        assert len(gt) == 48
        assert sum(g.bookings for g in gt) > 0
        assert max(g.distinct_cabs for g in gt) > 5

    def test_ground_truth_validation(self, server):
        with pytest.raises(ValueError):
            server.ground_truth(100.0, 100.0)

    def test_seek_backwards_rejected(self, server):
        with pytest.raises(ValueError):
            server.seek(0.0)

    def test_spatial_index_flag_is_behaviour_free(self):
        """Index on vs off must serve identical replies at every step."""
        gen = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=60, days=0.3), seed=4
        )
        trips = gen.generate()
        indexed = TaxiReplayServer(trips, seed=4, use_spatial_index=True)
        brute = TaxiReplayServer(trips, seed=4, use_spatial_index=False)
        indexed.seek(8 * 3600.0)
        brute.seek(8 * 3600.0)
        queries = [P1, P2, P1.offset(400.0, -250.0)]
        for _ in range(40):
            indexed.advance(120.0)
            brute.advance(120.0)
            for q in queries:
                assert indexed.ping("a", q) == brute.ping("a", q)
