"""Tests for the one-shot audit report and gzip log persistence."""

import pytest

from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog
from repro.analysis.report import AuditReport, audit_campaign


class TestAuditCampaign:
    def test_full_report_from_live_campaign(self, toy_campaign):
        engine, log = toy_campaign
        report = audit_campaign(
            log, boundary=engine.config.region.boundary
        )
        assert report.city == "toyville"
        assert report.rounds == len(log.rounds)
        assert report.clients == len(log.client_positions)
        assert report.supply_series
        assert 0.0 <= report.surge_active_fraction <= 1.0
        assert report.mean_multiplier >= 1.0
        assert report.max_multiplier >= report.mean_multiplier

    def test_clock_discovered_from_busy_campaign(self, toy_campaign):
        engine, log = toy_campaign
        report = audit_campaign(
            log, boundary=engine.config.region.boundary
        )
        # The toy campaign surges plenty; the 5-minute clock must fall
        # out of the change-time folding.
        assert report.clock_period_s == 300.0
        assert 40.0 <= report.clock_phase_s <= 80.0

    def test_render_contains_sections(self, toy_campaign):
        engine, log = toy_campaign
        report = audit_campaign(
            log, boundary=engine.config.region.boundary
        )
        text = report.render()
        assert "audit report" in text
        assert "supply & demand" in text
        assert "surge:" in text
        assert "update clock" in text
        assert "EWT" in text

    def test_render_handles_quiet_log(self):
        log = CampaignLog("quiet", {}, 5.0)
        report = audit_campaign(log)
        text = report.render()
        assert "not discovered" in text
        assert "no events" in text


class TestGzipPersistence:
    def test_gz_roundtrip(self, toy_campaign, tmp_path):
        _, log = toy_campaign
        plain = tmp_path / "log.jsonl"
        packed = tmp_path / "log.jsonl.gz"
        log.save(plain)
        log.save(packed)
        assert packed.stat().st_size < plain.stat().st_size / 3
        restored = CampaignLog.load(packed)
        assert len(restored.rounds) == len(log.rounds)
        assert restored.rounds[5].samples == log.rounds[5].samples
