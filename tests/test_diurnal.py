"""Tests for diurnal aggregation."""

import math

import pytest

from repro.marketplace.clock import SECONDS_PER_DAY
from repro.analysis.diurnal import (
    DiurnalStats,
    diurnal_stats,
    interval_series_to_samples,
    rush_hour_lift,
)


def sinusoidal_samples(days=3, step_s=600.0, phase_hour=14.0):
    """A series peaking at phase_hour every day."""
    samples = []
    t = 0.0
    while t < days * SECONDS_PER_DAY:
        hour = (t % SECONDS_PER_DAY) / 3600.0
        value = 10.0 + 5.0 * math.cos(
            2 * math.pi * (hour - phase_hour) / 24.0
        )
        samples.append((t, value))
        t += step_s
    return samples


class TestDiurnalStats:
    def test_peak_and_trough(self):
        stats = diurnal_stats(sinusoidal_samples())
        assert stats.peak_hour() == 14
        assert stats.trough_hour() == 2

    def test_day_night_ratio(self):
        stats = diurnal_stats(sinusoidal_samples())
        assert stats.day_night_ratio() > 1.5

    def test_counts_cover_all_hours(self):
        stats = diurnal_stats(sinusoidal_samples())
        assert set(stats.hourly_mean) == set(range(24))
        assert all(c > 0 for c in stats.hourly_count.values())

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            diurnal_stats([])


class TestWeekendFilter:
    def make_weekly_samples(self):
        """Value 1 on weekdays, 100 on weekends (start Monday)."""
        samples = []
        for day in range(7):
            value = 100.0 if day >= 5 else 1.0
            for hour in range(24):
                samples.append(
                    (day * SECONDS_PER_DAY + hour * 3600.0, value)
                )
        return samples

    def test_weekday_only(self):
        stats = diurnal_stats(
            self.make_weekly_samples(), weekend_filter=False
        )
        assert all(v == 1.0 for v in stats.hourly_mean.values())

    def test_weekend_only(self):
        stats = diurnal_stats(
            self.make_weekly_samples(), weekend_filter=True
        )
        assert all(v == 100.0 for v in stats.hourly_mean.values())

    def test_start_weekday_shifts_split(self):
        # Starting on Saturday makes days 0-1 the weekend.
        stats = diurnal_stats(
            self.make_weekly_samples(), weekend_filter=True,
            start_weekday=5,
        )
        # Days 0,1 (value 1 in our fabric) plus day 6 (value 100)...
        # day 6 has weekday (5+6)%7=4 -> weekday. So only values 1.
        assert all(v == 1.0 for v in stats.hourly_mean.values())

    def test_no_matching_samples_raises(self):
        samples = [(0.0, 1.0)]  # Monday only
        with pytest.raises(ValueError):
            diurnal_stats(samples, weekend_filter=True)


class TestRushHourLift:
    def test_rush_peaking_series(self):
        samples = []
        for hour in range(24):
            value = 10.0 if hour in (7, 8, 17, 18) else 2.0
            samples.append((hour * 3600.0, value))
        stats = diurnal_stats(samples)
        assert rush_hour_lift(stats) > 1.5

    def test_flat_series_is_one(self):
        samples = [(h * 3600.0, 5.0) for h in range(24)]
        stats = diurnal_stats(samples)
        assert rush_hour_lift(stats) == pytest.approx(1.0)


class TestIntervalAdapter:
    def test_adapts_indices_to_times(self):
        samples = interval_series_to_samples({0: 1.0, 2: 3.0})
        assert samples == [(150.0, 1.0), (750.0, 3.0)]
