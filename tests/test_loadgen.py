"""The load-generator's client half: one-shot HTTP GETs and the
text-frame WebSocket session (``repro/service/loadgen.py``).

The module ships in the serve-bench but its request paths, error
branches, and timeout behaviour get dedicated tier-1 coverage here —
the cluster wire code reuses its framing patterns, so regressions in
this client would silently skew the service bench numbers.

WebSocket behaviour is tested over in-process ``socket.socketpair()``
streams against a scripted server speaking ``repro.service.http``
frames (no port binding, sandbox-proof); the HTTP and handshake paths
need a real listening socket and skip where binding is forbidden.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.service.http import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    encode_frame,
    read_frame,
)
from repro.service.loadgen import WebSocketClient, _parse_head, http_get


# ----------------------------------------------------------------------
# Response-head parsing
# ----------------------------------------------------------------------
def test_parse_head_status_and_lowercased_headers():
    status, headers = _parse_head(
        b"HTTP/1.1 429 Too Many Requests\r\n"
        b"Content-Type: application/json\r\n"
        b"Retry-After:  3600 \r\n"
        b"\r\n"
    )
    assert status == 429
    assert headers == {
        "content-type": "application/json",
        "retry-after": "3600",
    }


def test_parse_head_tolerates_blank_lines_and_no_headers():
    status, headers = _parse_head(b"HTTP/1.1 204 No Content\r\n\r\n")
    assert status == 204
    assert headers == {}


# ----------------------------------------------------------------------
# WebSocket session over scripted socketpair streams
# ----------------------------------------------------------------------
async def _ws_pair():
    """(client, server-side reader/writer) over a socketpair."""
    left, right = socket.socketpair()
    client_reader, client_writer = await asyncio.open_connection(sock=left)
    server_reader, server_writer = await asyncio.open_connection(sock=right)
    client = WebSocketClient(client_reader, client_writer)
    return client, server_reader, server_writer


def test_send_text_masks_client_frames():
    async def main():
        client, server_reader, server_writer = await _ws_pair()
        await client.send_text("hello")
        raw = await server_reader.readexactly(2)
        # FIN + text opcode, and the RFC 6455 client->server mask bit.
        assert raw[0] == 0x80 | OP_TEXT
        assert raw[1] & 0x80
        length = raw[1] & 0x7F
        mask = await server_reader.readexactly(4)
        body = await server_reader.readexactly(length)
        assert bytes(b ^ mask[i % 4] for i, b in enumerate(body)) == b"hello"
        # The deterministic rolling mask never repeats back-to-back.
        await client.send_text("again")
        frame = await read_frame(server_reader)
        assert frame == (OP_TEXT, b"again")
        server_writer.close()
        await client.close()

    asyncio.run(main())


def test_receive_text_returns_server_payload():
    async def main():
        client, _, server_writer = await _ws_pair()
        server_writer.write(encode_frame(OP_TEXT, "reply".encode("utf-8")))
        await server_writer.drain()
        assert await client.receive_text() == "reply"
        await client.close()
        server_writer.close()

    asyncio.run(main())


def test_receive_text_auto_pongs_pings_and_skips_pongs():
    async def main():
        client, server_reader, server_writer = await _ws_pair()
        server_writer.write(encode_frame(OP_PING, b"probe"))
        server_writer.write(encode_frame(OP_PONG, b"ignored"))
        server_writer.write(encode_frame(OP_TEXT, b"payload"))
        await server_writer.drain()
        # Control frames are transparent to the caller...
        assert await client.receive_text() == "payload"
        # ...and the ping was answered with an echoing pong.
        pong = await read_frame(server_reader)
        assert pong == (OP_PONG, b"probe")
        await client.close()
        server_writer.close()

    asyncio.run(main())


def test_receive_text_raises_on_server_close_frame():
    async def main():
        client, _, server_writer = await _ws_pair()
        server_writer.write(
            encode_frame(OP_CLOSE, (1001).to_bytes(2, "big"))
        )
        await server_writer.drain()
        with pytest.raises(ConnectionError, match="server sent close"):
            await client.receive_text()
        server_writer.close()

    asyncio.run(main())


def test_receive_text_raises_on_abrupt_stream_end():
    async def main():
        client, _, server_writer = await _ws_pair()
        server_writer.close()
        with pytest.raises(ConnectionError, match="closed the stream"):
            await client.receive_text()

    asyncio.run(main())


def test_close_sends_normal_closure_frame():
    async def main():
        client, server_reader, server_writer = await _ws_pair()
        await client.close()
        frame = await read_frame(server_reader)
        assert frame is not None
        opcode, payload = frame
        assert opcode == OP_CLOSE
        assert int.from_bytes(payload, "big") == 1000
        server_writer.close()

    asyncio.run(main())


def test_close_swallows_dead_transport():
    async def main():
        client, _, server_writer = await _ws_pair()
        server_writer.transport.abort()
        client._writer.transport.abort()
        await client.close()  # must not raise on a dead socket

    asyncio.run(main())


def test_rolling_mask_is_deterministic():
    async def main():
        client, _, server_writer = await _ws_pair()
        first = client._next_mask()
        second = client._next_mask()
        assert first == (0x9E3779B9).to_bytes(4, "big")
        assert second != first
        # A fresh client replays the same sequence — REP001-clean
        # determinism, no RNG involved.
        other, _, other_server = await _ws_pair()
        assert other._next_mask() == first
        server_writer.close()
        other_server.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# HTTP GET + handshake over real sockets (skipped if binding forbidden)
# ----------------------------------------------------------------------
def _sockets_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


needs_sockets = pytest.mark.skipif(
    not _sockets_available(),
    reason="socket binding unavailable in this sandbox",
)


async def _scripted_server(respond):
    """Start a localhost server running ``respond(reader, writer)``."""
    server = await asyncio.start_server(respond, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


@needs_sockets
class TestHttpGet:
    def test_get_parses_status_headers_and_body(self):
        async def respond(reader, writer):
            request = await reader.readuntil(b"\r\n\r\n")
            assert request.startswith(b"GET /v1/health HTTP/1.1\r\n")
            assert b"connection: close" in request
            assert b"x-probe: 1" in request
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 15\r\n\r\n"
                b'{"status":"ok"}'
            )
            await writer.drain()
            writer.close()

        async def main():
            server, port = await _scripted_server(respond)
            try:
                return await http_get(
                    "127.0.0.1", port, "/v1/health",
                    headers=[("x-probe", "1")],
                )
            finally:
                server.close()
                await server.wait_closed()

        response = asyncio.run(main())
        assert response.status == 200
        assert response.headers["content-type"] == "application/json"
        assert response.body == b'{"status":"ok"}'

    def test_get_without_content_length_returns_empty_body(self):
        async def respond(reader, writer):
            await reader.readuntil(b"\r\n\r\n")
            writer.write(b"HTTP/1.1 204 No Content\r\n\r\n")
            await writer.drain()
            writer.close()

        async def main():
            server, port = await _scripted_server(respond)
            try:
                return await http_get("127.0.0.1", port, "/nothing")
            finally:
                server.close()
                await server.wait_closed()

        response = asyncio.run(main())
        assert response.status == 204
        assert response.body == b""

    def test_get_times_out_against_a_stalled_server(self):
        async def respond(reader, writer):
            await reader.readuntil(b"\r\n\r\n")
            await asyncio.sleep(3600.0)  # never answers

        async def main():
            server, port = await _scripted_server(respond)
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        http_get("127.0.0.1", port, "/stalled"), 0.3
                    )
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(main())

    def test_get_surfaces_mid_body_disconnect(self):
        async def respond(reader, writer):
            await reader.readuntil(b"\r\n\r\n")
            writer.write(
                b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
            )
            await writer.drain()
            writer.close()

        async def main():
            server, port = await _scripted_server(respond)
            try:
                with pytest.raises(asyncio.IncompleteReadError):
                    await http_get("127.0.0.1", port, "/truncated")
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(main())


@needs_sockets
class TestWebSocketConnect:
    def test_handshake_accepted_then_roundtrip(self):
        async def respond(reader, writer):
            request = await reader.readuntil(b"\r\n\r\n")
            assert b"upgrade: websocket" in request
            assert b"sec-websocket-key:" in request
            writer.write(
                b"HTTP/1.1 101 Switching Protocols\r\n"
                b"Upgrade: websocket\r\nConnection: Upgrade\r\n\r\n"
            )
            await writer.drain()
            frame = await read_frame(reader)
            assert frame == (OP_TEXT, b"ping-me")
            writer.write(encode_frame(OP_TEXT, b"pong-you"))
            await writer.drain()

        async def main():
            server, port = await _scripted_server(respond)
            try:
                client = await WebSocketClient.connect(
                    "127.0.0.1", port, "/v1/ping"
                )
                await client.send_text("ping-me")
                reply = await client.receive_text()
                await client.close()
                return reply
            finally:
                server.close()
                await server.wait_closed()

        assert asyncio.run(main()) == "pong-you"

    def test_handshake_refusal_raises_with_status(self):
        async def respond(reader, writer):
            await reader.readuntil(b"\r\n\r\n")
            writer.write(
                b"HTTP/1.1 429 Too Many Requests\r\n"
                b"Content-Length: 0\r\n\r\n"
            )
            await writer.drain()
            writer.close()

        async def main():
            server, port = await _scripted_server(respond)
            try:
                with pytest.raises(
                    ConnectionError, match="handshake refused: HTTP 429"
                ):
                    await WebSocketClient.connect(
                        "127.0.0.1", port, "/v1/ping"
                    )
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(main())
