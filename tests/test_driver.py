"""Tests for the driver agent state machine."""

import random

import pytest

from repro.geo.latlon import LatLon
from repro.marketplace.driver import (
    PATH_VECTOR_LEN,
    Driver,
    DriverState,
    Trip,
)
from repro.marketplace.types import CarType

START = LatLon(40.75, -73.99)


def make_driver(**kwargs) -> Driver:
    defaults = dict(
        driver_id=1,
        car_type=CarType.UBERX,
        location=START,
        speed_mps=5.0,
    )
    defaults.update(kwargs)
    return Driver(**defaults)


def make_trip(pickup=None, dropoff=None) -> Trip:
    return Trip(
        pickup=pickup or START.offset(100.0, 0.0),
        dropoff=dropoff or START.offset(100.0, 800.0),
        requested_at=0.0,
        rider_id=9,
        surge_multiplier=1.0,
    )


class TestSessionLifecycle:
    def test_come_online_sets_token_and_state(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(now=0.0, session_seconds=3600.0, rng=rng)
        assert d.state is DriverState.IDLE
        assert d.session_token
        assert d.is_online and d.is_dispatchable
        assert d.planned_offline_at == 3600.0

    def test_tokens_differ_across_sessions(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 100.0, rng)
        first = d.session_token
        d.go_offline()
        d.come_online(200.0, 100.0, rng)
        assert d.session_token != first

    def test_come_back_idle_refreshes_token(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 3600.0, rng)
        first = d.session_token
        d.come_back_idle(10.0, rng)
        assert d.session_token != first
        assert len(d.path) == 1

    def test_double_online_raises(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 100.0, rng)
        with pytest.raises(RuntimeError):
            d.come_online(5.0, 100.0, rng)

    def test_offline_when_offline_raises(self):
        with pytest.raises(RuntimeError):
            make_driver().go_offline()

    def test_come_back_idle_requires_idle(self):
        rng = random.Random(0)
        d = make_driver()
        with pytest.raises(RuntimeError):
            d.come_back_idle(0.0, rng)

    def test_wants_to_leave(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 100.0, rng)
        assert not d.wants_to_leave(50.0)
        assert d.wants_to_leave(100.0)


class TestTripExecution:
    def test_assign_requires_idle(self):
        d = make_driver()
        with pytest.raises(RuntimeError):
            d.assign(make_trip())

    def test_full_trip_cycle(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 7200.0, rng)
        trip = make_trip()
        d.assign(trip)
        assert d.state is DriverState.EN_ROUTE
        assert not d.is_dispatchable
        completed = None
        t = 0.0
        for _ in range(10_000):
            t += 5.0
            completed = d.step(t, 5.0, rng)
            if completed is not None:
                break
        assert completed is trip
        assert d.state is DriverState.IDLE
        assert d.trips_completed == 1
        assert d.location == trip.dropoff

    def test_en_route_reaches_pickup_before_trip(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 7200.0, rng)
        pickup = START.offset(50.0, 0.0)
        d.assign(make_trip(pickup=pickup))
        d.step(5.0, 5.0, rng)  # 25 m of 50 m
        assert d.state is DriverState.EN_ROUTE
        # Floating point may need one extra tick to close the last metre.
        for i in range(3):
            d.step(10.0 + 5.0 * i, 5.0, rng)
            if d.state is DriverState.ON_TRIP:
                break
        assert d.state is DriverState.ON_TRIP
        assert d.location.fast_distance_m(pickup) < 1.5

    def test_offline_driver_does_not_move(self):
        rng = random.Random(0)
        d = make_driver()
        assert d.step(5.0, 5.0, rng) is None
        assert d.location == START


class TestPathVector:
    def test_path_has_bounded_length(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 7200.0, rng)
        for i in range(20):
            d.step(5.0 * (i + 1), 5.0, rng)
        assert len(d.path_vector()) == PATH_VECTOR_LEN

    def test_path_cleared_on_offline(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 7200.0, rng)
        d.step(5.0, 5.0, rng)
        d.go_offline()
        assert len(d.path) == 0

    def test_path_times_are_monotone(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 7200.0, rng)
        for i in range(10):
            d.step(5.0 * (i + 1), 5.0, rng)
        times = [t for t, _ in d.path_vector()]
        assert times == sorted(times)


class TestIdleCruising:
    def test_cruise_toward_target(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 7200.0, rng)
        target = START.offset(200.0, 0.0)
        d.cruise_target = target
        for i in range(100):
            d.step(5.0 * (i + 1), 5.0, rng)
            if d.cruise_target is None:
                break
        assert d.location.fast_distance_m(target) < 10.0

    def test_idle_wobble_is_small(self):
        rng = random.Random(0)
        d = make_driver()
        d.come_online(0.0, 7200.0, rng)
        d.step(5.0, 5.0, rng)
        assert d.location.fast_distance_m(START) < 50.0
