"""Tests for car types, fare schedules, and the simulation clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marketplace.clock import (
    SECONDS_PER_DAY,
    SimClock,
    hour_to_seconds,
)
from repro.marketplace.types import FARE_TABLE, CarType, FareSchedule


class TestCarType:
    def test_low_cost_grouping(self):
        assert CarType.UBERX.is_low_cost
        assert CarType.UBERPOOL.is_low_cost
        assert not CarType.UBERBLACK.is_low_cost
        assert not CarType.UBERSUV.is_low_cost

    def test_ubert_never_surges(self):
        assert not CarType.UBERT.surge_eligible
        assert CarType.UBERX.surge_eligible

    def test_every_type_has_a_fare_schedule(self):
        for car_type in CarType:
            assert car_type in FARE_TABLE


class TestFareSchedule:
    SCHEDULE = FareSchedule(
        base_fare_usd=2.0,
        per_mile_usd=1.5,
        per_minute_usd=0.3,
        minimum_fare_usd=5.0,
        booking_fee_usd=1.0,
    )

    def test_basic_fare(self):
        # 2 + 1.5*4 + 0.3*10 = 11, + booking fee 1 = 12.
        assert self.SCHEDULE.fare(miles=4.0, minutes=10.0) == pytest.approx(
            12.0
        )

    def test_minimum_fare_applies(self):
        # Metered 2 + 0.15 + 0.15 = 2.3 -> floored at 5, + fee.
        assert self.SCHEDULE.fare(miles=0.1, minutes=0.5) == pytest.approx(
            6.0
        )

    def test_surge_multiplies_metered_portion_only(self):
        base = self.SCHEDULE.fare(miles=4.0, minutes=10.0)
        surged = self.SCHEDULE.fare(
            miles=4.0, minutes=10.0, surge_multiplier=2.0
        )
        # (base - fee) * 2 + fee
        assert surged == pytest.approx((base - 1.0) * 2.0 + 1.0)

    def test_driver_gets_80_percent(self):
        payout = self.SCHEDULE.driver_payout(miles=4.0, minutes=10.0)
        assert payout == pytest.approx(11.0 * 0.8)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            self.SCHEDULE.fare(miles=-1.0, minutes=5.0)
        with pytest.raises(ValueError):
            self.SCHEDULE.fare(miles=1.0, minutes=5.0, surge_multiplier=0.0)

    def test_discount_multiplier_allowed(self):
        """Driver-set pricing (Sidecar mode) can discount below base."""
        base = self.SCHEDULE.fare(miles=4.0, minutes=10.0)
        discounted = self.SCHEDULE.fare(
            miles=4.0, minutes=10.0, surge_multiplier=0.9
        )
        assert discounted < base

    @given(
        miles=st.floats(min_value=0.0, max_value=50.0),
        minutes=st.floats(min_value=0.0, max_value=120.0),
        m=st.floats(min_value=1.0, max_value=5.0),
    )
    @settings(max_examples=60)
    def test_fare_monotone_in_surge(self, miles, minutes, m):
        base = self.SCHEDULE.fare(miles, minutes, 1.0)
        surged = self.SCHEDULE.fare(miles, minutes, m)
        assert surged >= base
        assert surged == pytest.approx(
            (base - self.SCHEDULE.booking_fee_usd) * m
            + self.SCHEDULE.booking_fee_usd
        )


class TestSimClock:
    def test_tick_advances(self):
        clock = SimClock(tick_seconds=5.0)
        assert clock.tick() == 5.0
        assert clock.now == 5.0

    def test_day_and_weekday(self):
        clock = SimClock(start_weekday=4)  # Friday
        assert clock.weekday == 4
        clock.now = SECONDS_PER_DAY * 1.5
        assert clock.day_index == 1
        assert clock.weekday == 5  # Saturday
        assert clock.is_weekend

    def test_weekday_wraps(self):
        clock = SimClock(start_weekday=6)
        clock.now = SECONDS_PER_DAY * 1.0
        assert clock.weekday == 0

    def test_hour_of_day(self):
        clock = SimClock()
        clock.now = hour_to_seconds(13.5)
        assert clock.hour_of_day == pytest.approx(13.5)
        clock.now += SECONDS_PER_DAY
        assert clock.hour_of_day == pytest.approx(13.5)

    @pytest.mark.parametrize(
        "hour,expected",
        [(5.9, False), (6.0, True), (9.9, True), (10.0, False),
         (15.9, False), (16.0, True), (19.9, True), (20.0, False)],
    )
    def test_rush_hour_windows(self, hour, expected):
        clock = SimClock()
        clock.now = hour_to_seconds(hour)
        assert clock.is_rush_hour is expected

    def test_interval_index(self):
        clock = SimClock()
        clock.now = 299.0
        assert clock.interval_index() == 0
        clock.now = 300.0
        assert clock.interval_index() == 1
        assert clock.seconds_into_interval() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimClock(start_weekday=7)
        with pytest.raises(ValueError):
            SimClock(tick_seconds=0.0)

    def test_copy_is_independent(self):
        clock = SimClock()
        other = clock.copy()
        clock.tick()
        assert other.now == 0.0
