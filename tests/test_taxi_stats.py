"""Tests for the trace-statistics module."""

import pytest

from repro.geo.latlon import LatLon
from repro.taxi.generator import TaxiGeneratorParams, TaxiTraceGenerator
from repro.taxi.stats import (
    compare_traces,
    idle_gaps,
    summarize_trace,
    trips_by_hour,
)
from repro.taxi.trace import TripRecord

P1 = LatLon(40.750, -73.990)
P2 = LatLon(40.755, -73.985)


def trip(medallion, pickup_s, dropoff_s):
    return TripRecord(
        medallion=medallion, pickup_s=pickup_s, dropoff_s=dropoff_s,
        pickup=P1, dropoff=P2,
    )


class TestTripsByHour:
    def test_buckets_by_pickup_hour(self):
        trips = [
            trip(1, 8 * 3600.0, 8 * 3600.0 + 600),
            trip(1, 8 * 3600.0 + 1200, 8 * 3600.0 + 1800),
            trip(2, 14 * 3600.0, 14 * 3600.0 + 600),
        ]
        hourly = trips_by_hour(trips)
        assert hourly[8] == 2
        assert hourly[14] == 1
        assert hourly[3] == 0

    def test_wraps_days(self):
        trips = [trip(1, 86_400.0 + 3600.0, 86_400.0 + 4000.0)]
        assert trips_by_hour(trips)[1] == 1


class TestIdleGaps:
    def test_within_shift_gaps(self):
        trips = [
            trip(1, 0.0, 600.0),
            trip(1, 900.0, 1500.0),       # 300 s gap
            trip(1, 10_500.0, 11_100.0),  # 9,000 s gap (within 3 h)
        ]
        gaps = idle_gaps(trips)
        assert sorted(gaps) == [300.0, 9_000.0]

    def test_offline_gaps_excluded(self):
        trips = [
            trip(1, 0.0, 600.0),
            trip(1, 600.0 + 4 * 3600.0, 600.0 + 4 * 3600.0 + 300.0),
        ]
        assert idle_gaps(trips) == []

    def test_independent_medallions(self):
        trips = [trip(1, 0.0, 600.0), trip(2, 700.0, 1300.0)]
        assert idle_gaps(trips) == []


class TestSummarize:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_trace([])

    def test_synthetic_trace_summary(self):
        gen = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=50, days=1.0), seed=5
        )
        summary = summarize_trace(gen.generate())
        assert summary.medallions == 50
        assert summary.trips > 100
        assert summary.trips_per_medallion_per_day > 2
        assert 60.0 < summary.median_trip_duration_s < 3600.0
        assert summary.median_trip_distance_m > 100.0
        # Diurnal structure: the busiest hour is a daytime hour.
        assert 6 <= summary.busiest_hour <= 23
        assert "trips by" in summary.describe()

    def test_compare_traces(self):
        gen_a = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=40, days=0.5), seed=1
        )
        gen_b = TaxiTraceGenerator(
            TaxiGeneratorParams(fleet_size=40, days=0.5), seed=2
        )
        a = summarize_trace(gen_a.generate())
        b = summarize_trace(gen_b.generate())
        rows = compare_traces(a, b)
        assert len(rows) == 4
        for _, _, _, ratio in rows:
            # Same generator parameters -> same structure.
            assert 0.5 < ratio < 2.0
