"""Fig 2: visibility radius of clients through the day, both cities.

The paper measured the distance to the furthest of the 8 returned cars
via the 4-client walk-outward experiment, repeated through the day:
Manhattan averaged 247 m, SF 387 m, with a clear night/day swing in SF.
We run the same experiment against the simulated marketplaces every two
simulated hours.
"""

import statistics

import pytest

from _shared import city_config, write_table
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.calibrate import visibility_radius_profile
from repro.measurement.fleet import MarketplaceWorld


def profile_for(city: str):
    config = city_config(city, jitter_probability=0.0)
    engine = MarketplaceEngine(config, seed=2)
    world = MarketplaceWorld(engine)
    center = config.region.bounding_box.center
    return visibility_radius_profile(
        world, center, sample_every_s=2 * 3600.0, duration_s=86_400.0
    )


@pytest.fixture(scope="module")
def profiles():
    return {city: profile_for(city) for city in ("manhattan", "sf")}


def test_fig02_visibility_radius(profiles, benchmark):
    benchmark.pedantic(
        lambda: profile_for("manhattan"), rounds=1, iterations=1
    )
    lines = ["hour   manhattan_r_m   sf_r_m"]
    means = {}
    for city in ("manhattan", "sf"):
        values = [r for _, r in profiles[city] if r is not None]
        means[city] = statistics.mean(values) if values else float("nan")
    for (t_m, r_m), (_, r_s) in zip(profiles["manhattan"], profiles["sf"]):
        hour = (t_m % 86_400.0) / 3600.0
        fmt = lambda r: "   n/a" if r is None else f"{r:6.0f}"
        lines.append(f"{hour:4.0f}   {fmt(r_m)}          {fmt(r_s)}")
    lines.append(
        f"mean   {means['manhattan']:6.0f}          {means['sf']:6.0f}"
    )
    lines.append("paper:    247             387")
    write_table("fig02_visibility_radius", lines)

    # Shape: radii are a few hundred metres, and SF (larger region,
    # similar car density) sees at least Manhattan-scale radii.
    assert 50.0 < means["manhattan"] < 1500.0
    assert 50.0 < means["sf"] < 2500.0
    assert means["sf"] > 0.6 * means["manhattan"]
