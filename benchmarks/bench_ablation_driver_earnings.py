"""Ablation: what each pricing policy does to driver earnings.

The paper's driver-side critique: surge is unpredictable, hurting
"drivers' ability to predict fares" (§1), and its supply incentive is
weak (§5.5).  We run the same SF market under measured surge, the
paper's smoothing proposal, and Sidecar-style driver-set pricing, then
compare driver earnings level, inequality (Gini), surge share, and
hour-to-hour variability.
"""

import dataclasses

import pytest

from _shared import city_config, write_table
from repro.marketplace.driver_set import DriverSetPricingEngine
from repro.marketplace.engine import MarketplaceEngine
from repro.analysis.earnings import (
    hourly_variability,
    summarize_earnings,
)


def run_market(variant: str, hours: float = 10.0, seed: int = 77):
    config = city_config("sf", jitter_probability=0.0)
    if variant == "smoothed":
        config = dataclasses.replace(
            config,
            surge=dataclasses.replace(config.surge, smoothing_alpha=0.3),
        )
    engine_cls = (
        DriverSetPricingEngine if variant == "driver-set"
        else MarketplaceEngine
    )
    engine = engine_cls(config, seed=seed)
    engine.run(7 * 3600.0)
    start = engine.clock.now
    engine.run(hours * 3600.0)
    summary = summarize_earnings(engine, window_hours=hours)
    variability = hourly_variability(
        [t for t in engine.completed_trips if t.completed_at >= start]
    )
    return summary, variability


@pytest.fixture(scope="module")
def variants():
    return {
        name: run_market(name)
        for name in ("surge", "smoothed", "driver-set")
    }


def test_ablation_driver_earnings(variants, benchmark):
    benchmark.pedantic(lambda: run_market("surge", hours=1.0),
                       rounds=1, iterations=1)
    lines = ["policy      drivers  mean_$/h  median_$/h  gini  "
             "surge_share  hourly_cv"]
    for name, (summary, variability) in variants.items():
        lines.append(
            f"{name:10s}  {summary.drivers:7d}  "
            f"{summary.mean_hourly_usd:8.2f}  "
            f"{summary.median_hourly_usd:10.2f}  {summary.gini:4.2f}  "
            f"{summary.surge_share:11.2f}  {variability:9.2f}"
        )
    write_table("ablation_driver_earnings", lines)

    surge_summary, _ = variants["surge"]
    smoothed_summary, _ = variants["smoothed"]
    sidecar_summary, _ = variants["driver-set"]
    # All three policies sustain a living for drivers in the same market.
    for summary in (surge_summary, smoothed_summary, sidecar_summary):
        assert summary.mean_hourly_usd > 1.0
        assert 0.0 <= summary.gini < 0.9
    # Surge pricing extracts a visible premium; the premium shrinks or
    # holds under smoothing (prices move less far from 1).
    assert surge_summary.surge_share > 0.0
    assert smoothed_summary.surge_share <= surge_summary.surge_share + 0.05
