"""§4.2 (text): car-type mix in both cities.

"Both cities exhibit the same rank ordering of Uber types.  UberXs are
most prevalent, followed by UberBLACK, UberSUV, and UberXL ... there are
only 4 cars of these [rare] types on the road on average.  Manhattan
does have a significant number of UberT's" — and an order of magnitude
more taxis than Ubers.
"""

import statistics

import pytest

from _shared import city_config, write_table
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


def type_counts(city: str, seed: int = 3):
    engine = MarketplaceEngine(city_config(city), seed=seed)
    engine.run(4 * 3600.0)   # settle
    engine.truth.clear()
    engine.run(12 * 3600.0)  # one daytime stretch
    means = {}
    for car_type in engine.config.fleet:
        values = [
            t.online_by_type.get(car_type, 0) for t in engine.truth
        ]
        means[car_type] = statistics.mean(values)
    return means


@pytest.fixture(scope="module")
def counts():
    return {city: type_counts(city) for city in ("manhattan", "sf")}


def test_types_ranking(counts, benchmark):
    benchmark.pedantic(lambda: type_counts("manhattan"), rounds=1,
                       iterations=1)
    lines = ["type         manhattan     sf"]
    for car_type in CarType:
        m = counts["manhattan"].get(car_type)
        s = counts["sf"].get(car_type)
        lines.append(
            f"{car_type.value:12s} "
            f"{'-' if m is None else format(m, '8.1f'):>9s} "
            f"{'-' if s is None else format(s, '8.1f'):>9s}"
        )
    write_table("types_ranking", lines)

    for city in ("manhattan", "sf"):
        c = counts[city]
        # The paper's rank ordering: X >> BLACK > SUV > XL.
        assert c[CarType.UBERX] > c[CarType.UBERBLACK]
        assert c[CarType.UBERBLACK] > c[CarType.UBERSUV]
        assert c[CarType.UBERSUV] > c[CarType.UBERXL]
        # Rare types: a handful of cars on the road.
        assert c[CarType.UBERFAMILY] < 10
    # Manhattan has more luxury cars and a significant UberT pool.
    m, s = counts["manhattan"], counts["sf"]
    assert m[CarType.UBERBLACK] > s[CarType.UBERBLACK]
    assert m[CarType.UBERT] > 20
    assert CarType.UBERT not in s
