"""Shared campaign infrastructure for the benchmark suite.

The paper's figures mostly derive from two long measurement campaigns
(midtown Manhattan and downtown SF).  Re-simulating them for every bench
would dominate runtime, so campaigns are generated once per parameter set
and cached as JSON-lines under ``benchmarks/.cache/`` — delete that
directory to force regeneration.

Every bench consumes the *observation log* only (plus, where the paper
used the REST API, a live engine); none touch simulator internals, so a
cached log is as good as a fresh one.

On a cold cache, :func:`prefetch_campaigns` fills several parameter
sets at once through the process-pool orchestrator
(:func:`repro.parallel.run_sweep`) — campaigns are seed-deterministic,
so the worker-written cache files are byte-identical to the ones the
in-process path writes.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.marketplace.config import CityConfig
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.config import manhattan_config, sf_config
from repro.marketplace.types import CarType
from repro.measurement.fleet import Fleet, MarketplaceWorld
from repro.measurement.placement import place_clients
from repro.measurement.records import CampaignLog

CACHE_DIR = Path(__file__).parent / ".cache"
OUT_DIR = Path(__file__).parent / "out"

#: Campaign length for the main per-city logs.  The paper measured two
#: weeks per city; 1.5 simulated days (a weekday + part of a weekend for
#: Manhattan's Friday start) preserve every diurnal contrast the figures
#: need at ~1/10 the runtime.
MAIN_CAMPAIGN_DAYS = 1.5
MAIN_PING_INTERVAL_S = 30.0
JITTER_CAMPAIGN_HOURS = 4.0

_memory_cache: Dict[str, CampaignLog] = {}


def city_config(city: str, jitter_probability: float = 0.25) -> CityConfig:
    if city == "manhattan":
        return manhattan_config(jitter_probability=jitter_probability)
    if city == "sf":
        return sf_config(jitter_probability=jitter_probability)
    raise ValueError(f"unknown city {city!r}")


def campaign_key(
    city: str,
    days: float = MAIN_CAMPAIGN_DAYS,
    ping_interval_s: float = MAIN_PING_INTERVAL_S,
    warmup_s: float = 4 * 3600.0,
    jitter_probability: float = 0.25,
    seed: int = 2015,
) -> str:
    """The cache key one parameter set resolves to (also the filename)."""
    return (
        f"{city}_v6_d{days:g}_p{ping_interval_s:g}_w{warmup_s:g}"
        f"_j{jitter_probability:g}_s{seed}"
    )


def campaign_cache_path(key: str) -> Path:
    return CACHE_DIR / f"{key}.jsonl"


def prefetch_campaigns(
    param_sets: List[Dict[str, object]],
    jobs: Optional[int] = None,
) -> int:
    """Generate missing cached campaigns in parallel; returns the count.

    Each parameter dict takes the same keywords as :func:`campaign`.
    Runs the misses through :func:`repro.parallel.run_sweep` — worker
    processes write the same JSON-lines cache files the sequential path
    would (campaigns are seed-deterministic, so the bytes match), and a
    later :func:`campaign` call is a pure cache hit.  A failed campaign
    raises: benches must not silently run on a partial cache.
    """
    from repro.parallel.orchestrator import CampaignSpec, run_sweep

    specs: List[CampaignSpec] = []
    for params in param_sets:
        key = campaign_key(**params)  # type: ignore[arg-type]
        path = campaign_cache_path(key)
        if key in _memory_cache or path.exists():
            continue
        days = float(params.get("days", MAIN_CAMPAIGN_DAYS))
        warmup_s = float(params.get("warmup_s", 4 * 3600.0))
        specs.append(
            CampaignSpec(
                key=key,
                city=str(params["city"]),
                seed=int(params.get("seed", 2015)),
                hours=days * 24.0,
                warmup_hours=warmup_s / 3600.0,
                ping_interval_s=float(
                    params.get("ping_interval_s", MAIN_PING_INTERVAL_S)
                ),
                jitter=float(params.get("jitter_probability", 0.25)),
                out=str(path),
            )
        )
    if not specs:
        return 0
    CACHE_DIR.mkdir(exist_ok=True)
    print(f"[bench] generating {len(specs)} campaign(s) via sweep...",
          file=sys.stderr)
    outcomes = run_sweep(specs, jobs=jobs)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        details = "; ".join(f"{o.key}: {o.error}" for o in failed)
        raise RuntimeError(f"campaign prefetch failed — {details}")
    return len(specs)


def campaign(
    city: str,
    days: float = MAIN_CAMPAIGN_DAYS,
    ping_interval_s: float = MAIN_PING_INTERVAL_S,
    warmup_s: float = 4 * 3600.0,
    jitter_probability: float = 0.25,
    seed: int = 2015,
) -> CampaignLog:
    """The cached measurement campaign for one city."""
    key = campaign_key(
        city, days, ping_interval_s, warmup_s, jitter_probability, seed
    )
    if key in _memory_cache:
        return _memory_cache[key]
    CACHE_DIR.mkdir(exist_ok=True)
    cache_file = campaign_cache_path(key)
    if cache_file.exists():
        log = CampaignLog.load(cache_file)
        _memory_cache[key] = log
        return log
    print(f"[bench] generating campaign {key} "
          f"(cached for later runs)...", file=sys.stderr)
    config = city_config(city, jitter_probability)
    engine = MarketplaceEngine(config, seed=seed)
    fleet = Fleet(
        place_clients(config.region),
        car_types=[CarType.UBERX],
        ping_interval_s=ping_interval_s,
    )
    log = fleet.run(
        MarketplaceWorld(engine),
        duration_s=days * 86_400.0,
        city=city,
        warmup_s=warmup_s,
    )
    log.save(cache_file)
    _memory_cache[key] = log
    return log


def jitter_campaign(city: str = "manhattan",
                    jitter_probability: float = 0.25) -> CampaignLog:
    """A short full-rate (5 s ping) campaign for jitter analyses.

    Starts at Friday 4pm so surge activity is plentiful — jitter is only
    observable when multipliers change.
    """
    return campaign(
        city,
        days=JITTER_CAMPAIGN_HOURS / 24.0,
        ping_interval_s=5.0,
        warmup_s=16 * 3600.0,
        jitter_probability=jitter_probability,
        seed=404,
    )


def write_table(name: str, lines: List[str]) -> Path:
    """Persist a bench's paper-style output table and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    text = "\n".join(lines)
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
    return path


def all_multiplier_samples(
    log: CampaignLog, car_type: CarType = CarType.UBERX
) -> List[float]:
    """Every multiplier sample across clients (time-and-space weighted)."""
    samples: List[float] = []
    for record in log.rounds:
        for (_, ct), sample in record.samples.items():
            if ct is car_type:
                samples.append(sample.multiplier)
    return samples


def per_area_clock_series(
    log: CampaignLog,
    region,
    car_type: CarType = CarType.UBERX,
) -> Dict[int, Dict[int, float]]:
    """Measured per-area interval multipliers.

    Maps each client to its ground-truth-geometry surge area (the
    geometry is public knowledge once Fig 18/19-style discovery has run)
    and takes the modal per-interval multiplier of one client per area.
    """
    from repro.analysis.surge_stats import interval_multipliers

    chosen: Dict[int, str] = {}
    for cid, pos in log.client_positions.items():
        area = region.area_of(pos)
        if area is None:
            continue
        # Prefer the client closest to the area centroid (most interior).
        centroid = area.polygon.centroid()
        current = chosen.get(area.area_id)
        if current is None or pos.fast_distance_m(centroid) < (
            log.client_positions[current].fast_distance_m(centroid)
        ):
            chosen[area.area_id] = cid
    return {
        area_id: interval_multipliers(
            log.multiplier_series(cid, car_type)
        )
        for area_id, cid in chosen.items()
    }
