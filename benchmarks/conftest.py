"""Benchmark-suite fixtures.

The heavyweight campaigns are built (or loaded from ``.cache/``) once per
session.  Benches use ``benchmark.pedantic`` on the *analysis* stage —
the quantity the paper's pipeline would re-run over its archived logs —
so timings are meaningful and the simulation cost is paid once.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _shared import campaign, jitter_campaign  # noqa: E402


@pytest.fixture(scope="session")
def mhtn_campaign():
    return campaign("manhattan")


@pytest.fixture(scope="session")
def sf_campaign():
    return campaign("sf")


@pytest.fixture(scope="session")
def mhtn_jitter_campaign():
    return jitter_campaign("manhattan", jitter_probability=0.12)


@pytest.fixture(scope="session")
def mhtn_clean_campaign():
    """The 'February 2015' datastream: same city, bug not yet deployed."""
    return jitter_campaign("manhattan", jitter_probability=0.0)
