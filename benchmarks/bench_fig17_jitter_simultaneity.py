"""Fig 17: how many clients observe jitter at the same moment.

Jitter strikes per client: ~90 % of events are observed by a single
client and none by more than five simultaneously — the signature that
told the paper's authors this was a per-customer consistency bug, not a
price change.
"""

from _shared import write_table
from repro.marketplace.types import CarType
from repro.analysis.jitter import (
    detect_jitter_events,
    simultaneity_histogram,
)


def events_by_client(log):
    result = {}
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        events = detect_jitter_events(series, client_id=cid)
        if events:
            result[cid] = events
    return result


def test_fig17_jitter_simultaneity(mhtn_jitter_campaign, benchmark):
    by_client = benchmark(events_by_client, mhtn_jitter_campaign)
    histogram = simultaneity_histogram(by_client)
    total = sum(histogram.values())
    assert total >= 5, "too few jitter events observed"

    lines = ["simultaneous_clients   events   fraction"]
    for n in sorted(histogram):
        lines.append(
            f"{n:20d}   {histogram[n]:6d}   {histogram[n] / total:8.2f}"
        )
    solo = histogram.get(1, 0) / total
    lines.append(f"single-client fraction: {solo:.2f} (paper: ~0.9)")
    lines.append(f"max simultaneous: {max(histogram)} (paper: 5)")
    write_table("fig17_jitter_simultaneity", lines)

    assert solo > 0.5
    assert max(histogram) <= 8
