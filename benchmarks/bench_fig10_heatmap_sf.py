"""Fig 10: SF heatmaps — cars seen and EWT per client cell.

UberX density peaks around the Financial District / Embarcadero corner
of the region, with a secondary cluster at UCSF (Fig 10a).
"""

from _shared import city_config, write_table
from repro.analysis.heatmap import client_heatmap, render_grid


def test_fig10_heatmap_sf(sf_campaign, benchmark):
    cells = benchmark(client_heatmap, sf_campaign)
    lines = ["avg unique UberX ids per day, per client cell "
             "(north at top):", render_grid(cells, value="cars"),
             "", "avg EWT minutes:", render_grid(cells, value="ewt")]
    write_table("fig10_heatmap_sf", lines)

    region = city_config("sf").region
    fidi = region.hotspots[0].location  # Financial District
    by_dist = sorted(
        cells, key=lambda c: c.location.fast_distance_m(fidi)
    )
    near = [c.unique_cars_per_day for c in by_dist[:5]]
    far = [c.unique_cars_per_day for c in by_dist[-5:]]
    assert sum(near) / 5 > sum(far) / 5
    assert all(c.unique_cars_per_day > 0 for c in cells)
