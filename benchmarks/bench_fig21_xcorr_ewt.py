"""Fig 21: cross-correlation of EWT vs surge.

Positive correlation peaking at Δt ≈ 0: waits lengthen exactly when
surge rises — strained supply shows up in both signals together.
"""

import math

import pytest

from _shared import city_config, per_area_clock_series, write_table
from repro.marketplace.types import CarType
from repro.analysis.correlate import cross_correlation, strongest_shift
from repro.analysis.timeseries import interval_means


def per_area_ewt(log, region):
    """Mean EWT per interval per area, averaged over the area's clients.

    Averaging across every client inside the area (rather than one probe
    point) smooths dispatch-distance noise, matching the paper's "we
    construct corresponding time series by averaging each quantity over
    the 5-minute window".
    """
    samples_by_area = {}
    for cid, pos in log.client_positions.items():
        area = region.area_of(pos)
        if area is None:
            continue
        for t, e in log.ewt_series(cid, CarType.UBERX):
            if e is not None:
                samples_by_area.setdefault(area.area_id, []).append((t, e))
    return {
        area_id: interval_means(samples)
        for area_id, samples in samples_by_area.items()
    }


@pytest.mark.parametrize("city", ["manhattan", "sf"])
def test_fig21_xcorr_ewt(city, mhtn_campaign, sf_campaign, benchmark):
    log = mhtn_campaign if city == "manhattan" else sf_campaign
    region = city_config(city).region
    ewt_by_area = benchmark.pedantic(
        per_area_ewt, args=(log, region), rounds=1, iterations=1
    )
    area_clock = per_area_clock_series(log, region)

    lines = [f"{city}: area   r(-5m)   r(0)   r(+5m)  best"]
    peaks = []
    for area_id in sorted(area_clock):
        surge = area_clock[area_id]
        ewt = ewt_by_area.get(area_id, {})
        if len(surge) < 24 or not ewt:
            lines.append(f"area {area_id}: insufficient data")
            continue
        points = cross_correlation(surge, ewt, max_shift_intervals=12)
        by_shift = {p.shift_minutes: p for p in points}
        valid = [p for p in points if not math.isnan(p.coefficient)]
        if not valid:
            continue
        best = strongest_shift(points)
        lines.append(
            f"area {area_id:4d}   "
            + "  ".join(
                f"{by_shift[m].coefficient:+5.2f}"
                for m in (-5.0, 0.0, 5.0)
            )
            + f"   {best.coefficient:+.2f}@{best.shift_minutes:+.0f}m"
        )
        peaks.append(best)
    # Also evaluate the city-aggregate pairing (the right unit when the
    # areas are lock-stepped, as in SF).
    all_samples = []
    for cid in log.client_positions:
        all_samples.extend(
            (t, e)
            for t, e in log.ewt_series(cid, CarType.UBERX)
            if e is not None
        )
    city_ewt = interval_means(all_samples)
    any_area_clock = area_clock[sorted(area_clock)[0]]
    city_points = cross_correlation(
        any_area_clock, city_ewt, max_shift_intervals=12
    )
    city_near_zero = [
        p for p in city_points
        if abs(p.shift_minutes) <= 10.0
        and not math.isnan(p.coefficient)
    ]
    best_city = max(city_near_zero, key=lambda p: p.coefficient)
    lines.append(
        f"city aggregate: r={best_city.coefficient:+.2f} at "
        f"Δt={best_city.shift_minutes:+.0f} min"
    )
    lines.append("paper: positive correlation, strongest at zero shift")
    write_table(f"fig21_xcorr_ewt_{city}", lines)

    assert peaks
    # Manhattan reproduces the paper's clear positive peak; SF's
    # lock-step pricing attenuates the per-area pairing, so the check
    # there is sign + location only (documented deviation).
    candidates = [
        p.coefficient for p in peaks if abs(p.shift_minutes) <= 10.0
    ] + [best_city.coefficient]
    if city == "manhattan":
        assert max(p.coefficient for p in peaks) > 0.2
        positive_near_zero = [
            p for p in peaks
            if p.coefficient > 0.1 and abs(p.shift_minutes) <= 10.0
        ]
        assert len(positive_near_zero) >= 2
    else:
        assert max(candidates) > 0.05
