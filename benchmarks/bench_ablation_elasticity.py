"""Ablation: passenger price elasticity.

The paper measures a large negative demand response to surge (Fig 22)
but cannot vary it — we can.  With the operator pricing on *placed*
requests, elasticity closes the loop: raising it sheds fulfilled demand
(fewer bookings survive pricing), which shrinks the pricing signal and
pulls the posted multiplier down too.  Inelastic riders (e = 0) keep
requesting at any price, so surges run hotter and longer — exactly the
degenerate case surge pricing exists to avoid.
"""

import dataclasses
import statistics

import pytest

from _shared import city_config, write_table
from repro.marketplace.engine import MarketplaceEngine


def run_elasticity(elasticity: float, seed: int = 9):
    config = city_config("sf", jitter_probability=0.0)
    config = dataclasses.replace(config, demand_elasticity=elasticity)
    engine = MarketplaceEngine(config, seed=seed)
    engine.run(6 * 3600.0)  # warm through the morning ramp
    engine.truth.clear()
    engine.run(6 * 3600.0)  # 6..12h: rush + midday
    mults = [m for t in engine.truth for m in t.multipliers.values()]
    requests = sum(
        sum(t.requests_by_area.values()) for t in engine.truth
    )
    priced_out = sum(t.priced_out for t in engine.truth)
    fulfilled = sum(t.fulfilled_total for t in engine.truth)
    return {
        "mean_mult": statistics.mean(mults),
        "max_mult": max(mults),
        "priced_out_frac": priced_out / max(requests, 1),
        "fulfilled": fulfilled,
    }


@pytest.fixture(scope="module")
def sweeps():
    return {e: run_elasticity(e) for e in (0.0, 1.8, 3.5)}


def test_ablation_elasticity(sweeps, benchmark):
    benchmark.pedantic(lambda: run_elasticity(1.8), rounds=1,
                       iterations=1)
    lines = ["elasticity   mean_mult   max_mult   priced_out_frac   "
             "fulfilled"]
    for e, stats in sorted(sweeps.items()):
        lines.append(
            f"{e:10.1f}   {stats['mean_mult']:9.3f}   "
            f"{stats['max_mult']:8.1f}   {stats['priced_out_frac']:15.2f}"
            f"   {stats['fulfilled']:9d}"
        )
    write_table("ablation_elasticity", lines)

    # Inelastic riders are never priced out; elastic ones are, more so
    # at higher elasticity.
    assert sweeps[0.0]["priced_out_frac"] == 0.0
    assert sweeps[1.8]["priced_out_frac"] > 0.02
    assert sweeps[3.5]["priced_out_frac"] > sweeps[1.8]["priced_out_frac"]
    # Fulfilled demand (what Fig 22's "dying" cars measure) falls with
    # elasticity — the paper's demand-suppression effect.
    assert sweeps[0.0]["fulfilled"] > sweeps[3.5]["fulfilled"]
    # Elastic demand sheds the pricing signal too: posted prices fall
    # (or at least never rise) as riders become more price-sensitive.
    assert sweeps[3.5]["mean_mult"] <= sweeps[0.0]["mean_mult"] + 0.02
    assert sweeps[0.0]["max_mult"] >= sweeps[3.5]["max_mult"]
