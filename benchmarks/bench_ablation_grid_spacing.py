"""Ablation: measurement-grid spacing vs capture completeness.

The paper spaces clients by the calibrated visibility radius — too
sparse and cars slip between clients (undercounted supply/demand), too
dense and the same 43 accounts cover less area.  We sweep the spacing
factor on the taxi-validation substrate, where ground truth makes the
undercoverage measurable.
"""

import pytest

from _shared import write_table
from repro.geo.regions import midtown_manhattan
from repro.measurement.fleet import Fleet, TaxiWorld
from repro.measurement.placement import place_clients
from repro.taxi.generator import TaxiGeneratorParams, TaxiTraceGenerator
from repro.taxi.replay import TaxiReplayServer
from repro.validation.validate import validate_against_taxis


def capture_at(spacing_factor: float, seed: int = 2013):
    region = midtown_manhattan()
    generator = TaxiTraceGenerator(
        TaxiGeneratorParams(fleet_size=250, days=0.8), seed=seed,
        region=region,
    )
    replay = TaxiReplayServer(generator.generate(), seed=seed)
    positions = place_clients(region, radius_m=100.0,
                              spacing_factor=spacing_factor)
    fleet = Fleet(positions, ping_interval_s=10.0)
    log = fleet.run(TaxiWorld(replay), duration_s=1.5 * 3600.0,
                    city="taxi", warmup_s=10 * 3600.0)
    report = validate_against_taxis(log, replay,
                                    boundary=region.boundary)
    return len(positions), report


@pytest.fixture(scope="module")
def sweep():
    return {f: capture_at(f) for f in (2.0, 4.0, 8.0)}


def test_ablation_grid_spacing(sweep, benchmark):
    benchmark.pedantic(lambda: capture_at(8.0), rounds=1, iterations=1)
    lines = ["spacing_factor   clients   car_capture   death_capture"]
    for factor, (clients, report) in sorted(sweep.items()):
        lines.append(
            f"{factor:14.1f}   {clients:7d}   {report.car_capture:11.2f}"
            f"   {report.death_capture:13.2f}"
        )
    lines.append("paper's choice: spacing = 2r (tangent circles), "
                 "which validated at 97%/95%")
    write_table("ablation_grid_spacing", lines)

    captures = {f: r.car_capture for f, (_, r) in sweep.items()}
    clients = {f: c for f, (c, _) in sweep.items()}
    # Denser grids cost more clients and capture more.
    assert clients[2.0] > clients[4.0] > clients[8.0]
    assert captures[2.0] > captures[8.0]
    # The paper's operating point is in the high-capture regime.
    assert captures[2.0] > 0.85
