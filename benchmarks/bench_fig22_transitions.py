"""Fig 22: car state transitions when an area surges above its neighbours.

Cars are 5-state machines (new / old / in / out / dying) per 5-minute
interval, conditioned on the previous interval's pricing: all areas equal
vs one area ≥ 0.2 above its neighbours.  The paper finds a small
consistent increase in new cars (supply attraction, +3.7 % average) and
demand suppression (more old, fewer dying) in the surging area.
"""

import statistics

import pytest

from _shared import city_config, per_area_clock_series, write_table
from repro.analysis.cleaning import build_tracks, filter_short_lived
from repro.analysis.transitions import (
    STATES,
    transition_probabilities,
)


def compute(log, region):
    tracks = filter_short_lived(build_tracks(log), min_lifespan_s=60.0)
    area_clock = per_area_clock_series(log, region)
    adjacency = region.adjacency()
    stats = transition_probabilities(
        tracks,
        lambda p: (lambda a: None if a is None else a.area_id)(
            region.area_of(p)
        ),
        area_clock,
        adjacency,
        campaign_end_s=log.rounds[-1].t,
    )
    return stats


def test_fig22_transitions(mhtn_campaign, sf_campaign, benchmark):
    rows = []
    new_deltas = []
    dying_deltas = []
    for city, log in (("manhattan", mhtn_campaign), ("sf", sf_campaign)):
        region = city_config(city).region
        stats = benchmark.pedantic(
            compute, args=(log, region), rounds=1, iterations=1
        ) if city == "manhattan" else compute(log, region)
        for area in sorted({a for a, _ in stats}):
            equal = stats[(area, "equal")]
            surging = stats[(area, "surging")]
            if sum(surging.counts.values()) < 30:
                continue  # the paper, too, omits rarely-surging areas
            p_eq = equal.probabilities()
            p_su = surging.probabilities()
            rows.append((city, area, p_eq, p_su,
                         sum(equal.counts.values()),
                         sum(surging.counts.values())))
            new_deltas.append(p_su["new"] - p_eq["new"])
            dying_deltas.append(p_su["dying"] - p_eq["dying"])

    lines = ["city       area  cond     n      " +
             "  ".join(f"{s:>6s}" for s in STATES)]
    for city, area, p_eq, p_su, n_eq, n_su in rows:
        lines.append(
            f"{city:10s} {area:4d}  equal   {n_eq:6d}  "
            + "  ".join(f"{100 * p_eq[s]:5.1f}%" for s in STATES)
        )
        lines.append(
            f"{city:10s} {area:4d}  surging {n_su:6d}  "
            + "  ".join(f"{100 * p_su[s]:5.1f}%" for s in STATES)
        )
    if new_deltas:
        lines.append(
            f"mean delta(new) surging - equal: "
            f"{100 * statistics.mean(new_deltas):+.1f}% "
            "(paper: +3.7% average)"
        )
        lines.append(
            f"mean delta(dying): "
            f"{100 * statistics.mean(dying_deltas):+.1f}% "
            "(paper: negative — demand suppressed)"
        )
    write_table("fig22_transitions", lines)

    assert rows, "no area surged above its neighbours often enough"
    # Directional checks, averaged (individual areas are noisy, as the
    # paper's own Fig 22 shows).
    assert statistics.mean(new_deltas) > -0.05
    assert statistics.mean(dying_deltas) < 0.05
