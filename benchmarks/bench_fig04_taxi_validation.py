"""Fig 4: measured vs ground-truth taxi supply and demand.

The paper replays the 2013 NYC taxi trace behind a pingClient-equivalent
API, measures it with 172 clients, and captures 97 % of cars and 95 % of
deaths — the evidence that the Uber numbers can be trusted.  We replay a
synthetic trace with known truth and report the same two capture rates
plus the per-interval series.
"""

import pytest

from _shared import write_table
from repro.geo.regions import midtown_manhattan
from repro.measurement.fleet import Fleet, TaxiWorld
from repro.measurement.placement import place_clients
from repro.taxi.generator import TaxiGeneratorParams, TaxiTraceGenerator
from repro.taxi.replay import TaxiReplayServer
from repro.validation.validate import validate_against_taxis


@pytest.fixture(scope="module")
def taxi_run():
    region = midtown_manhattan()
    generator = TaxiTraceGenerator(
        TaxiGeneratorParams(fleet_size=300, days=1.0), seed=2013,
        region=region,
    )
    trips = generator.generate()
    replay = TaxiReplayServer(trips, seed=2013)
    fleet = Fleet(place_clients(region, radius_m=100.0),
                  ping_interval_s=5.0)
    log = fleet.run(TaxiWorld(replay), duration_s=3 * 3600.0,
                    city="taxi", warmup_s=9 * 3600.0)
    return region, replay, log


def test_fig04_taxi_validation(taxi_run, benchmark):
    region, replay, log = taxi_run
    report = benchmark.pedantic(
        validate_against_taxis,
        args=(log, replay),
        kwargs={"boundary": region.boundary},
        rounds=1, iterations=1,
    )
    lines = [
        f"cars captured:   {100 * report.car_capture:5.1f}%   (paper: 97%)",
        f"deaths captured: {100 * report.death_capture:5.1f}%   (paper: 95%)",
        f"supply correlation: {report.supply_correlation:.3f}",
        f"demand correlation: {report.demand_correlation:.3f}",
        "",
        "interval   measured_supply  true_supply  measured_deaths"
        "  true_deaths",
    ]
    for idx, ms, ts, md, td in report.intervals:
        lines.append(f"{idx:8d}   {ms:15d}  {ts:11d}  {md:15d}  {td:11d}")
    from repro.viz.plots import line_chart
    lines.append("")
    lines.append(line_chart(
        {
            "measured": [
                (float(i), float(ms)) for i, ms, _, _, _ in report.intervals
            ],
            "truth": [
                (float(i), float(ts)) for i, _, ts, _, _ in report.intervals
            ],
        },
        title="taxi supply: measured vs ground truth (Fig 4)",
        x_label="interval", width=60, height=10,
    ))
    write_table("fig04_taxi_validation", lines)

    assert report.car_capture > 0.90
    assert report.death_capture > 0.80
    assert report.supply_correlation > 0.6
    assert report.demand_correlation > 0.6
