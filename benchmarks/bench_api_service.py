"""Load bench for the socket service: sustained req/s and latency.

The paper's apparatus was thousands of `pingClient` sessions (43 per
city, every 5 s, for weeks) plus rate-limited REST queries against
production servers; the deployed price-comparison apps (arXiv
1701.04208) faced the same transport edges at app-store scale.  This
bench measures our transport the same way: N simulated WebSocket
clients over **real localhost sockets**, each running its own
ping/await-reply loop against :class:`repro.service.AsgiHttpServer`,
plus a REST leg exercising the HTTP path (including 429s).

Reported per leg: sustained replies/s over the measured window and
per-request latency p50/p99.  The 100- and 1k-client legs carry
enforced throughput floors in full mode; the 10k leg is reported but
never enforced (small hosts hit fd limits and loop-scheduling noise
long before the service saturates — acceptance criteria mark it
reported-unenforced).

Usage::

    PYTHONPATH=src python benchmarks/bench_api_service.py [--quick]

Writes ``benchmarks/out/BENCH_api_service.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.api.ratelimit import RateLimiter
from repro.marketplace.config import sf_config
from repro.marketplace.engine import MarketplaceEngine
from repro.service import AsgiHttpServer, MarketplaceService
from repro.service.loadgen import WebSocketClient, http_get

from _shared import OUT_DIR

OUT_PATH = OUT_DIR / "BENCH_api_service.json"

WARMUP_S = 1800.0
SEED = 2015
COALESCE_S = 0.002


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5)
    )
    return sorted_values[index]


class _ServerThread:
    """The service event loop, isolated on its own thread.

    Client tasks run on the main thread's loop, so request handling and
    load generation contend like separate processes would, not like
    cooperating tasks on one loop.
    """

    def __init__(self, service: MarketplaceService) -> None:
        self.service = service
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = AsgiHttpServer(self.service, port=0)
        await server.start()
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.stop()

    def start(self) -> int:
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service thread failed to start")
        assert self.port is not None
        return self.port

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)


async def _ws_client_loop(
    port: int,
    account_id: str,
    lat: float,
    lon: float,
    pings: int,
    latencies: List[float],
) -> int:
    client = await WebSocketClient.connect("127.0.0.1", port, "/v1/ping")
    message = json.dumps(
        {"account_id": account_id, "lat": lat, "lon": lon,
         "car_types": ["uberX"]}
    )
    served = 0
    try:
        for _ in range(pings):
            t0 = time.perf_counter()
            await client.send_text(message)
            reply = await client.receive_text()
            latencies.append(time.perf_counter() - t0)
            if '"statuses"' not in reply:
                raise RuntimeError(f"bad ping reply: {reply[:200]}")
            served += 1
    finally:
        await client.close()
    return served


async def _run_ws_leg(
    port: int,
    clients: int,
    pings: int,
    positions: Sequence[Any],
) -> Dict[str, Any]:
    latencies: List[float] = []
    tasks = []
    for i in range(clients):
        point = positions[i % len(positions)]
        tasks.append(
            _ws_client_loop(
                port, f"bench{i:05d}", point.lat, point.lon, pings,
                latencies,
            )
        )
    t0 = time.perf_counter()
    results = await asyncio.gather(*tasks, return_exceptions=True)
    elapsed = time.perf_counter() - t0
    failures = [r for r in results if isinstance(r, BaseException)]
    served = sum(r for r in results if isinstance(r, int))
    latencies.sort()
    return {
        "clients": clients,
        "pings_per_client": pings,
        "replies": served,
        "failures": len(failures),
        "failure_example": (
            repr(failures[0]) if failures else None
        ),
        "elapsed_s": elapsed,
        "requests_per_s": served / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1000.0,
    }


async def _run_rest_leg(
    port: int, clients: int, requests_each: int, center: Any
) -> Dict[str, Any]:
    latencies: List[float] = []
    status_counts: Dict[int, int] = {}

    async def one_client(i: int) -> None:
        target = (
            f"/v1/estimates/time?account_id=rest{i:04d}"
            f"&lat={center.lat}&lon={center.lon}&car_types=uberX"
        )
        for _ in range(requests_each):
            t0 = time.perf_counter()
            response = await http_get("127.0.0.1", port, target)
            latencies.append(time.perf_counter() - t0)
            status_counts[response.status] = (
                status_counts.get(response.status, 0) + 1
            )

    t0 = time.perf_counter()
    await asyncio.gather(*[one_client(i) for i in range(clients)])
    elapsed = time.perf_counter() - t0
    total = sum(status_counts.values())
    latencies.sort()
    return {
        "clients": clients,
        "requests_each": requests_each,
        "responses": total,
        "status_counts": {
            str(k): v for k, v in sorted(status_counts.items())
        },
        "elapsed_s": elapsed,
        "requests_per_s": total / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1000.0,
    }


async def _run_429_probe(port: int, center: Any) -> Dict[str, Any]:
    """The transport edge itself: drive one account over its budget."""
    target = (
        f"/v1/surge?account_id=hammer&lat={center.lat}&lon={center.lon}"
    )
    statuses = []
    retry_after = None
    for _ in range(8):
        response = await http_get("127.0.0.1", port, target)
        statuses.append(response.status)
        if response.status == 429:
            retry_after = response.headers.get("retry-after")
    return {
        "limit": 5,
        "statuses": statuses,
        "retry_after": retry_after,
        "contract_held": (
            statuses.count(200) == 5
            and statuses.count(429) == 3
            and retry_after is not None
            and int(retry_after) >= 1
        ),
    }


def _raise_fd_limit() -> None:
    """Lift the soft fd limit toward the hard one for the 10k leg."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        want = hard if hard > 0 else 65536
        if soft < want:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(want, 65536), hard)
            )
    except (ImportError, ValueError, OSError):
        pass


def run_bench(quick: bool) -> Dict[str, Any]:
    _raise_fd_limit()
    engine = MarketplaceEngine(
        sf_config(jitter_probability=0.25), seed=SEED
    )
    engine.run(WARMUP_S)
    service = MarketplaceService(
        engine,
        limiter=RateLimiter(limit=5, window_s=3600.0),
        coalesce_window_s=COALESCE_S,
        city="sf",
    )
    box = engine.config.region.bounding_box
    center = box.center
    positions = [
        center,
        center.offset(300.0, 200.0),
        center.offset(-250.0, 150.0),
        center.offset(120.0, -340.0),
    ]

    server = _ServerThread(service)
    port = server.start()
    try:
        ws_plan = (
            [(50, 5), (200, 5)] if quick
            else [(100, 20), (1000, 10), (10000, 3)]
        )
        ws_legs: List[Dict[str, Any]] = []
        for clients, pings in ws_plan:
            try:
                leg = asyncio.run(
                    _run_ws_leg(port, clients, pings, positions)
                )
            except OSError as exc:
                # fd limits: report the leg as skipped, not the bench
                # as failed (the 10k leg is unenforced by design).
                leg = {
                    "clients": clients,
                    "skipped": f"{type(exc).__name__}: {exc}",
                }
            ws_legs.append(leg)
            label = f"ws {clients} clients"
            if "skipped" in leg:
                print(f"{label:18s} skipped: {leg['skipped']}")
            else:
                print(
                    f"{label:18s} {leg['requests_per_s']:8.0f} req/s  "
                    f"p50 {leg['latency_p50_ms']:6.2f} ms  "
                    f"p99 {leg['latency_p99_ms']:7.2f} ms  "
                    f"({leg['failures']} failures)"
                )
        rest_leg = asyncio.run(
            _run_rest_leg(
                port,
                clients=20 if quick else 100,
                requests_each=3,
                center=center,
            )
        )
        print(
            f"{'rest':18s} {rest_leg['requests_per_s']:8.0f} req/s  "
            f"p50 {rest_leg['latency_p50_ms']:6.2f} ms  "
            f"p99 {rest_leg['latency_p99_ms']:7.2f} ms  "
            f"statuses {rest_leg['status_counts']}"
        )
        probe = asyncio.run(_run_429_probe(port, center))
        print(
            f"{'429 contract':18s} statuses {probe['statuses']} "
            f"retry-after {probe['retry_after']} "
            f"({'ok' if probe['contract_held'] else 'VIOLATED'})"
        )
    finally:
        server.stop()

    accumulator = service.rounds
    coalescing = {
        "rounds_served": accumulator.rounds_served,
        "requests_served": accumulator.requests_served,
        "max_round_size": accumulator.max_round_size,
        "mean_round_size": (
            accumulator.requests_served / accumulator.rounds_served
            if accumulator.rounds_served
            else 0.0
        ),
    }
    print(
        f"{'coalescing':18s} {coalescing['rounds_served']} rounds for "
        f"{coalescing['requests_served']} pings "
        f"(mean {coalescing['mean_round_size']:.1f}, "
        f"max {coalescing['max_round_size']} per round)"
    )

    # Throughput floors.  Modest on purpose: they guard against the
    # transport collapsing (accidental per-request engine scans,
    # quadratic accumulator behaviour), not against slow CI hardware.
    def leg_for(count: int) -> Optional[Dict[str, Any]]:
        for leg in ws_legs:
            if leg.get("clients") == count and "skipped" not in leg:
                return leg
        return None

    thresholds: Dict[str, Dict[str, Any]] = {}
    for count, floor, enforced in (
        (100, 150.0, not quick),
        (1000, 150.0, not quick),
        (10000, 0.0, False),
    ):
        leg = leg_for(count)
        thresholds[f"ws_{count}_requests_per_s"] = {
            "min": floor,
            "enforced": enforced and leg is not None,
            "value": leg["requests_per_s"] if leg else None,
        }
    thresholds["429_contract"] = {
        "min": 1.0,
        "enforced": True,
        "value": 1.0 if probe["contract_held"] else 0.0,
    }
    ok = all(
        bound["value"] is not None and bound["value"] >= bound["min"]
        for bound in thresholds.values()
        if bound["enforced"]
    )
    return {
        "bench": "api_service",
        "mode": "quick" if quick else "full",
        "scenario": (
            f"sf engine at t={WARMUP_S:g}s, seed {SEED}, "
            f"coalesce {COALESCE_S * 1000:g} ms, real localhost sockets"
        ),
        "ws_legs": ws_legs,
        "rest_leg": rest_leg,
        "rate_limit_probe": probe,
        "coalescing": coalescing,
        "thresholds": thresholds,
        "ok": ok,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small client counts, for CI smoke legs",
    )
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    result = run_bench(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not result["ok"]:
        print("enforced thresholds FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
