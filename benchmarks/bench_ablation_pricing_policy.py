"""Ablation: algorithmic surge vs Sidecar-style driver-set pricing.

The paper's discussion (§5.5) floats replacing the opaque surge
algorithm with Sidecar's free market, where drivers set prices
independently.  We run the same SF day under both policies and compare
what each side of the market experiences:

* temporal price volatility at a fixed probe point (the oscillation the
  paper criticizes in surge);
* the mean multiplier riders actually paid;
* rides fulfilled (did pricing wreck matching?).
"""

import statistics

import pytest

from _shared import city_config, write_table
from repro.geo.latlon import LatLon
from repro.marketplace.driver_set import DriverSetPricingEngine
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


def run_policy(engine_cls, hours: float = 10.0, seed: int = 21):
    config = city_config("sf", jitter_probability=0.0)
    engine = engine_cls(config, seed=seed)
    engine.run(6 * 3600.0)  # warm to morning
    probe = config.region.hotspots[0].location
    start_trips = len(engine.completed_trips)
    prices = []
    end = engine.clock.now + hours * 3600.0
    while engine.clock.now < end:
        engine.run(300.0)
        prices.append(engine.true_multiplier(probe, CarType.UBERX))
    trips = engine.completed_trips[start_trips:]
    changes = sum(1 for a, b in zip(prices, prices[1:]) if a != b)
    return {
        "mean_price": statistics.mean(prices),
        "price_stdev": statistics.pstdev(prices),
        "change_rate": changes / max(1, len(prices) - 1),
        "fulfilled": len(trips),
        "mean_paid": (
            statistics.mean(t.surge_multiplier for t in trips)
            if trips else 1.0
        ),
    }


@pytest.fixture(scope="module")
def policies():
    return {
        "surge (measured)": run_policy(MarketplaceEngine),
        "driver-set (sidecar)": run_policy(DriverSetPricingEngine),
    }


def test_ablation_pricing_policy(policies, benchmark):
    benchmark.pedantic(
        lambda: run_policy(MarketplaceEngine, hours=1.0),
        rounds=1, iterations=1,
    )
    lines = ["policy                 mean_price  stdev  change_rate  "
             "fulfilled  mean_paid"]
    for name, stats in policies.items():
        lines.append(
            f"{name:22s} {stats['mean_price']:10.3f}  "
            f"{stats['price_stdev']:5.2f}  {stats['change_rate']:11.2f}"
            f"  {stats['fulfilled']:9d}  {stats['mean_paid']:9.3f}"
        )
    lines.append("paper (§5.5): the free-market approach 'obviates the "
                 "need for a complex, opaque algorithm'")
    write_table("ablation_pricing_policy", lines)

    surge = policies["surge (measured)"]
    sidecar = policies["driver-set (sidecar)"]
    # Both policies keep the marketplace functioning.
    assert sidecar["fulfilled"] > 0.5 * surge["fulfilled"]
    # Driver-set prices drift instead of snapping: per-interval changes
    # still happen (different nearest driver), but the *size* of moves
    # is bounded by one personal step, so dispersion stays moderate.
    assert sidecar["price_stdev"] < max(0.6, 2.0 * surge["price_stdev"])
    assert 0.8 <= sidecar["mean_price"] <= 2.0
