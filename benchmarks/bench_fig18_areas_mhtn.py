"""Fig 18: surge areas in Manhattan, recovered from the API.

The paper probes adjacent API locations and clusters those whose
multiplier series stay in lock-step — revealing Uber's manually drawn
surge areas.  We probe the simulated Manhattan during Friday evening
(when it actually surges) and compare the recovered partition against
the ground-truth geometry with a pairwise co-assignment score.
"""

import pytest

from _shared import city_config, write_table
from repro.api.ratelimit import RateLimiter
from repro.api.rest import RestApi
from repro.geo.grid import grid_cover
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.fleet import MarketplaceWorld
from repro.analysis.areas import (
    area_assignment,
    discover_surge_areas,
    probe_multipliers,
)


def pairwise_agreement(points, assignment, region):
    """Fraction of point pairs co-assigned consistently with truth."""
    truth = {}
    for i, p in enumerate(points):
        area = region.area_of(p)
        if area is not None:
            truth[i] = area.area_id
    ids = sorted(truth)
    agree = total = 0
    for a in range(len(ids)):
        for b in range(a + 1, len(ids)):
            i, j = ids[a], ids[b]
            same_truth = truth[i] == truth[j]
            same_found = assignment.get(i) == assignment.get(j)
            total += 1
            agree += same_truth == same_found
    return agree / total if total else 0.0


def run_discovery(city: str, warmup_hours: float, rounds: int,
                  probe_radius_m: float, seed: int):
    config = city_config(city, jitter_probability=0.0)
    engine = MarketplaceEngine(config, seed=seed)
    engine.run(warmup_hours * 3600.0)
    world = MarketplaceWorld(engine)
    api = RestApi(engine, RateLimiter(limit=10_000_000))
    points = list(grid_cover(config.region.boundary,
                             radius_m=probe_radius_m).points)
    series = probe_multipliers(world, api, points, rounds=rounds)
    components = discover_surge_areas(
        points, series, neighbor_distance_m=probe_radius_m * 2.2
    )
    return config.region, points, series, components


@pytest.fixture(scope="module")
def discovery():
    # Friday 4pm onward: the city's surging stretch.
    return run_discovery("manhattan", warmup_hours=16.0, rounds=30,
                         probe_radius_m=400.0, seed=99)


def test_fig18_areas_mhtn(discovery, benchmark):
    region, points, series, components = discovery
    benchmark.pedantic(
        discover_surge_areas,
        args=(points, series, 880.0),
        rounds=1, iterations=1,
    )
    assignment = area_assignment(points, components)
    agreement = pairwise_agreement(points, assignment, region)
    surging_rounds = sum(
        1 for r in range(len(series[0]))
        if any(s[r] > 1.0 for s in series)
    )
    lines = [
        f"probe points: {len(points)}; rounds: {len(series[0])} "
        f"({surging_rounds} with surge somewhere)",
        f"recovered areas (size >1): "
        f"{sum(1 for c in components if len(c) > 1)}   ground truth: 4",
        f"component sizes: {sorted((len(c) for c in components), reverse=True)}",
        f"pairwise agreement with ground-truth partition: {agreement:.2f}",
    ]
    from repro.viz.heatgrid import labelgrid
    lines.append("")
    lines.append(labelgrid(
        {points[i]: area for i, area in assignment.items()},
        title="recovered surge-area map (Fig 18; letters = areas)",
    ))
    write_table("fig18_areas_mhtn", lines)

    meaningful = [c for c in components if len(c) > 1]
    assert 2 <= len(meaningful) <= 8
    assert agreement > 0.6
