"""Fig 20: cross-correlation of (supply − demand) vs surge.

The paper treats each surge area as an independent time series and finds
a relatively strong *negative* correlation peaking at Δt ≈ 0: surge
rises when the supply/demand slack shrinks, within the same 5-minute
window — evidence the algorithm is responsive to the previous window's
state.  (The correlation is computed over the full series; the m = 1
filter belongs to the forecasting analysis, Table 1.)
"""

import math

import pytest

from _shared import city_config, per_area_clock_series, write_table
from repro.marketplace.types import CarType
from repro.analysis.correlate import cross_correlation, strongest_shift
from repro.analysis.supply_demand import estimate_supply_demand_by_area


def build_series(log, region):
    """Per-area surge clocks + per-area (supply − demand) per interval."""
    area_of = lambda p: (  # noqa: E731 - tiny adapter
        lambda a: None if a is None else a.area_id
    )(region.area_of(p))
    by_area = estimate_supply_demand_by_area(
        log, area_of, car_type=CarType.UBERX, boundary=region.boundary
    )
    sd_diff = {
        area_id: {
            e.interval_index: float(e.supply - e.demand)
            for e in ests[1:-1]
        }
        for area_id, ests in by_area.items()
    }
    return sd_diff, per_area_clock_series(log, region)


def surge_series_with_activity(area_clock):
    """Paper's §5.4 cleaning, used by the *forecasting* analyses:
    intervals at multiplier 1 are dropped unless adjacent to surge."""
    out = {}
    for area_id, clock in area_clock.items():
        kept = {}
        for idx, m in clock.items():
            if m > 1.0 or clock.get(idx - 1, 1.0) > 1.0 or clock.get(
                idx + 1, 1.0
            ) > 1.0:
                kept[idx] = m
        out[area_id] = kept
    return out


@pytest.mark.parametrize("city", ["manhattan", "sf"])
def test_fig20_xcorr_sd(city, mhtn_campaign, sf_campaign, benchmark):
    log = mhtn_campaign if city == "manhattan" else sf_campaign
    region = city_config(city).region
    sd_by_area, area_clock = benchmark.pedantic(
        build_series, args=(log, region), rounds=1, iterations=1
    )

    lines = [f"{city}: area   r(-10m)  r(-5m)   r(0)   r(+5m)  best"]
    peaks = []
    for area_id in sorted(area_clock):
        surge = area_clock[area_id]
        sd = sd_by_area.get(area_id, {})
        if len(surge) < 24 or not sd:
            lines.append(f"area {area_id}: insufficient data")
            continue
        points = cross_correlation(surge, sd, max_shift_intervals=12)
        by_shift = {p.shift_minutes: p for p in points}
        best = strongest_shift(points)
        lines.append(
            f"area {area_id:4d}   "
            + "  ".join(
                f"{by_shift[m].coefficient:+5.2f}"
                for m in (-10.0, -5.0, 0.0, 5.0)
            )
            + f"   {best.coefficient:+.2f}@{best.shift_minutes:+.0f}m"
        )
        peaks.append(best)
    lines.append("paper: negative correlation, strongest within "
                 "-10..+10 min of zero shift")
    write_table(f"fig20_xcorr_sd_{city}", lines)

    assert peaks, "no area had enough data"
    # Negative coupling peaking near zero shift.  Manhattan reproduces
    # the paper's magnitude; SF's near-lock-step pricing means per-area
    # measured features carry little area-specific signal, so its
    # correlations keep the right sign and location but are attenuated
    # (documented deviation in EXPERIMENTS.md).
    negative_near_zero = [
        p for p in peaks
        if p.coefficient < -0.08 and abs(p.shift_minutes) <= 10.0
    ]
    assert len(negative_near_zero) >= 2
    strongest = min(p.coefficient for p in peaks)
    assert strongest < (-0.2 if city == "manhattan" else -0.1)
