"""Ablation: the nearest-8 truncation.

Everything about the measurement design — visibility radius, grid
spacing, client count — flows from the Client app returning only the
eight nearest cars.  We vary k and measure the visibility radius: more
cars per response means each client sees further, so fewer clients would
cover the same region.
"""

import pytest

from _shared import city_config, write_table
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.calibrate import visibility_radius
from repro.measurement.fleet import MarketplaceWorld


def radius_for_k(k: int, seed: int = 12):
    config = city_config("manhattan", jitter_probability=0.0)
    engine = MarketplaceEngine(config, seed=seed)
    engine.run(9 * 3600.0)  # mid-morning density
    world = MarketplaceWorld(engine, nearest_k=k)
    center = config.region.bounding_box.center
    return visibility_radius(world, center)


@pytest.fixture(scope="module")
def radii():
    return {k: radius_for_k(k) for k in (4, 8, 16)}


def test_ablation_nearest_k(radii, benchmark):
    benchmark.pedantic(lambda: radius_for_k(8), rounds=1, iterations=1)
    lines = ["nearest_k   visibility_radius_m   grid_clients_at_2r"]
    for k, radius in sorted(radii.items()):
        if radius is None:
            lines.append(f"{k:9d}   (no cars visible)")
            continue
        # Clients needed to tile midtown at spacing 2r.
        from repro.measurement.placement import place_clients
        clients = len(place_clients(
            city_config("manhattan").region, radius_m=radius
        ))
        lines.append(f"{k:9d}   {radius:19.0f}   {clients:18d}")
    write_table("ablation_nearest_k", lines)

    assert all(r is not None for r in radii.values())
    # Monotone: seeing more cars extends the visibility radius.
    assert radii[4] <= radii[8] <= radii[16]
    assert radii[16] > radii[4]
