"""Distributed sweep throughput: the cluster dispatcher vs local modes.

The PR 10 headline: the same 8-campaign sweep (two cities × four
seeds, the §4 campaign shape) dispatched four ways —

* ``sequential``  — :func:`repro.parallel.run_sweep` with ``jobs=1``,
  the single-process reference;
* ``local_pool``  — ``run_sweep`` with a local process pool (the PR 6
  orchestrator path);
* ``cluster_2``   — :func:`repro.parallel.run_cluster_sweep` against
  two single-job ``repro worker`` subprocesses over real localhost
  sockets;
* ``cluster_4``   — the same against four workers.

Every worker is a genuine ``python -m repro.cli worker --listen``
subprocess, so the timing includes the full wire path: canonical-JSON
framing, the pull-based work queue, and per-worker process pools.

Correctness rides along with the timing: the byte-identity contract
requires every dispatch mode to produce identical campaigns, so the
bench cross-checks ``truth_digest`` lists (and full outcome identities)
across all four legs and fails hard on any mismatch.  Per-campaign
``wall_s`` feeds a straggler-skew stat per leg (max/mean campaign wall
time — how unevenly the queue's pull scheduling loaded the workers).

Headline speedups and thresholds:

* ``cluster4_vs_sequential`` — 4 workers vs sequential (target:
  >= 1.8x, enforced on >= 4-core machines in full mode only; smaller
  boxes and ``--quick`` record the number unenforced);
* ``cluster2_vs_sequential`` / ``local_pool_vs_sequential`` /
  ``cluster4_vs_local_pool`` — recorded, never enforced (the last one
  isolates the wire tax against the in-process pool).

Where socket binding is forbidden (sandboxed CI) the cluster legs are
skipped and recorded as ``null`` with ``sockets_available: false``;
the local legs and their digest cross-check still run.

Run directly (writes ``benchmarks/out/BENCH_sweep_cluster.json``)::

    PYTHONPATH=src python benchmarks/bench_sweep_cluster.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).parent))

from repro.api.serialize import canonical_json
from repro.parallel.cluster import run_cluster_sweep
from repro.parallel.orchestrator import (
    CampaignOutcome,
    CampaignSpec,
    run_sweep,
)

OUT_PATH = Path(__file__).parent / "out" / "BENCH_sweep_cluster.json"
#: CI uploads the repo-root copy as the run's cluster artifact.
ROOT_OUT_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_sweep_cluster.json"
)

#: The sweep: two cities × four seeds, digest-only (``out=None``).
CITIES = ("manhattan", "sf")
SEEDS = (3, 4, 5, 6)
FULL_HOURS = 0.5
FULL_CLIENTS = 16
QUICK_HOURS = 0.05
QUICK_CLIENTS = 4

#: Per-leg worker fleet shapes: every cluster worker runs one local
#: job, so the leg name is the cluster's total parallelism.
CLUSTER_FLEETS = {"cluster_2": 2, "cluster_4": 4}
LOCAL_POOL_JOBS = 4

#: The 4-worker floor from the PR 10 acceptance criteria.
CLUSTER4_MIN_SPEEDUP = 1.8

_WORKER_SPAWN_TIMEOUT_S = 30.0


def sweep_specs(quick: bool) -> List[CampaignSpec]:
    hours = QUICK_HOURS if quick else FULL_HOURS
    max_clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    return [
        CampaignSpec(
            key=f"{city}-s{seed}",
            city=city,
            seed=seed,
            hours=hours,
            max_clients=max_clients,
        )
        for city in CITIES
        for seed in SEEDS
    ]


def sockets_available() -> bool:
    """Whether this sandbox lets us bind localhost listeners."""
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


def _worker_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class _WorkerFleet:
    """N ``repro worker --listen`` subprocesses, one local job each."""

    def __init__(self, size: int) -> None:
        self.procs: List[subprocess.Popen] = []
        self.addresses: List[str] = []
        try:
            for _ in range(size):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "worker",
                     "--listen", "127.0.0.1:0", "--jobs", "1"],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                    env=_worker_env(),
                )
                self.procs.append(proc)
            deadline = time.monotonic() + _WORKER_SPAWN_TIMEOUT_S
            for proc in self.procs:
                assert proc.stdout is not None
                line = proc.stdout.readline()
                if "listening on" not in line or (
                    time.monotonic() > deadline
                ):
                    raise RuntimeError(
                        f"worker failed to start: {line!r}"
                    )
                self.addresses.append(
                    line.split("listening on ")[1].split()[0]
                )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        for proc in self.procs:
            proc.kill()
        for proc in self.procs:
            proc.wait(timeout=10)


def _leg_stats(
    outcomes: Sequence[CampaignOutcome], wall_s: float, **extra: object
) -> Dict[str, object]:
    walls = [o.wall_s for o in outcomes if o.wall_s is not None]
    mean = sum(walls) / len(walls) if walls else 0.0
    stats: Dict[str, object] = {
        "wall_s": wall_s,
        "campaigns": len(outcomes),
        "all_ok": all(o.ok for o in outcomes),
        "campaign_wall_s": {
            "max": max(walls) if walls else None,
            "mean": mean or None,
            # Straggler skew: how unevenly the slowest campaign loaded
            # its slot relative to the average (1.0 = perfectly even).
            "straggler_skew": (max(walls) / mean) if walls else None,
        },
    }
    stats.update(extra)
    return stats


def _timed_local(
    specs: Sequence[CampaignSpec], jobs: int
) -> "tuple[List[CampaignOutcome], Dict[str, object]]":
    t0 = time.perf_counter()
    outcomes = run_sweep(specs, jobs=jobs)
    wall = time.perf_counter() - t0
    return outcomes, _leg_stats(outcomes, wall, jobs=jobs)


def _timed_cluster(
    specs: Sequence[CampaignSpec], workers: int
) -> "tuple[List[CampaignOutcome], Dict[str, object]]":
    fleet = _WorkerFleet(workers)
    try:
        t0 = time.perf_counter()
        outcomes = run_cluster_sweep(specs, fleet.addresses)
        wall = time.perf_counter() - t0
    finally:
        fleet.close()
    return outcomes, _leg_stats(
        outcomes, wall, workers=workers, jobs_per_worker=1
    )


def _identity_blob(outcomes: Sequence[CampaignOutcome]) -> bytes:
    """The leg's byte-identity fingerprint (wall_s excluded)."""
    return canonical_json([o.identity() for o in outcomes])


def run_bench(quick: bool = False) -> Dict[str, object]:
    specs = sweep_specs(quick)
    cores = os.cpu_count() or 1
    sockets_ok = sockets_available()

    legs: Dict[str, Optional[Dict[str, object]]] = {}
    blobs: Dict[str, bytes] = {}
    digests: Dict[str, List[str]] = {}

    sequential, legs["sequential"] = _timed_local(specs, jobs=1)
    blobs["sequential"] = _identity_blob(sequential)
    digests["sequential"] = [o.truth_digest for o in sequential]

    pool_jobs = min(LOCAL_POOL_JOBS, cores)
    local_pool, legs["local_pool"] = _timed_local(specs, jobs=pool_jobs)
    blobs["local_pool"] = _identity_blob(local_pool)
    digests["local_pool"] = [o.truth_digest for o in local_pool]

    if sockets_ok:
        for name, workers in CLUSTER_FLEETS.items():
            outcomes, legs[name] = _timed_cluster(specs, workers)
            blobs[name] = _identity_blob(outcomes)
            digests[name] = [o.truth_digest for o in outcomes]
    else:
        for name in CLUSTER_FLEETS:
            legs[name] = None

    # The byte-identity contract: every dispatch mode, same bytes.
    reference = blobs["sequential"]
    identical = all(blob == reference for blob in blobs.values())

    def _speedup(name: str) -> Optional[float]:
        leg = legs[name]
        if leg is None:
            return None
        seq = legs["sequential"]
        assert seq is not None
        return float(seq["wall_s"]) / float(leg["wall_s"])

    speedup = {
        "local_pool_vs_sequential": _speedup("local_pool"),
        "cluster2_vs_sequential": _speedup("cluster_2"),
        "cluster4_vs_sequential": _speedup("cluster_4"),
        "cluster4_vs_local_pool": (
            float(legs["local_pool"]["wall_s"])
            / float(legs["cluster_4"]["wall_s"])
            if legs["cluster_4"] is not None
            else None
        ),
    }
    # The distributed floor is a physical claim about multi-core
    # machines running the full-size sweep over real sockets; quick
    # mode's tiny campaigns are dominated by worker spawn time.
    thresholds = {
        "cluster4_vs_sequential": {
            "min": CLUSTER4_MIN_SPEEDUP,
            "enforced": cores >= 4 and not quick and sockets_ok,
            "workers": CLUSTER_FLEETS["cluster_4"],
            "campaigns": len(specs),
        },
    }
    return {
        "bench": "sweep_cluster",
        "mode": "quick" if quick else "full",
        "cpu_count": cores,
        "sockets_available": sockets_ok,
        "sweep": {
            "campaigns": len(specs),
            "cities": list(CITIES),
            "seeds": list(SEEDS),
            "hours": QUICK_HOURS if quick else FULL_HOURS,
            "max_clients": QUICK_CLIENTS if quick else FULL_CLIENTS,
        },
        "legs": legs,
        "speedup": speedup,
        "thresholds": thresholds,
        "digests": digests,
        "identities_byte_identical": identical,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny campaigns, for CI smoke runs",
    )
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    result = run_bench(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(result, indent=2) + "\n"
    args.out.write_text(blob)
    ROOT_OUT_PATH.write_text(blob)

    sweep = result["sweep"]
    lines: List[str] = [
        f"sweep: {sweep['campaigns']} campaigns "
        f"({' + '.join(sweep['cities'])} x seeds "
        f"{min(sweep['seeds'])}-{max(sweep['seeds'])}, "
        f"{sweep['hours']:g}h each), {result['cpu_count']} cores"
    ]
    if not result["sockets_available"]:
        lines.append(
            "sockets unavailable: cluster legs skipped, local legs only"
        )
    for name, leg in result["legs"].items():
        if leg is None:
            lines.append(f"{name:12s} skipped (no sockets)")
            continue
        skew = leg["campaign_wall_s"]["straggler_skew"]
        skew_note = f", straggler skew {skew:.2f}" if skew else ""
        lines.append(
            f"{name:12s} {leg['wall_s']:7.2f}s"
            f"  ({'ok' if leg['all_ok'] else 'FAILURES'}{skew_note})"
        )
    thresholds = result["thresholds"]
    threshold_failures: List[str] = []
    for name, value in result["speedup"].items():
        if value is None:
            lines.append(f"{name:28s}   n/a (no sockets)")
            continue
        bound = thresholds.get(name)
        note = ""
        if bound is not None:
            ok = value >= bound["min"]
            if not ok and bound["enforced"]:
                threshold_failures.append(name)
            note = (
                f"  (min {bound['min']:g}x"
                + ("" if bound["enforced"] else ", unenforced")
                + ("" if ok else ", BELOW")
                + ")"
            )
        lines.append(f"{name:28s} {value:5.2f}x{note}")
    lines.append(
        "identities byte-identical across modes: "
        + ("yes" if result["identities_byte_identical"] else "NO — BUG")
    )
    if threshold_failures:
        lines.append(
            "ENFORCED THRESHOLDS BELOW MINIMUM: "
            + ", ".join(threshold_failures)
        )
    print("\n".join(lines))
    print(f"wrote {args.out} (and {ROOT_OUT_PATH})")
    ok = result["identities_byte_identical"] and not threshold_failures
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
