"""Fig 3: measurement-point placement in SF, Manhattan, and for taxis.

The paper blankets midtown Manhattan with 43 Uber clients at 200 m
radius, downtown SF with 43 at 350 m, and midtown with 172 taxi clients
at 100 m ("it takes 300% more taxi clients to cover midtown").
"""

from _shared import write_table
from repro.geo.regions import downtown_sf, midtown_manhattan
from repro.measurement.placement import place_clients


def test_fig03_placement(benchmark):
    mhtn = midtown_manhattan()
    sf = downtown_sf()
    uber_mhtn = benchmark(place_clients, mhtn)
    uber_sf = place_clients(sf)
    taxi_mhtn = place_clients(mhtn, radius_m=100.0)

    lines = [
        "grid                 radius_m   clients   paper",
        f"uber, manhattan         200      {len(uber_mhtn):5d}      43",
        f"uber, sf                350      {len(uber_sf):5d}      43",
        f"taxi, manhattan         100      {len(taxi_mhtn):5d}     172",
        f"taxi/uber client ratio (midtown): "
        f"{len(taxi_mhtn) / len(uber_mhtn):.1f}x   paper: 4.0x",
    ]
    write_table("fig03_placement", lines)

    assert 30 <= len(uber_mhtn) <= 56
    assert 20 <= len(uber_sf) <= 56
    assert 140 <= len(taxi_mhtn) <= 200
    # "300% more taxi clients" = ~4x as many.
    assert len(taxi_mhtn) >= 3 * len(uber_mhtn)
    # Every client lies inside its region.
    assert all(mhtn.boundary.contains(p) for p in uber_mhtn)
    assert all(sf.boundary.contains(p) for p in uber_sf)
