"""Fig 14: example surge timelines — API vs Client app with jitter.

Renders two 25-minute windows around a surge: the clean clock view
(5-minute steps only) and one client's stream with jitter dips marked.
"""

from _shared import write_table
from repro.marketplace.types import CarType
from repro.analysis.jitter import detect_jitter_events
from repro.analysis.surge_stats import interval_multipliers


def find_interesting_window(log):
    """A (client, start) pair whose stream contains a jitter event."""
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        events = detect_jitter_events(series, client_id=cid)
        if events:
            return cid, events[0].start_s - 600.0, events
    return log.client_ids[0], log.rounds[0].t, []


def render(series, start, end, events):
    lines = []
    jitter_ranges = [(e.start_s, e.end_s) for e in events]
    last = None
    for t, m in series:
        if not start <= t < end:
            continue
        in_jitter = any(s <= t < e for s, e in jitter_ranges)
        if m != last or in_jitter:
            mark = "  <-- jitter (stale value)" if in_jitter else ""
            lines.append(f"  t={t:8.0f}s  x{m:.1f}{mark}")
        last = m if not in_jitter else None
    return lines


def test_fig14_jitter_timeline(mhtn_jitter_campaign, benchmark):
    log = mhtn_jitter_campaign
    cid, start, events = benchmark.pedantic(
        find_interesting_window, args=(log,), rounds=1, iterations=1
    )
    end = start + 1500.0
    series = log.multiplier_series(cid, CarType.UBERX)

    lines = [f"(b) client {cid} stream ({'with' if events else 'no'} "
             "jitter observed):"]
    window_events = [e for e in events if start <= e.start_s < end]
    lines += render(series, start, end, window_events)
    lines.append("")
    lines.append("(a) API view (clock values per 5-min interval):")
    clock = interval_multipliers(series)
    for idx in sorted(clock):
        if start <= idx * 300.0 < end:
            lines.append(f"  interval {idx}  x{clock[idx]:.1f}")
    write_table("fig14_jitter_timeline", lines)

    # The clock view changes at most once per interval by construction;
    # the client stream must contain at least as many changes.
    client_changes = sum(
        1
        for (_, a), (_, b) in zip(series, series[1:])
        if a != b
    )
    clock_changes = sum(
        1
        for a, b in zip(sorted(clock), sorted(clock)[1:])
        if clock[a] != clock[b]
    )
    assert client_changes >= clock_changes
