"""Fig 6 (§4.1): integrity of the collected sample stream.

The paper verifies its 9.3M+9.4M samples arrive on the expected cadence
before analysing them.  We check the same over the cached campaigns: the
distribution of gaps between consecutive rounds, and per-client sample
completeness.
"""

from collections import Counter

from _shared import write_table
from repro.marketplace.types import CarType


def gap_distribution(log):
    gaps = Counter()
    for a, b in zip(log.rounds, log.rounds[1:]):
        gaps[round(b.t - a.t, 3)] += 1
    return gaps


def test_fig06_sample_intervals(mhtn_campaign, sf_campaign, benchmark):
    gaps = benchmark(gap_distribution, mhtn_campaign)
    lines = ["city        gap_s   count   fraction"]
    for city, log in (("manhattan", mhtn_campaign), ("sf", sf_campaign)):
        distribution = gap_distribution(log)
        total = sum(distribution.values())
        for gap, count in sorted(distribution.items()):
            lines.append(
                f"{city:10s}  {gap:5.1f}   {count:6d}   {count / total:.4f}"
            )
        expected = log.ping_interval_s
        on_cadence = distribution.get(round(expected, 3), 0) / total
        lines.append(f"{city:10s}  on-cadence fraction: {on_cadence:.4f}")
        assert on_cadence > 0.99

    # Completeness: every client contributes a sample in every round.
    for log in (mhtn_campaign, sf_campaign):
        n_clients = len(log.client_positions)
        complete = sum(
            1 for r in log.rounds
            if sum(1 for (_, ct) in r.samples if ct is CarType.UBERX)
            == n_clients
        )
        lines.append(
            f"{log.city}: complete rounds {complete}/{len(log.rounds)}"
        )
        assert complete == len(log.rounds)
    write_table("fig06_sample_intervals", lines)
