"""Fig 12: distribution of surge multipliers for UberX.

The paper: no surge 86 % of the time in Manhattan vs 43 % in SF; maxima
2.8 vs 4.1; during most surges the multiplier stays <= 1.5.
"""

from _shared import all_multiplier_samples, write_table
from repro.analysis.timeseries import cdf_at


def test_fig12_surge_cdf(mhtn_campaign, sf_campaign, benchmark):
    mhtn = benchmark(all_multiplier_samples, mhtn_campaign)
    sf = all_multiplier_samples(sf_campaign)

    lines = ["multiplier   cdf_manhattan   cdf_sf"]
    for threshold in (1.0, 1.2, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5):
        lines.append(
            f"{threshold:9.1f}    {100 * cdf_at(mhtn, threshold):10.1f}%"
            f"   {100 * cdf_at(sf, threshold):6.1f}%"
        )
    no_surge_mhtn = cdf_at(mhtn, 1.0)
    no_surge_sf = cdf_at(sf, 1.0)
    lines += [
        f"no-surge fraction: manhattan {no_surge_mhtn:.2f} "
        f"(paper 0.86), sf {no_surge_sf:.2f} (paper 0.43)",
        f"max multiplier: manhattan {max(mhtn):.1f} (paper 2.8), "
        f"sf {max(sf):.1f} (paper 4.1)",
    ]
    from repro.viz.plots import cdf_chart
    lines.append("")
    lines.append(cdf_chart(
        {"manhattan": mhtn, "sf": sf},
        title="surge multiplier CDFs (Fig 12)",
        x_label="multiplier", width=60,
    ))
    write_table("fig12_surge_cdf", lines)

    # The headline contrast: Manhattan rarely surges, SF surges most of
    # the time, and SF reaches higher multipliers.
    assert no_surge_mhtn > 0.65
    assert no_surge_sf < 0.60
    assert no_surge_mhtn - no_surge_sf > 0.2
    assert max(sf) > max(mhtn)
    # Most surging samples stay <= 1.5 in Manhattan.
    surging_mhtn = [m for m in mhtn if m > 1.0]
    if surging_mhtn:
        small = sum(1 for m in surging_mhtn if m <= 1.5)
        assert small / len(surging_mhtn) > 0.5
