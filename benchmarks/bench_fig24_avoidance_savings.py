"""Fig 24: how much surge is avoided, and how far users walk.

The paper: in more than half the avoidable cases the multiplier drops by
at least 0.5; walks stay under 7 minutes in Manhattan and 9 in SF
(SF's areas are larger, so its shortest cross-border walks are longer).
"""

import pytest

from _shared import write_table
from repro.analysis.timeseries import cdf_at
from bench_fig23_avoidance_rate import runs  # shared fixture


def savings_and_walks(results):
    reductions = []
    walks = []
    for outcomes in results.values():
        for outcome in outcomes:
            if outcome.saved:
                reductions.append(outcome.reduction)
                walks.append(outcome.best.walk_minutes)
    return reductions, walks


def test_fig24_avoidance_savings(runs, benchmark):
    lines = []
    all_data = {}
    for city in ("manhattan", "sf"):
        _, results = runs[city]
        reductions, walks = benchmark.pedantic(
            savings_and_walks, args=(results,), rounds=1, iterations=1
        ) if city == "manhattan" else savings_and_walks(results)
        all_data[city] = (reductions, walks)
        if not reductions:
            lines.append(f"{city}: no savings events")
            continue
        lines.append(
            f"{city}: {len(reductions)} savings events; "
            f"reduction >= 0.5 in "
            f"{100 * (1 - cdf_at(reductions, 0.4999)):.0f}% of cases "
            "(paper: >50%)"
        )
        lines.append(
            f"  walk minutes: min {min(walks):.1f}, "
            f"median {sorted(walks)[len(walks) // 2]:.1f}, "
            f"max {max(walks):.1f} "
            f"(paper cap: {'7' if city == 'manhattan' else '9'} min)"
        )
    write_table("fig24_avoidance_savings", lines)

    reductions, walks = all_data["manhattan"]
    assert reductions, "Manhattan produced no savings events"
    # Savings are substantial (the strategy's whole selling point)...
    assert max(reductions) >= 0.4
    # ...and walks are short enough to beat the EWT by construction.
    assert all(w <= 12.0 for w in walks)
    sf_walks = all_data["sf"][1]
    if sf_walks and walks:
        # SF's larger areas force longer minimum walks.
        assert min(sf_walks) >= min(walks) * 0.8
