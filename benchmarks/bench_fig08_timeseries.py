"""Fig 8: supply, demand, surge, and EWT over time, both cities.

The paper's headline characterization: all four quantities are diurnal
with rush-hour peaks; SF has ~58 % more Ubers yet surges far more often
and higher.  We regenerate the hourly series from the two campaigns and
check every contrast.
"""

import statistics
from collections import defaultdict

from _shared import all_multiplier_samples, city_config, write_table
from repro.marketplace.types import CarType
from repro.analysis.supply_demand import estimate_supply_demand
from repro.analysis.surge_stats import mean_multiplier, surge_fraction


def hourly_series(log, region):
    """hour -> (supply, demand, surge, ewt) averaged over the campaign."""
    estimates = estimate_supply_demand(
        log, car_type=CarType.UBERX, boundary=region.boundary
    )
    supply = defaultdict(list)
    demand = defaultdict(list)
    for est in estimates[1:-1]:
        hour = int((est.start_s % 86_400.0) // 3600.0)
        supply[hour].append(est.supply)
        demand[hour].append(est.demand)
    surge = defaultdict(list)
    ewt = defaultdict(list)
    cid = log.client_ids[len(log.client_ids) // 2]
    for t, m in log.multiplier_series(cid, CarType.UBERX):
        surge[int((t % 86_400.0) // 3600.0)].append(m)
    for t, e in log.ewt_series(cid, CarType.UBERX):
        if e is not None:
            ewt[int((t % 86_400.0) // 3600.0)].append(e)
    rows = {}
    for hour in range(24):
        if hour in supply:
            rows[hour] = (
                statistics.mean(supply[hour]),
                statistics.mean(demand[hour]),
                statistics.mean(surge[hour]) if surge[hour] else 1.0,
                statistics.mean(ewt[hour]) if ewt[hour] else float("nan"),
            )
    return rows


def test_fig08_timeseries(mhtn_campaign, sf_campaign, benchmark):
    mhtn_region = city_config("manhattan").region
    sf_region = city_config("sf").region
    mhtn = benchmark.pedantic(
        hourly_series, args=(mhtn_campaign, mhtn_region),
        rounds=1, iterations=1,
    )
    sf = hourly_series(sf_campaign, sf_region)

    lines = ["hour | mhtn: supply demand surge ewt | "
             "sf: supply demand surge ewt"]
    for hour in sorted(set(mhtn) | set(sf)):
        m = mhtn.get(hour, (float("nan"),) * 4)
        s = sf.get(hour, (float("nan"),) * 4)
        lines.append(
            f"{hour:4d} |  {m[0]:6.0f} {m[1]:6.1f} {m[2]:5.2f} {m[3]:4.1f}"
            f" |  {s[0]:6.0f} {s[1]:6.1f} {s[2]:5.2f} {s[3]:4.1f}"
        )

    from repro.viz.plots import line_chart
    for city_name, rows in (("manhattan", mhtn), ("sf", sf)):
        lines.append("")
        lines.append(line_chart(
            {
                "supply": [(h, v[0]) for h, v in sorted(rows.items())],
                "demand": [(h, v[1]) for h, v in sorted(rows.items())],
            },
            title=f"{city_name}: hourly mean supply & demand (Fig 8)",
            x_label="hour of day", width=60, height=12,
        ))

    mhtn_mults = all_multiplier_samples(mhtn_campaign)
    sf_mults = all_multiplier_samples(sf_campaign)
    mhtn_supply = statistics.mean(v[0] for v in mhtn.values())
    sf_supply = statistics.mean(v[0] for v in sf.values())
    lines += [
        "",
        f"mean supply: mhtn {mhtn_supply:.0f}, sf {sf_supply:.0f} "
        f"(+{100 * (sf_supply / mhtn_supply - 1):.0f}%; paper: sf +58%)",
        f"surge>1 fraction: mhtn "
        f"{surge_fraction(list(enumerate(mhtn_mults))):.2f}, sf "
        f"{surge_fraction(list(enumerate(sf_mults))):.2f} "
        "(paper: 0.14 vs 0.57)",
        f"mean multiplier: mhtn "
        f"{statistics.mean(mhtn_mults):.3f}, sf "
        f"{statistics.mean(sf_mults):.3f} (paper: 1.07 vs 1.36)",
    ]
    write_table("fig08_timeseries", lines)

    # SF has more cars but surges more and higher.
    assert sf_supply > 1.2 * mhtn_supply
    assert surge_fraction(list(enumerate(sf_mults))) > 1.5 * surge_fraction(
        list(enumerate(mhtn_mults))
    )
    assert statistics.mean(sf_mults) > statistics.mean(mhtn_mults)
    # Diurnal shape: daytime supply beats deep-night supply.
    day = statistics.mean(mhtn[h][0] for h in mhtn if 8 <= h <= 20)
    night = statistics.mean(mhtn[h][0] for h in mhtn if h <= 4)
    assert day > night
