"""Fig 16: surge multipliers seen during jitter.

The stale value equals the previous interval's multiplier, so jitter
almost always lowers the shown price (74 % in Manhattan / 64 % in SF),
and in 30-50 % of events it drops all the way to 1.
"""

from _shared import write_table
from repro.marketplace.types import CarType
from repro.analysis.jitter import (
    detect_jitter_events,
    drop_fraction,
    drop_to_one_fraction,
)
from repro.analysis.timeseries import cdf_at


def all_events(log):
    events = []
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        events.extend(detect_jitter_events(series, client_id=cid))
    return events


def test_fig16_jitter_multiplier(mhtn_jitter_campaign, benchmark):
    events = benchmark(all_events, mhtn_jitter_campaign)
    assert len(events) >= 5, (
        "campaign produced too few jitter events to characterize"
    )
    stale = [e.stale_value for e in events]
    lines = ["stale multiplier CDF:", "value   cdf"]
    for threshold in (1.0, 1.2, 1.5, 2.0, 2.5, 3.0):
        lines.append(
            f"{threshold:5.1f}   {100 * cdf_at(stale, threshold):5.1f}%"
        )
    lines += [
        f"events: {len(events)}",
        f"stale == previous interval: "
        f"{100 * sum(e.matches_previous_interval for e in events) / len(events):.0f}%",
        f"price lowered: {100 * drop_fraction(events):.0f}% "
        "(paper: 74% in Manhattan)",
        f"dropped to 1.0: {100 * drop_to_one_fraction(events):.0f}% "
        "(paper: 30-50%)",
        f"durations: {min(e.duration_s for e in events):.0f}-"
        f"{max(e.duration_s for e in events):.0f} s (paper: 20-30 s)",
    ]
    write_table("fig16_jitter_multiplier", lines)

    matching = sum(e.matches_previous_interval for e in events)
    assert matching / len(events) > 0.8
    # Known partial reproduction: the paper's 74% price-drop share
    # implies Uber's multiplier ramps up over several intervals and
    # collapses in one (3:1 rise:fall transitions).  Our simulator's
    # transition mix is closer to balanced (noise-driven one-interval
    # spikes dominate), so the drop share sits near — not far above —
    # one half.  Every other jitter signature (stale == previous
    # interval, 20-30 s, drop-to-1.0 share) matches.
    assert drop_fraction(events) > 0.25
    assert all(e.duration_s <= 60.0 for e in events)
