"""Fig 9: Manhattan heatmaps — cars seen and EWT per client cell.

Cars skew toward Times Square / 5th Avenue; EWT relates to density in a
complex way (some dense cells are still under-supplied).
"""

import math

from _shared import city_config, write_table
from repro.analysis.heatmap import client_heatmap, render_grid


def test_fig09_heatmap_mhtn(mhtn_campaign, benchmark):
    cells = benchmark(client_heatmap, mhtn_campaign)
    lines = ["avg unique UberX ids per day, per client cell "
             "(north at top):", render_grid(cells, value="cars"),
             "", "avg EWT minutes:", render_grid(cells, value="ewt")]
    write_table("fig09_heatmap_mhtn", lines)

    region = city_config("manhattan").region
    hotspot = region.hotspots[0].location  # Times Square
    by_dist = sorted(
        cells, key=lambda c: c.location.fast_distance_m(hotspot)
    )
    near = [c.unique_cars_per_day for c in by_dist[:5]]
    far = [c.unique_cars_per_day for c in by_dist[-5:]]
    # Cars congregate around the main hotspot (Fig 9a).
    assert sum(near) / 5 > sum(far) / 5
    # Every cell saw cars and has a finite EWT.
    assert all(c.unique_cars_per_day > 0 for c in cells)
    assert all(
        c.mean_ewt_minutes is not None
        and not math.isnan(c.mean_ewt_minutes)
        for c in cells
    )
