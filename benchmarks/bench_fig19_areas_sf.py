"""Fig 19: surge areas in SF, recovered from the API.

Same methodology as Fig 18.  SF areas are larger and their multipliers
more correlated (the paper notes it is "rare for one area in downtown SF
to have significantly higher surge than all the others"), so recovery
needs more rounds to catch the moments they diverge.
"""

import pytest

from _shared import write_table
from bench_fig18_areas_mhtn import (
    area_assignment,
    discover_surge_areas,
    pairwise_agreement,
    run_discovery,
)


@pytest.fixture(scope="module")
def discovery():
    # SF areas are near-lock-step; like the paper (8 days of API
    # probing) we need a long window to catch their rare divergences.
    return run_discovery("sf", warmup_hours=7.0, rounds=500,
                         probe_radius_m=500.0, seed=77)


def test_fig19_areas_sf(discovery, benchmark):
    region, points, series, components = discovery
    benchmark.pedantic(
        discover_surge_areas,
        args=(points, series, 1100.0),
        rounds=1, iterations=1,
    )
    assignment = area_assignment(points, components)
    agreement = pairwise_agreement(points, assignment, region)
    lines = [
        f"probe points: {len(points)}; rounds: {len(series[0])}",
        f"recovered areas (size >1): "
        f"{sum(1 for c in components if len(c) > 1)}   ground truth: 4",
        f"component sizes: "
        f"{sorted((len(c) for c in components), reverse=True)}",
        f"pairwise agreement with ground-truth partition: {agreement:.2f}",
    ]
    from repro.viz.heatgrid import labelgrid
    lines.append("")
    lines.append(labelgrid(
        {points[i]: area for i, area in assignment.items()},
        title="recovered surge-area map (Fig 19; letters = areas)",
    ))
    write_table("fig19_areas_sf", lines)

    meaningful = [c for c in components if len(c) > 1]
    assert 2 <= len(meaningful) <= 8
    assert agreement > 0.6
