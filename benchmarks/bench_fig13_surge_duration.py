"""Fig 13: duration of surges, with and without the jitter bug.

Three datastreams, as in the paper:

* "Feb"   — client stream before the bug (jitter off): durations follow
            the 5-minute stair-step, ~90 % multiples of 5 min;
* "April API" — REST stream (never jittered): same stair-step;
* "April client" — bug active: ~40 % of surges now last under a minute.
"""

from _shared import write_table
from repro.marketplace.types import CarType
from repro.analysis.surge_stats import (
    stair_step_fraction,
    surge_episodes,
)
from repro.analysis.timeseries import cdf_at


def episode_durations(log):
    durations = []
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        durations.extend(
            e.duration_s for e in surge_episodes(series)
        )
    return durations


def api_style_durations(log):
    """Durations from the jitter-free clock series (the API view)."""
    from repro.analysis.surge_stats import interval_multipliers

    durations = []
    for cid in log.client_ids:
        clock = interval_multipliers(
            log.multiplier_series(cid, CarType.UBERX)
        )
        run = 0
        for idx in sorted(clock):
            if clock[idx] > 1.0:
                run += 1
            elif run:
                durations.append(run * 300.0)
                run = 0
        if run:
            durations.append(run * 300.0)
    return durations


def test_fig13_surge_duration(
    mhtn_jitter_campaign, mhtn_clean_campaign, benchmark
):
    april_client = benchmark(episode_durations, mhtn_jitter_campaign)
    feb_client = episode_durations(mhtn_clean_campaign)
    april_api = api_style_durations(mhtn_jitter_campaign)

    assert april_client and feb_client and april_api

    lines = ["stream        n     <1min   <5min   <10min   <20min"]
    for name, durations in (
        ("feb client", feb_client),
        ("april api", april_api),
        ("april client", april_client),
    ):
        lines.append(
            f"{name:12s}  {len(durations):4d}   "
            f"{100 * cdf_at(durations, 59.0):5.0f}%  "
            f"{100 * cdf_at(durations, 301.0):5.0f}%  "
            f"{100 * cdf_at(durations, 601.0):6.0f}%  "
            f"{100 * cdf_at(durations, 1201.0):6.0f}%"
        )
    from repro.analysis.surge_stats import SurgeEpisode
    feb_eps = [SurgeEpisode(0.0, d) for d in feb_client]
    stair = stair_step_fraction(feb_eps, tolerance_s=35.0)
    lines += [
        f"feb stair-step fraction (multiples of 5 min): {stair:.2f} "
        "(paper: 0.9)",
        f"april client sub-minute fraction: "
        f"{cdf_at(april_client, 59.0):.2f} (paper: 0.4)",
    ]
    write_table("fig13_surge_duration", lines)

    # Without jitter, durations quantize to the 5-minute clock.
    assert stair > 0.7
    assert cdf_at(feb_client, 59.0) < 0.15
    # With jitter, a meaningful share of "surges" are sub-minute
    # fragments (the paper saw 40% at its — unknown — bug rate; our
    # injected rate of 0.12/interval/client is chosen so Fig 17's
    # mostly-single-client property holds at the same time).
    assert cdf_at(april_client, 59.0) > 0.05
    # Most surges are short in every stream (paper: <10 % exceed 20 min).
    assert cdf_at(april_api, 1201.0) > 0.6
