"""Fig 11: distribution of EWTs for UberX in both cities.

The paper: 87 % of waits are <= 4 minutes; averages near 3 minutes in
both cities; rare tail instances reach tens of minutes.
"""

import statistics

from _shared import write_table
from repro.marketplace.types import CarType
from repro.analysis.timeseries import cdf_at


def collect_ewts(log):
    values = []
    for record in log.rounds:
        for (_, ct), sample in record.samples.items():
            if ct is CarType.UBERX and sample.ewt_minutes is not None:
                values.append(sample.ewt_minutes)
    return values


def test_fig11_ewt_cdf(mhtn_campaign, sf_campaign, benchmark):
    mhtn = benchmark(collect_ewts, mhtn_campaign)
    sf = collect_ewts(sf_campaign)

    lines = ["ewt_minutes   cdf_manhattan   cdf_sf"]
    for threshold in (1, 2, 3, 4, 6, 8, 16, 32):
        lines.append(
            f"{threshold:10d}    {100 * cdf_at(mhtn, threshold):10.1f}%"
            f"   {100 * cdf_at(sf, threshold):6.1f}%"
        )
    lines += [
        f"mean: manhattan {statistics.mean(mhtn):.2f} min, "
        f"sf {statistics.mean(sf):.2f} min  (paper: 3.0 / 3.1)",
        f"max:  manhattan {max(mhtn):.1f} min, sf {max(sf):.1f} min "
        "(paper max: 43)",
        f"P(<=4 min): manhattan {cdf_at(mhtn, 4.0):.2f}, "
        f"sf {cdf_at(sf, 4.0):.2f}  (paper: 0.87 combined)",
    ]
    write_table("fig11_ewt_cdf", lines)

    # Expedient service in both cities.
    assert 1.5 <= statistics.mean(mhtn) <= 5.0
    assert 1.5 <= statistics.mean(sf) <= 5.0
    assert cdf_at(mhtn, 4.0) > 0.7
    assert cdf_at(sf, 4.0) > 0.7
    # Nobody waits zero minutes (app floor).
    assert min(mhtn) >= 1.0 and min(sf) >= 1.0
