"""Engine/ping throughput across the scalar/vector × brute/index ×
batched/per-client × parallel/serial × sharded/serial-state matrix.

The engine has five independent performance flags, all of which must
only ever change speed, never behaviour:

* ``use_spatial_index`` (PR 1) — grid indexes behind the k-nearest and
  point→area queries, replacing the seed's linear scans;
* ``use_vectorized_step`` (PR 2) — numpy structure-of-arrays fleet
  stepping (:mod:`repro.marketplace.fleet_array`), replacing per-object
  driver stepping; nearest-k queries are then served straight off the
  arrays, so the per-driver PointIndex is not maintained in this mode;
* ``use_batched_ping`` (PR 4) — whole ping rounds answered in one
  vectorized pass (``PingEndpoint.serve_round`` over
  ``FleetArray.round_nearest``): one distance matrix per (fleet, car
  type) against every ping location, shared top-k/EWT extraction and
  surge-area lookups, per-account jitter resolved once per round.  Only
  takes effect on the vectorized step path.
* ``use_parallel_ping`` (PR 5) — the batched pass's distance kernels
  sharded per (car type, location block) onto a worker thread pool
  (:mod:`repro.parallel.sharding`; the kernels release the GIL) and
  merged back in serial order.  Only takes effect on top of the batched
  vectorized path; with ``parallel_workers`` unset it auto-sizes to
  ``min(4, cpu_count)`` and stays serial on single-core machines.
* ``use_sharded_state`` (PR 7) — the *tick's own state* partitioned per
  spatial grid block (:mod:`repro.parallel.partition` +
  ``ShardedFleetState``): the movement kernel and the observe census
  run per stripe over disjoint rows of the shared fleet arrays, merged
  serially in stripe order.  Only takes effect on the vectorized step
  path; with ``state_shards`` unset it auto-sizes to
  ``min(4, cpu_count)`` and stays serial on single-core machines.

The per-shard-count scaling leg times the bare engine tick under
``state_shards`` in ``STATE_SHARD_COUNTS`` (1 = the serial reference) —
the curve behind the ROADMAP item-2 claim that spatial partitioning,
not just round serving, scales with cores.

The ``sharded_executor`` leg is the process-executor headline: a
~100k-driver Manhattan metro (306x the paper-era fleet) ticked three
ways — serial, stripes on the thread pool, stripes in shared-memory
worker processes (``shard_executor="process"``, the path that escapes
the GIL entirely; :mod:`repro.parallel.shm`).  The
``process_vs_serial_engine_ticks`` floor is enforced on >= 4-core
machines only; single-core hosts record the numbers unenforced.

A separate sweep leg times the process-pool campaign orchestrator
(:func:`repro.parallel.run_sweep`): four independent campaigns (two
seeds × two cities) sequentially vs in parallel, with a truth-digest
cross-check that the two orders produce bit-identical campaigns.

This bench times the interesting legs on a 6-hour Manhattan scenario
where every 5-second engine tick is followed by a full ping round (each
fleet client pings every car type, exactly as `pingClient` was driven in
§3.2; rounds are served through ``serve_round``, which the per-client
legs answer with N independent pings).  Metrics per leg:

* ``engine_ticks_per_s``  — bare simulation ticks (no clients attached);
* ``ping_rounds_per_s``   — full fleet ping rounds served;
* ``campaign_ticks_per_s``— tick + ping round, the end-to-end rate that
  bounds campaign length.

Headline speedups reported:

* ``sharded_2shard_vs_serial_engine_ticks`` — the PR 7 headline: the
  2-stripe sharded tick vs the serial-state reference, engine ticks
  only (target: >= 1.4x on >= 2 cores);
* ``parallel_vs_serial_ping_rounds`` — the PR 5 headline: sharded round
  serving with 4 forced workers vs the single-thread batched path
  (target: >= 1.3x on >= 4 cores);
* ``sweep_parallel_vs_sequential`` — the 4-campaign orchestrator sweep
  vs running the same specs sequentially (target: >= 2x on >= 4 cores);
* ``batched_vs_perclient_ping_rounds`` — the PR 4 headline: batched
  round serving vs the per-client vectorized path (target: >= 1.5x);
* ``vector_vs_scalar_engine_ticks`` — vectorized vs scalar stepping,
  both with their best query path (target: >= 2x);
* ``defaults_vs_seed_campaign`` — all flags on vs all off (>= 4x);
* ``indexed_vs_brute_scalar_campaign`` — the PR 1 comparison, retained.

Each target is recorded in the output JSON under ``thresholds`` with an
``enforced`` bit (thread/process speedups are only enforced on machines
with >= 4 cores; single-core CI still records the numbers).

The same-seed equivalence check at the end re-runs a small scenario in
all thirty-two flag combinations and requires bit-identical
``IntervalTruth`` logs, trip ledgers, ping replies, and engine RNG
state — the flags must never change behaviour.

Run directly (writes ``benchmarks/out/BENCH_perf_engine.json``)::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--quick]

``--quick`` shrinks the fleet and tick counts for CI; the marked tier-1
test ``tests/test_perf_regression.py`` drives that mode.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).parent))

from repro.api.ping import PingEndpoint
from repro.marketplace.config import (
    CityConfig,
    ParallelParams,
    manhattan_config,
)
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.placement import place_clients
from repro.parallel.orchestrator import CampaignSpec, run_sweep

OUT_PATH = Path(__file__).parent / "out" / "BENCH_perf_engine.json"
#: CI also wants the result at the repo root (uploaded as the run's
#: headline artifact); ``main`` writes both copies.
ROOT_OUT_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_perf_engine.json"
)

#: The scenario the full bench samples from: six simulated hours of
#: midtown Manhattan at 20x the paper-era fleet (6 540 drivers), with
#: demand scaled to match.  Measuring every one of its 4 320 ticks in
#: both modes would take well over an hour, so throughput is measured
#: over a warm slice and the full-scenario wall time is extrapolated.
SCENARIO_HOURS = 6.0
TICK_S = 5.0
FULL_SCALE = 20
FULL_TICKS = 120
QUICK_SCALE = 4
QUICK_TICKS = 10
WARMUP_TICKS = 5


def scenario_config(scale: int) -> CityConfig:
    """Manhattan with fleet and demand scaled *scale*-fold."""
    cfg = manhattan_config()
    return dataclasses.replace(
        cfg,
        fleet={ct: n * scale for ct, n in cfg.fleet.items()},
        peak_requests_per_hour=cfg.peak_requests_per_hour * scale,
    )


#: Worker threads the forced-parallel leg and the sweep use; matches
#: the ">= 4 workers / >= 4 cores" acceptance targets.
PARALLEL_WORKERS = 4

#: The timed engine modes, keyed by the flag combination they exercise.
#: ``vector_parallel`` is the default mode with ``parallel_workers``
#: pinned to 4 (auto-sizing would fall back to serial on small CI
#: boxes, which is the right default but not an interesting A/B);
#: ``vector_indexed`` turns only ``use_parallel_ping`` off — the PR 5
#: A/B pair and the PR 4 configuration; ``vector_perclient`` turns
#: ``use_batched_ping`` off too — the PR 4 A/B pair;
#: ``scalar_indexed`` is the PR 1 configuration; ``scalar_brute`` is
#: the seed behaviour.  (``use_batched_ping``/``use_parallel_ping`` are
#: moot on the scalar legs: with no FleetArray the round query declines
#: and ``serve_round`` serves per client either way.)
#: Shard counts the per-shard-count scaling leg times (1 = the serial
#: reference path: ``state_shards=1`` builds no sharded facade at all).
STATE_SHARD_COUNTS = (1, 2, 4)

LEGS: Dict[str, Dict[str, object]] = {
    "vector_parallel": {
        "use_spatial_index": True, "use_vectorized_step": True,
        "use_batched_ping": True, "use_parallel_ping": True,
        "parallel_workers": PARALLEL_WORKERS,
        "use_sharded_state": True, "state_shards": PARALLEL_WORKERS,
    },
    "vector_indexed": {
        "use_spatial_index": True, "use_vectorized_step": True,
        "use_batched_ping": True, "use_parallel_ping": False,
        "use_sharded_state": False,
    },
    "vector_perclient": {
        "use_spatial_index": True, "use_vectorized_step": True,
        "use_batched_ping": False, "use_parallel_ping": False,
        "use_sharded_state": False,
    },
    "scalar_indexed": {
        "use_spatial_index": True, "use_vectorized_step": False,
        "use_batched_ping": True, "use_parallel_ping": False,
        "use_sharded_state": False,
    },
    "vector_brute": {
        "use_spatial_index": False, "use_vectorized_step": True,
        "use_batched_ping": True, "use_parallel_ping": False,
        "use_sharded_state": False,
    },
    "scalar_brute": {
        "use_spatial_index": False, "use_vectorized_step": False,
        "use_batched_ping": False, "use_parallel_ping": False,
        "use_sharded_state": False,
    },
}
# The per-shard-count scaling legs: the PR 4/5 serving configuration
# held fixed, only the state-shard count varying, so the
# engine_ticks_per_s column isolates how the tick itself scales.
for _shards in STATE_SHARD_COUNTS:
    LEGS[f"sharded_state_{_shards}"] = {
        "use_spatial_index": True, "use_vectorized_step": True,
        "use_batched_ping": True, "use_parallel_ping": False,
        "use_sharded_state": True, "state_shards": _shards,
    }

#: The process-executor metro leg: ~100k drivers (Manhattan seeds 327
#: drivers per scale unit, so 306x = 100 062) ticked bare under each
#: executor.  Quick mode shrinks the metro but still forces the pool
#: paths by dropping the shard-row floor to 1.
EXECUTOR_SCALE_FULL = 306
EXECUTOR_SCALE_QUICK = 4
EXECUTOR_TICKS_FULL = 40
EXECUTOR_TICKS_QUICK = 6
EXECUTOR_SHARDS = 4

#: Every flag combination, for the equivalence check (thirty-two
#: combos).  Sharded combos are run with ``state_shards`` forced to 3
#: (see ``check_equivalence``); the {1, 2, 4, 7} shard-count sweep
#: lives in tests/test_sharded_state.py.
ALL_COMBOS: List[Dict[str, bool]] = [
    {
        "use_spatial_index": bool(spatial),
        "use_vectorized_step": bool(vec),
        "use_batched_ping": bool(batched),
        "use_parallel_ping": bool(parallel),
        "use_sharded_state": bool(sharded),
    }
    for spatial in (True, False)
    for vec in (True, False)
    for batched in (True, False)
    for parallel in (True, False)
    for sharded in (True, False)
]


def _timed_campaign(
    flags: Dict[str, object],
    scale: int,
    ticks: int,
    seed: int,
    max_clients: Optional[int] = None,
) -> Dict[str, float]:
    """Wall-clock the tick and ping phases of a campaign slice."""
    if ticks <= 0:
        raise ValueError("ticks must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    cfg = scenario_config(scale)
    engine = MarketplaceEngine(cfg, seed=seed, **flags)
    endpoint = PingEndpoint(engine)
    clients = list(place_clients(cfg.region, max_clients=max_clients))
    requests = [
        (f"bench{i}", loc, None) for i, loc in enumerate(clients)
    ]
    for _ in range(WARMUP_TICKS):
        engine.tick()
        endpoint.serve_round(requests)
    tick_s = ping_s = 0.0
    for _ in range(ticks):
        t0 = time.perf_counter()
        engine.tick()
        tick_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        endpoint.serve_round(requests)
        ping_s += time.perf_counter() - t0
    total = tick_s + ping_s
    scenario_ticks = SCENARIO_HOURS * 3600.0 / TICK_S
    engine.close()
    return {
        "fleet_size": sum(cfg.fleet.values()),
        "cpu_count": os.cpu_count() or 1,
        "clients": len(clients),
        "ticks_measured": ticks,
        "tick_wall_s": tick_s,
        "ping_wall_s": ping_s,
        "engine_ticks_per_s": ticks / tick_s if tick_s else float("inf"),
        "ping_rounds_per_s": ticks / ping_s if ping_s else float("inf"),
        "campaign_ticks_per_s": ticks / total if total else float("inf"),
        "scenario_hours": SCENARIO_HOURS,
        "est_full_scenario_wall_s": scenario_ticks * total / ticks,
    }


def _timed_executor_ticks(
    scale: int, ticks: int, seed: int, mode: str
) -> Dict[str, float]:
    """Bare engine ticks/s for one executor mode of the metro leg.

    ``serial`` is the unsharded reference; ``thread``/``process`` force
    ``EXECUTOR_SHARDS`` stripes through the named executor with the
    shard-row floor dropped to 1 so the pool path runs at every scale.
    """
    cfg = scenario_config(scale)
    kwargs: Dict[str, object] = {
        "use_spatial_index": True, "use_vectorized_step": True,
        "use_batched_ping": True, "use_parallel_ping": False,
    }
    if mode == "serial":
        kwargs["use_sharded_state"] = False
    else:
        cfg = dataclasses.replace(
            cfg, parallel=ParallelParams(min_shard_rows=1)
        )
        kwargs.update(
            use_sharded_state=True,
            state_shards=EXECUTOR_SHARDS,
            shard_executor=mode,
        )
    engine = MarketplaceEngine(cfg, seed=seed, **kwargs)
    for _ in range(WARMUP_TICKS):
        engine.tick()
    t0 = time.perf_counter()
    for _ in range(ticks):
        engine.tick()
    wall = time.perf_counter() - t0
    drivers = sum(cfg.fleet.values())
    engine.close()
    return {
        "drivers": float(drivers),
        "engine_ticks_per_s": ticks / wall if wall else float("inf"),
    }


def _timed_executor_leg(quick: bool, seed: int) -> Dict[str, object]:
    """The tentpole A/B/C: serial vs thread vs process engine ticks on
    the big metro.  One warm engine per mode, closed after timing so no
    shared segment outlives its leg."""
    scale = EXECUTOR_SCALE_QUICK if quick else EXECUTOR_SCALE_FULL
    ticks = EXECUTOR_TICKS_QUICK if quick else EXECUTOR_TICKS_FULL
    modes = {
        mode: _timed_executor_ticks(scale, ticks, seed, mode)
        for mode in ("serial", "thread", "process")
    }
    rate = {m: r["engine_ticks_per_s"] for m, r in modes.items()}
    return {
        "scale": scale,
        "drivers": modes["serial"]["drivers"],
        "shards": EXECUTOR_SHARDS,
        "ticks_measured": ticks,
        "engine_ticks_per_s": rate,
        "speedup": {
            "thread_vs_serial": rate["thread"] / rate["serial"],
            "process_vs_serial": rate["process"] / rate["serial"],
            "process_vs_thread": rate["process"] / rate["thread"],
        },
    }


def check_equivalence(
    scale: int = 1, ticks: int = 60, seed: int = 11
) -> bool:
    """Same seed, all thirty-two flag combos: truth, trips, ping
    replies, and engine RNG state must be bit-identical across every
    leg.

    Rounds are served through ``serve_round`` so the batched and
    per-client paths are compared reply-for-reply; one extra direct
    ``ping`` per round pins the batch path to the single-ping entry
    point as well.  Parallel combos force three workers and sharded
    combos three state stripes, both with one-element/one-row shard
    floors, so the threaded merge paths actually run at this toy scale
    (auto-sizing would serve such small work inline).
    """
    def run(flags: Dict[str, bool], executor: Optional[str] = None):
        cfg = scenario_config(scale)
        kwargs: Dict[str, object] = dict(flags)
        if flags.get("use_parallel_ping") or flags.get("use_sharded_state"):
            cfg = dataclasses.replace(
                cfg,
                parallel=ParallelParams(
                    min_shard_elements=1, min_shard_rows=1
                ),
            )
        if flags.get("use_parallel_ping"):
            kwargs["parallel_workers"] = 3
        if flags.get("use_sharded_state"):
            kwargs["state_shards"] = 3
        if executor is not None:
            kwargs["shard_executor"] = executor
        engine = MarketplaceEngine(cfg, seed=seed, **kwargs)
        endpoint = PingEndpoint(engine)
        clients = list(place_clients(cfg.region, max_clients=8))
        requests = [(f"eq{i}", loc, None) for i, loc in enumerate(clients)]
        replies = []
        for t in range(ticks):
            engine.tick()
            if t % 5 == 0:
                replies.extend(endpoint.serve_round(requests))
                replies.append(endpoint.ping("eq0", clients[0]))
        result = (
            engine.truth,
            engine.completed_trips,
            replies,
            engine.rng.getstate(),
        )
        engine.close()
        return result

    reference = run(ALL_COMBOS[-1])  # all flags off: seed behaviour
    if not all(run(flags) == reference for flags in ALL_COMBOS[:-1]):
        return False
    # The thirty-third run: the all-flags-on combo again but with the
    # stripes in shared-memory worker processes.  ``shard_executor`` is
    # a string knob outside the use_* matrix, yet bound by the same
    # contract — the executor must never reach the bits.
    return run(ALL_COMBOS[0], executor="process") == reference


def _timed_sweep(quick: bool, seed: int) -> Dict[str, object]:
    """Time the orchestrator: 4 campaigns sequential vs parallel.

    Two seeds × two cities — the multi-seed dual-city shape the paper's
    §4 campaigns take.  The parallel run re-executes the *same specs*,
    so the truth digests double as a determinism cross-check: process
    scheduling must never reach a campaign's bits.  On single-core
    machines (``jobs`` resolves to 1) the parallel run is skipped and
    the speedup reported as 1.0/unenforced.
    """
    hours = 0.05 if quick else 0.5
    max_clients = 6 if quick else 24
    specs = [
        CampaignSpec(
            key=f"{city}-s{s}",
            city=city,
            seed=s,
            hours=hours,
            max_clients=max_clients,
        )
        for city in ("manhattan", "sf")
        for s in (seed, seed + 1)
    ]
    jobs = min(PARALLEL_WORKERS, os.cpu_count() or 1)
    t0 = time.perf_counter()
    sequential = run_sweep(specs, jobs=1)
    sequential_s = time.perf_counter() - t0
    result: Dict[str, object] = {
        "campaigns": len(specs),
        "jobs": jobs,
        "sequential_wall_s": sequential_s,
        "all_ok": all(o.ok for o in sequential),
        "digests_match": True,
    }
    if jobs > 1:
        t0 = time.perf_counter()
        parallel = run_sweep(specs, jobs=jobs)
        parallel_s = time.perf_counter() - t0
        result["parallel_wall_s"] = parallel_s
        result["all_ok"] = bool(
            result["all_ok"] and all(o.ok for o in parallel)
        )
        result["digests_match"] = [
            o.truth_digest for o in sequential
        ] == [o.truth_digest for o in parallel]
        result["speedup"] = (
            sequential_s / parallel_s if parallel_s else float("inf")
        )
    else:
        result["parallel_wall_s"] = None
        result["speedup"] = 1.0
    return result


def run_bench(
    quick: bool = False,
    scale: Optional[int] = None,
    ticks: Optional[int] = None,
    seed: int = 3,
) -> Dict[str, object]:
    scale = scale if scale is not None else (
        QUICK_SCALE if quick else FULL_SCALE
    )
    ticks = ticks if ticks is not None else (
        QUICK_TICKS if quick else FULL_TICKS
    )
    max_clients = 200 if quick else None
    legs = {
        name: _timed_campaign(flags, scale, ticks, seed, max_clients)
        for name, flags in LEGS.items()
    }
    equivalent = check_equivalence(
        scale=1, ticks=30 if quick else 60, seed=seed + 8
    )
    sweep = _timed_sweep(quick, seed + 100)
    executor_leg = _timed_executor_leg(quick, seed + 40)
    vec, sca = legs["vector_indexed"], legs["scalar_indexed"]
    par = legs["vector_parallel"]
    perclient = legs["vector_perclient"]
    seed_leg = legs["scalar_brute"]
    cores = os.cpu_count() or 1
    # The per-shard-count scaling curve: bare engine ticks/s by
    # state-shard count, serving configuration held fixed.
    sharded_scaling = {
        str(shards): legs[f"sharded_state_{shards}"]["engine_ticks_per_s"]
        for shards in STATE_SHARD_COUNTS
    }
    speedup = {
        # The PR 7 headline: the 2-stripe sharded tick vs the
        # serial-state reference (target: >= 1.4x on >= 2 cores).
        "sharded_2shard_vs_serial_engine_ticks": (
            legs["sharded_state_2"]["engine_ticks_per_s"]
            / legs["sharded_state_1"]["engine_ticks_per_s"]
        ),
        # The process-executor headline: the big-metro tick in
        # shared-memory worker processes vs serial (target: >= 1.3x on
        # >= 4 cores — below that fork+pickle overhead wins).
        "process_vs_serial_engine_ticks": (
            executor_leg["speedup"]["process_vs_serial"]
        ),
        # The PR 5 headline: sharded round serving (4 forced workers)
        # vs the single-thread batched path (target: >= 1.3x, >=4 cores).
        "parallel_vs_serial_ping_rounds": (
            par["ping_rounds_per_s"] / vec["ping_rounds_per_s"]
        ),
        # The orchestrator headline: 4-campaign sweep, parallel vs
        # sequential (target: >= 2x on >= 4 cores).
        "sweep_parallel_vs_sequential": sweep["speedup"],
        # The PR 4 headline: batched round serving vs the per-client
        # vectorized path (target: >= 1.5x).
        "batched_vs_perclient_ping_rounds": (
            vec["ping_rounds_per_s"] / perclient["ping_rounds_per_s"]
        ),
        # The PR 2 headline: vectorized stepping vs the PR 1 scalar
        # path, engine ticks only (target: >= 2x).
        "vector_vs_scalar_engine_ticks": (
            vec["engine_ticks_per_s"] / sca["engine_ticks_per_s"]
        ),
        # All flags on vs the seed's scalar linear-scan engine.
        "defaults_vs_seed_campaign": (
            vec["campaign_ticks_per_s"] / seed_leg["campaign_ticks_per_s"]
        ),
        "defaults_vs_seed_engine_ticks": (
            vec["engine_ticks_per_s"] / seed_leg["engine_ticks_per_s"]
        ),
        # The PR 1 comparison, retained for continuity.
        "indexed_vs_brute_scalar_campaign": (
            sca["campaign_ticks_per_s"] / seed_leg["campaign_ticks_per_s"]
        ),
    }
    # Regression thresholds, recorded alongside the numbers they bound.
    # Thread/process speedups are physical claims about multi-core
    # machines; on smaller boxes (and in --quick mode, whose tiny slices
    # are noise-dominated) they are recorded but not enforced.
    multicore = cores >= PARALLEL_WORKERS
    thresholds = {
        "sharded_2shard_vs_serial_engine_ticks": {
            "min": 1.4, "enforced": cores >= 2 and not quick,
            "shards": 2,
        },
        "process_vs_serial_engine_ticks": {
            "min": 1.3, "enforced": multicore and not quick,
            "shards": EXECUTOR_SHARDS,
            "drivers": executor_leg["drivers"],
        },
        "parallel_vs_serial_ping_rounds": {
            "min": 1.3, "enforced": multicore and not quick,
            "workers": PARALLEL_WORKERS,
        },
        "sweep_parallel_vs_sequential": {
            "min": 2.0, "enforced": multicore and not quick,
            "jobs": sweep["jobs"],
        },
        "batched_vs_perclient_ping_rounds": {
            "min": 1.5, "enforced": not quick,
        },
        "vector_vs_scalar_engine_ticks": {
            "min": 2.0, "enforced": not quick,
        },
        "defaults_vs_seed_campaign": {
            "min": 4.0, "enforced": not quick,
        },
    }
    return {
        "bench": "perf_engine",
        "mode": "quick" if quick else "full",
        "cpu_count": cores,
        "scenario": (
            f"{SCENARIO_HOURS:g}h Manhattan x{scale} "
            f"({vec['fleet_size']} drivers, "
            f"{vec['clients']} clients, {TICK_S:g}s ticks)"
        ),
        "legs": legs,
        "sweep": sweep,
        "sharded_scaling": sharded_scaling,
        "sharded_executor": executor_leg,
        "speedup": speedup,
        "thresholds": thresholds,
        "truth_equivalent": equivalent,
        "sweep_deterministic": sweep["digests_match"],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small fleet / few ticks, for CI regression checks",
    )
    parser.add_argument("--scale", type=int, default=None,
                        help="fleet multiplier override")
    parser.add_argument("--ticks", type=int, default=None,
                        help="measured ticks override")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    if args.ticks is not None and args.ticks <= 0:
        parser.error("--ticks must be positive")
    if args.scale is not None and args.scale <= 0:
        parser.error("--scale must be positive")

    result = run_bench(
        quick=args.quick, scale=args.scale, ticks=args.ticks,
        seed=args.seed,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(result, indent=2) + "\n"
    args.out.write_text(blob)
    ROOT_OUT_PATH.write_text(blob)

    lines: List[str] = [f"scenario: {result['scenario']}"]
    legs = result["legs"]
    for key in ("engine_ticks_per_s", "ping_rounds_per_s",
                "campaign_ticks_per_s"):
        lines.append(
            f"{key:22s} "
            + "  ".join(
                f"{name} {legs[name][key]:8.2f}" for name in LEGS
            )
        )
    lines.append(
        "sharded scaling (engine ticks/s by state_shards): "
        + "  ".join(
            f"{shards}: {rate:8.2f}"
            for shards, rate in result["sharded_scaling"].items()
        )
    )
    executor_leg = result["sharded_executor"]
    lines.append(
        f"executor metro ({executor_leg['drivers']:.0f} drivers, "
        f"{executor_leg['shards']} shards, engine ticks/s): "
        + "  ".join(
            f"{mode}: {rate:8.2f}"
            for mode, rate in executor_leg["engine_ticks_per_s"].items()
        )
    )
    thresholds = result["thresholds"]
    threshold_failures: List[str] = []
    for name, value in result["speedup"].items():
        bound = thresholds.get(name)
        note = ""
        if bound is not None:
            ok = value >= bound["min"]
            if not ok and bound["enforced"]:
                threshold_failures.append(name)
            note = (
                f"  (min {bound['min']:g}x"
                + ("" if bound["enforced"] else ", unenforced")
                + ("" if ok else ", BELOW")
                + ")"
            )
        lines.append(f"{name:34s} {value:5.2f}x{note}")
    sweep = result["sweep"]
    lines.append(
        f"sweep: {sweep['campaigns']} campaigns, jobs={sweep['jobs']}, "
        f"sequential {sweep['sequential_wall_s']:.2f}s"
        + (
            f", parallel {sweep['parallel_wall_s']:.2f}s"
            if sweep["parallel_wall_s"] is not None
            else ", parallel skipped (single core)"
        )
    )
    lines.append(
        "truth equivalent: "
        + ("yes" if result["truth_equivalent"] else "NO — BUG")
    )
    lines.append(
        "sweep deterministic: "
        + ("yes" if result["sweep_deterministic"] else "NO — BUG")
    )
    if threshold_failures:
        lines.append(
            "ENFORCED THRESHOLDS BELOW MINIMUM: "
            + ", ".join(threshold_failures)
        )
    print("\n".join(lines))
    print(f"wrote {args.out} (and {ROOT_OUT_PATH})")
    ok = (
        result["truth_equivalent"]
        and result["sweep_deterministic"]
        and not threshold_failures
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
