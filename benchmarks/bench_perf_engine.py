"""Engine/ping throughput across the scalar/vector × brute/index ×
batched/per-client matrix.

The engine has three independent performance flags, all of which must
only ever change speed, never behaviour:

* ``use_spatial_index`` (PR 1) — grid indexes behind the k-nearest and
  point→area queries, replacing the seed's linear scans;
* ``use_vectorized_step`` (PR 2) — numpy structure-of-arrays fleet
  stepping (:mod:`repro.marketplace.fleet_array`), replacing per-object
  driver stepping; nearest-k queries are then served straight off the
  arrays, so the per-driver PointIndex is not maintained in this mode;
* ``use_batched_ping`` (PR 4) — whole ping rounds answered in one
  vectorized pass (``PingEndpoint.serve_round`` over
  ``FleetArray.round_nearest``): one distance matrix per (fleet, car
  type) against every ping location, shared top-k/EWT extraction and
  surge-area lookups, per-account jitter resolved once per round.  Only
  takes effect on the vectorized step path.

This bench times the interesting legs on a 6-hour Manhattan scenario
where every 5-second engine tick is followed by a full ping round (each
fleet client pings every car type, exactly as `pingClient` was driven in
§3.2; rounds are served through ``serve_round``, which the per-client
legs answer with N independent pings).  Metrics per leg:

* ``engine_ticks_per_s``  — bare simulation ticks (no clients attached);
* ``ping_rounds_per_s``   — full fleet ping rounds served;
* ``campaign_ticks_per_s``— tick + ping round, the end-to-end rate that
  bounds campaign length.

Headline speedups reported:

* ``batched_vs_perclient_ping_rounds`` — the PR 4 headline: batched
  round serving vs the per-client vectorized path (target: >= 1.5x);
* ``vector_vs_scalar_engine_ticks`` — vectorized vs scalar stepping,
  both with their best query path (target: >= 2x);
* ``defaults_vs_seed_campaign`` — all flags on vs all off;
* ``indexed_vs_brute_scalar_campaign`` — the PR 1 comparison, retained.

The same-seed equivalence check at the end re-runs a small scenario in
all eight flag combinations and requires bit-identical
``IntervalTruth`` logs, trip ledgers, ping replies, and engine RNG
state — the flags must never change behaviour.

Run directly (writes ``benchmarks/out/BENCH_perf_engine.json``)::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--quick]

``--quick`` shrinks the fleet and tick counts for CI; the marked tier-1
test ``tests/test_perf_regression.py`` drives that mode.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).parent))

from repro.api.ping import PingEndpoint
from repro.marketplace.config import CityConfig, manhattan_config
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.placement import place_clients

OUT_PATH = Path(__file__).parent / "out" / "BENCH_perf_engine.json"

#: The scenario the full bench samples from: six simulated hours of
#: midtown Manhattan at 20x the paper-era fleet (6 540 drivers), with
#: demand scaled to match.  Measuring every one of its 4 320 ticks in
#: both modes would take well over an hour, so throughput is measured
#: over a warm slice and the full-scenario wall time is extrapolated.
SCENARIO_HOURS = 6.0
TICK_S = 5.0
FULL_SCALE = 20
FULL_TICKS = 120
QUICK_SCALE = 4
QUICK_TICKS = 10
WARMUP_TICKS = 5


def scenario_config(scale: int) -> CityConfig:
    """Manhattan with fleet and demand scaled *scale*-fold."""
    cfg = manhattan_config()
    return dataclasses.replace(
        cfg,
        fleet={ct: n * scale for ct, n in cfg.fleet.items()},
        peak_requests_per_hour=cfg.peak_requests_per_hour * scale,
    )


#: The timed engine modes, keyed by the flag combination they exercise.
#: ``vector_indexed`` is the default mode (all flags on);
#: ``vector_perclient`` turns only ``use_batched_ping`` off — the PR 4
#: A/B pair; ``scalar_indexed`` is the PR 1 configuration;
#: ``scalar_brute`` is the seed behaviour.  (``use_batched_ping`` is
#: moot on the scalar legs: with no FleetArray the round query declines
#: and ``serve_round`` serves per client either way.)
LEGS: Dict[str, Dict[str, bool]] = {
    "vector_indexed": {
        "use_spatial_index": True, "use_vectorized_step": True,
        "use_batched_ping": True,
    },
    "vector_perclient": {
        "use_spatial_index": True, "use_vectorized_step": True,
        "use_batched_ping": False,
    },
    "scalar_indexed": {
        "use_spatial_index": True, "use_vectorized_step": False,
        "use_batched_ping": True,
    },
    "vector_brute": {
        "use_spatial_index": False, "use_vectorized_step": True,
        "use_batched_ping": True,
    },
    "scalar_brute": {
        "use_spatial_index": False, "use_vectorized_step": False,
        "use_batched_ping": False,
    },
}

#: Every flag combination, for the equivalence check.
ALL_COMBOS: List[Dict[str, bool]] = [
    {
        "use_spatial_index": bool(spatial),
        "use_vectorized_step": bool(vec),
        "use_batched_ping": bool(batched),
    }
    for spatial in (True, False)
    for vec in (True, False)
    for batched in (True, False)
]


def _timed_campaign(
    flags: Dict[str, bool],
    scale: int,
    ticks: int,
    seed: int,
    max_clients: Optional[int] = None,
) -> Dict[str, float]:
    """Wall-clock the tick and ping phases of a campaign slice."""
    if ticks <= 0:
        raise ValueError("ticks must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    cfg = scenario_config(scale)
    engine = MarketplaceEngine(cfg, seed=seed, **flags)
    endpoint = PingEndpoint(engine)
    clients = list(place_clients(cfg.region, max_clients=max_clients))
    requests = [
        (f"bench{i}", loc, None) for i, loc in enumerate(clients)
    ]
    for _ in range(WARMUP_TICKS):
        engine.tick()
        endpoint.serve_round(requests)
    tick_s = ping_s = 0.0
    for _ in range(ticks):
        t0 = time.perf_counter()
        engine.tick()
        tick_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        endpoint.serve_round(requests)
        ping_s += time.perf_counter() - t0
    total = tick_s + ping_s
    scenario_ticks = SCENARIO_HOURS * 3600.0 / TICK_S
    return {
        "fleet_size": sum(cfg.fleet.values()),
        "clients": len(clients),
        "ticks_measured": ticks,
        "tick_wall_s": tick_s,
        "ping_wall_s": ping_s,
        "engine_ticks_per_s": ticks / tick_s if tick_s else float("inf"),
        "ping_rounds_per_s": ticks / ping_s if ping_s else float("inf"),
        "campaign_ticks_per_s": ticks / total if total else float("inf"),
        "scenario_hours": SCENARIO_HOURS,
        "est_full_scenario_wall_s": scenario_ticks * total / ticks,
    }


def check_equivalence(
    scale: int = 1, ticks: int = 60, seed: int = 11
) -> bool:
    """Same seed, all eight flag combos: truth, trips, ping replies,
    and engine RNG state must be bit-identical across every leg.

    Rounds are served through ``serve_round`` so the batched and
    per-client paths are compared reply-for-reply; one extra direct
    ``ping`` per round pins the batch path to the single-ping entry
    point as well.
    """
    def run(flags: Dict[str, bool]):
        cfg = scenario_config(scale)
        engine = MarketplaceEngine(cfg, seed=seed, **flags)
        endpoint = PingEndpoint(engine)
        clients = list(place_clients(cfg.region, max_clients=8))
        requests = [(f"eq{i}", loc, None) for i, loc in enumerate(clients)]
        replies = []
        for t in range(ticks):
            engine.tick()
            if t % 5 == 0:
                replies.extend(endpoint.serve_round(requests))
                replies.append(endpoint.ping("eq0", clients[0]))
        return (
            engine.truth,
            engine.completed_trips,
            replies,
            engine.rng.getstate(),
        )

    reference = run(ALL_COMBOS[-1])  # all flags off: seed behaviour
    return all(run(flags) == reference for flags in ALL_COMBOS[:-1])


def run_bench(
    quick: bool = False,
    scale: Optional[int] = None,
    ticks: Optional[int] = None,
    seed: int = 3,
) -> Dict[str, object]:
    scale = scale if scale is not None else (
        QUICK_SCALE if quick else FULL_SCALE
    )
    ticks = ticks if ticks is not None else (
        QUICK_TICKS if quick else FULL_TICKS
    )
    max_clients = 200 if quick else None
    legs = {
        name: _timed_campaign(flags, scale, ticks, seed, max_clients)
        for name, flags in LEGS.items()
    }
    equivalent = check_equivalence(
        scale=1, ticks=30 if quick else 60, seed=seed + 8
    )
    vec, sca = legs["vector_indexed"], legs["scalar_indexed"]
    perclient = legs["vector_perclient"]
    seed_leg = legs["scalar_brute"]
    speedup = {
        # The PR 4 headline: batched round serving vs the per-client
        # vectorized path (target: >= 1.5x).
        "batched_vs_perclient_ping_rounds": (
            vec["ping_rounds_per_s"] / perclient["ping_rounds_per_s"]
        ),
        # The PR 2 headline: vectorized stepping vs the PR 1 scalar
        # path, engine ticks only (target: >= 2x).
        "vector_vs_scalar_engine_ticks": (
            vec["engine_ticks_per_s"] / sca["engine_ticks_per_s"]
        ),
        # All flags on vs the seed's scalar linear-scan engine.
        "defaults_vs_seed_campaign": (
            vec["campaign_ticks_per_s"] / seed_leg["campaign_ticks_per_s"]
        ),
        "defaults_vs_seed_engine_ticks": (
            vec["engine_ticks_per_s"] / seed_leg["engine_ticks_per_s"]
        ),
        # The PR 1 comparison, retained for continuity.
        "indexed_vs_brute_scalar_campaign": (
            sca["campaign_ticks_per_s"] / seed_leg["campaign_ticks_per_s"]
        ),
    }
    return {
        "bench": "perf_engine",
        "mode": "quick" if quick else "full",
        "scenario": (
            f"{SCENARIO_HOURS:g}h Manhattan x{scale} "
            f"({vec['fleet_size']} drivers, "
            f"{vec['clients']} clients, {TICK_S:g}s ticks)"
        ),
        "legs": legs,
        "speedup": speedup,
        "truth_equivalent": equivalent,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small fleet / few ticks, for CI regression checks",
    )
    parser.add_argument("--scale", type=int, default=None,
                        help="fleet multiplier override")
    parser.add_argument("--ticks", type=int, default=None,
                        help="measured ticks override")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    if args.ticks is not None and args.ticks <= 0:
        parser.error("--ticks must be positive")
    if args.scale is not None and args.scale <= 0:
        parser.error("--scale must be positive")

    result = run_bench(
        quick=args.quick, scale=args.scale, ticks=args.ticks,
        seed=args.seed,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    lines: List[str] = [f"scenario: {result['scenario']}"]
    legs = result["legs"]
    for key in ("engine_ticks_per_s", "ping_rounds_per_s",
                "campaign_ticks_per_s"):
        lines.append(
            f"{key:22s} "
            + "  ".join(
                f"{name} {legs[name][key]:8.2f}" for name in LEGS
            )
        )
    for name, value in result["speedup"].items():
        lines.append(f"{name:34s} {value:5.2f}x")
    lines.append(
        "truth equivalent: "
        + ("yes" if result["truth_equivalent"] else "NO — BUG")
    )
    print("\n".join(lines))
    print(f"wrote {args.out}")
    return 0 if result["truth_equivalent"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
