"""§5.2 takeaway: "savvy Uber passengers should wait-out surges".

Fig 13 shows most surges die within 5-10 minutes; this bench turns that
into the passenger-facing number the paper implies: how much of the
surge premium does waiting one or two intervals recover, in each city?
"""

import pytest

from _shared import city_config, per_area_clock_series, write_table
from repro.strategy.waiting import expected_premium_paid, wait_out_table


def evaluate(log, region):
    clocks = per_area_clock_series(log, region)
    merged = []
    for area_id, clock in sorted(clocks.items()):
        merged.append((area_id, wait_out_table(clock,
                                               max_wait_intervals=3)))
    return clocks, merged


def test_waitout_strategy(mhtn_campaign, sf_campaign, benchmark):
    lines = ["city       area  wait_min  cleared  improved  "
             "mean_reduction  after"]
    recovered = {}
    for city, log in (("manhattan", mhtn_campaign), ("sf", sf_campaign)):
        region = city_config(city).region
        clocks, merged = (
            benchmark.pedantic(evaluate, args=(log, region),
                               rounds=1, iterations=1)
            if city == "manhattan" else evaluate(log, region)
        )
        city_rows = 0
        for area_id, outcomes in merged:
            for o in outcomes:
                lines.append(
                    f"{city:10s} {area_id:4d}  {o.intervals_waited * 5:7d}"
                    f"  {o.fully_cleared:7.2f}  {o.improved:8.2f}"
                    f"  {o.mean_reduction:14.2f}  {o.mean_after:5.2f}"
                )
                city_rows += 1
        # Premium recovered by a 10-minute wait, averaged over areas.
        recoveries = []
        for area_id, clock in clocks.items():
            try:
                now, later = expected_premium_paid(clock, 2)
            except ValueError:
                continue
            if now > 0:
                recoveries.append(1.0 - later / now)
        if recoveries:
            recovered[city] = sum(recoveries) / len(recoveries)
            lines.append(
                f"{city}: a 10-minute wait recovers "
                f"{100 * recovered[city]:.0f}% of the surge premium"
            )
    write_table("waitout_strategy", lines)

    # Waiting must recover a substantial share of the premium — the
    # "short-lived surges" structure of Fig 13, monetized.
    assert recovered.get("manhattan", 0.0) > 0.3
    assert recovered.get("sf", 0.0) > 0.1
