"""Fig 23: how often walking to an adjacent area gets a cheaper Uber.

The paper: clients around Times Square could save 10-20 % of the time;
SF users almost never benefit (~2 % at UCSF) because its surge areas are
larger and more correlated.  We run the strategy from every measurement
client's position once per surge interval across a busy stretch.
"""

import pytest

from _shared import city_config, write_table
from repro.api.ratelimit import RateLimiter
from repro.api.rest import RestApi
from repro.marketplace.engine import MarketplaceEngine
from repro.measurement.fleet import MarketplaceWorld
from repro.measurement.placement import place_clients
from repro.strategy.avoidance import SurgeAvoider, evaluate_campaign


def run_city(city: str, warmup_hours: float, rounds: int, seed: int):
    config = city_config(city, jitter_probability=0.0)
    engine = MarketplaceEngine(config, seed=seed)
    engine.run(warmup_hours * 3600.0)
    world = MarketplaceWorld(engine)
    api = RestApi(engine, RateLimiter(limit=10_000_000))
    avoider = SurgeAvoider(api, config.region)
    origins = list(place_clients(config.region))
    results = evaluate_campaign(world, avoider, origins, rounds=rounds)
    return origins, results


@pytest.fixture(scope="session")
def runs():
    return {
        # Friday 3pm..9pm in Manhattan, morning rush in SF.
        "manhattan": run_city("manhattan", 15.0, 72, seed=55),
        "sf": run_city("sf", 6.0, 72, seed=66),
    }


def save_rates(results):
    return {
        i: sum(1 for o in outcomes if o.saved) / len(outcomes)
        for i, outcomes in results.items()
    }


def test_fig23_avoidance_rate(runs, benchmark):
    benchmark(save_rates, runs["manhattan"][1])
    lines = ["city        clients  best_client_rate  mean_rate  "
             "clients_with_any_savings"]
    rates = {}
    for city in ("manhattan", "sf"):
        origins, results = runs[city]
        city_rates = save_rates(results)
        rates[city] = city_rates
        values = list(city_rates.values())
        lines.append(
            f"{city:10s}  {len(origins):7d}  {100 * max(values):15.1f}%"
            f"  {100 * sum(values) / len(values):8.1f}%"
            f"  {sum(1 for v in values if v > 0):3d}"
        )
    lines += [
        "paper: manhattan clients near Times Square save 10-20% of the",
        "       time; SF savings are rare (~2% at UCSF).",
    ]
    write_table("fig23_avoidance_rate", lines)

    mhtn_values = list(rates["manhattan"].values())
    sf_values = list(rates["sf"].values())
    # Somebody in Manhattan benefits a measurable fraction of the time...
    assert max(mhtn_values) > 0.05
    # ...and Manhattan beats SF (smaller, less-correlated areas).
    assert max(mhtn_values) >= max(sf_values)
