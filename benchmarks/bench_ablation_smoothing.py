"""Ablation: the paper's proposed smoothed surge updates (§5.5).

The paper suggests Uber replace oscillatory 5-minute repricing with a
weighted moving average to make prices more predictable.  We run the SF
scenario with the measured behaviour (alpha = 1.0) and the proposed
smoothing (alpha = 0.3) and compare surge volatility: the smoothed
engine must change prices less often and produce longer surges, at a
similar mean price level.
"""

import dataclasses
import statistics

import pytest

from _shared import city_config, write_table
from repro.marketplace.engine import MarketplaceEngine


def run_variant(alpha: float, hours: float = 12.0, seed: int = 5):
    config = city_config("sf", jitter_probability=0.0)
    config = dataclasses.replace(
        config, surge=dataclasses.replace(
            config.surge, smoothing_alpha=alpha
        )
    )
    engine = MarketplaceEngine(config, seed=seed)
    engine.run(5 * 3600.0)  # warm to morning
    engine.truth.clear()
    engine.run(hours * 3600.0)
    return engine.truth


def volatility(truth):
    """Per-area statistics of the published multiplier sequence."""
    changes = 0
    total = 0
    values = []
    episode_lengths = []
    area_ids = truth[0].multipliers.keys()
    for area_id in area_ids:
        series = [t.multipliers[area_id] for t in truth]
        values.extend(series)
        run = 0
        for a, b in zip(series, series[1:]):
            total += 1
            if a != b:
                changes += 1
        for m in series:
            if m > 1.0:
                run += 1
            elif run:
                episode_lengths.append(run)
                run = 0
        if run:
            episode_lengths.append(run)
    return {
        "change_rate": changes / max(total, 1),
        "mean_mult": statistics.mean(values),
        "mean_episode_intervals": (
            statistics.mean(episode_lengths) if episode_lengths else 0.0
        ),
        "episodes": len(episode_lengths),
    }


@pytest.fixture(scope="module")
def variants():
    return {
        "measured (alpha=1.0)": volatility(run_variant(1.0)),
        "smoothed (alpha=0.3)": volatility(run_variant(0.3)),
    }


def test_ablation_smoothing(variants, benchmark):
    benchmark.pedantic(lambda: volatility(run_variant(1.0, hours=2.0)),
                       rounds=1, iterations=1)
    lines = ["variant                change_rate  mean_mult  "
             "mean_episode_5min  episodes"]
    for name, stats in variants.items():
        lines.append(
            f"{name:22s} {stats['change_rate']:11.2f}  "
            f"{stats['mean_mult']:9.3f}  "
            f"{stats['mean_episode_intervals']:17.1f}  "
            f"{stats['episodes']:8d}"
        )
    write_table("ablation_smoothing", lines)

    sharp = variants["measured (alpha=1.0)"]
    smooth = variants["smoothed (alpha=0.3)"]
    # Smoothing reduces repricing churn and lengthens surges.
    assert smooth["change_rate"] < sharp["change_rate"]
    assert (
        smooth["mean_episode_intervals"]
        >= sharp["mean_episode_intervals"]
    )
    # Without materially changing the price level.
    assert abs(smooth["mean_mult"] - sharp["mean_mult"]) < 0.2
