"""Table 1: linear-regression surge forecasting — Raw / Threshold / Rush.

The paper fits three models predicting the next interval's multiplier
from the current (supply − demand), EWT, and multiplier, per surge area,
and reports average R² of 0.37-0.57 — never close to 0.9.  The negative
result is the point: public measurements cannot forecast surge, because
the operator prices on data the observer cannot see (quantity demanded
vs fulfilled demand, plus noise).
"""

import statistics

import pytest

from _shared import city_config, per_area_clock_series, write_table
from repro.marketplace.types import CarType
from repro.analysis.forecast import (
    build_dataset,
    fit_raw,
    fit_rush,
    fit_threshold,
)
from repro.analysis.supply_demand import estimate_supply_demand_by_area
from bench_fig21_xcorr_ewt import per_area_ewt


def fit_city(log, region):
    area_of = lambda p: (  # noqa: E731
        lambda a: None if a is None else a.area_id
    )(region.area_of(p))
    by_area = estimate_supply_demand_by_area(
        log, area_of, car_type=CarType.UBERX, boundary=region.boundary
    )
    area_clock = per_area_clock_series(log, region)
    ewt_by_area = per_area_ewt(log, region)
    results = {"raw": [], "threshold": [], "rush": []}
    params = {"raw": [], "threshold": [], "rush": []}
    for area_id, surge in area_clock.items():
        sd_diff = {
            e.interval_index: float(e.supply - e.demand)
            for e in by_area.get(area_id, [])[1:-1]
        }
        rows = build_dataset(surge, sd_diff,
                             ewt_by_area.get(area_id, {}))
        for name, fitter in (
            ("raw", fit_raw), ("threshold", fit_threshold),
            ("rush", fit_rush),
        ):
            try:
                fitted = fitter(rows)
            except ValueError:
                continue
            results[name].append(fitted.r2)
            params[name].append(fitted)
    return results, params


@pytest.mark.parametrize("city", ["manhattan", "sf"])
def test_tab1_forecast(city, mhtn_campaign, sf_campaign, benchmark):
    log = mhtn_campaign if city == "manhattan" else sf_campaign
    region = city_config(city).region
    results, params = benchmark.pedantic(
        fit_city, args=(log, region), rounds=1, iterations=1
    )

    lines = [f"{city}:  model      areas  theta_sd  theta_ewt  "
             "theta_prev  mean_R2"]
    paper = {
        "manhattan": {"raw": 0.37, "threshold": 0.43, "rush": 0.43},
        "sf": {"raw": 0.40, "threshold": 0.43, "rush": 0.57},
    }
    for name in ("raw", "threshold", "rush"):
        if not results[name]:
            lines.append(f"       {name:9s}  (no areas with enough data)")
            continue
        mean_r2 = statistics.mean(results[name])
        t_sd = statistics.mean(p.theta_sd_diff for p in params[name])
        t_ewt = statistics.mean(p.theta_ewt for p in params[name])
        t_prev = statistics.mean(p.theta_prev_surge for p in params[name])
        lines.append(
            f"       {name:9s}  {len(results[name]):5d}  {t_sd:+8.3f}  "
            f"{t_ewt:+9.3f}  {t_prev:+10.3f}  {mean_r2:7.2f}  "
            f"(paper {paper[city][name]:.2f})"
        )
    write_table(f"tab1_forecast_{city}", lines)

    fitted = [r2 for rs in results.values() for r2 in rs]
    assert fitted, "no model could be fitted"
    # The paper's central finding: some predictive signal, but nowhere
    # near forecastability (R2 >= 0.9).
    assert max(fitted) < 0.9
    assert statistics.mean(fitted) > -0.5
