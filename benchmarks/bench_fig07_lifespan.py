"""Fig 7: car lifespans after removing short-lived cars.

Observed lifespans measure availability stretches (IDs randomize per
appearance): ~90 % of low-priced Ubers (X/XL/FAMILY/POOL) live briefly,
luxury cars idle far longer between fares.  Our campaigns record UberX
only, so the split here is within-type: the low-cost CDF must be
short-lived in both cities, shorter where the market is more strained
(SF).
"""

import numpy as np

from _shared import write_table
from repro.analysis.cleaning import build_tracks, filter_short_lived
from repro.analysis.lifespan import lifespans_by_group
from repro.analysis.timeseries import cdf_at


def lifespans_for(log):
    tracks = filter_short_lived(build_tracks(log), min_lifespan_s=60.0)
    low, other = lifespans_by_group(tracks)
    return low


def test_fig07_lifespan(mhtn_campaign, sf_campaign, benchmark):
    mhtn = benchmark(lifespans_for, mhtn_campaign)
    sf = lifespans_for(sf_campaign)

    lines = ["percentile   manhattan_min   sf_min"]
    for pct in (10, 25, 50, 75, 90, 99):
        lines.append(
            f"p{pct:02d}          {np.percentile(mhtn, pct) / 60:9.1f}"
            f"       {np.percentile(sf, pct) / 60:6.1f}"
        )
    frac_mhtn = cdf_at(mhtn, 30 * 60.0)
    frac_sf = cdf_at(sf, 30 * 60.0)
    frac_2h_mhtn = cdf_at(mhtn, 2 * 3600.0)
    frac_2h_sf = cdf_at(sf, 2 * 3600.0)
    lines.append(f"fraction living < 30 min: manhattan {frac_mhtn:.2f}, "
                 f"sf {frac_sf:.2f}  (paper: ~0.9 for low-cost types;")
    lines.append("  our calibrated demand-per-car is lower than 2015 "
                 "production Uber, so the CDF sits right of the paper's "
                 "— the orderings below are the reproduced shape)")
    write_table("fig07_lifespan", lines)

    assert len(mhtn) > 200 and len(sf) > 200
    # Low-priced cars live short observable lives (sub-session scale):
    # the overwhelming majority vanish within two hours of appearing.
    assert frac_2h_mhtn > 0.85
    assert frac_2h_sf > 0.85
    # The more strained market (SF) books cars faster.
    assert np.median(sf) <= np.median(mhtn)
    assert frac_sf >= frac_mhtn
