"""Fig 15: the moment within each 5-minute window when surge changes.

Clock updates land in a tight ~35-second band at a fixed phase; jitter
events are spread nearly uniformly across the window.
"""

import statistics

from _shared import write_table
from repro.marketplace.types import CarType
from repro.analysis.jitter import detect_jitter_events
from repro.analysis.surge_stats import update_moments


def clock_moments(log):
    """Update moments from the clean (jitter-free) stream."""
    moments = []
    for cid in log.client_ids:
        moments.extend(
            update_moments(log.multiplier_series(cid, CarType.UBERX))
        )
    return moments


def jitter_moments(log):
    moments = []
    for cid in log.client_ids:
        series = log.multiplier_series(cid, CarType.UBERX)
        for event in detect_jitter_events(series, client_id=cid):
            moments.append(event.start_s % 300.0)
    return moments


def spread(moments):
    """Central-90% span of moments within the window."""
    if len(moments) < 5:
        return float("nan")
    ordered = sorted(moments)
    k = max(1, len(ordered) // 20)
    return ordered[-k] - ordered[k - 1]


def test_fig15_update_timing(
    mhtn_clean_campaign, mhtn_jitter_campaign, benchmark
):
    clock = benchmark(clock_moments, mhtn_clean_campaign)
    jitter = jitter_moments(mhtn_jitter_campaign)
    assert clock, "no multiplier changes observed in the clean stream"

    lines = [
        f"clock updates: n={len(clock)}, "
        f"range {min(clock):.0f}-{max(clock):.0f}s into interval, "
        f"central-90% span {spread(clock):.0f}s  (paper: ~35 s)",
    ]
    if jitter:
        lines.append(
            f"jitter starts: n={len(jitter)}, "
            f"range {min(jitter):.0f}-{max(jitter):.0f}s, "
            f"central-90% span {spread(jitter):.0f}s  "
            "(paper: ~uniform over the window)"
        )
    # Histogram in 30 s bins.
    lines.append("")
    lines.append("bin_s     clock   jitter")
    for lo in range(0, 300, 30):
        c = sum(1 for m in clock if lo <= m < lo + 30)
        j = sum(1 for m in jitter if lo <= m < lo + 30)
        lines.append(f"{lo:3d}-{lo + 30:3d}  {c:6d}   {j:6d}")
    write_table("fig15_update_timing", lines)

    # Clock updates cluster in a sub-minute band (engine phase 40 s +
    # 35 s band + one 5 s tick).
    assert max(clock) - min(clock) <= 50.0
    # Jitter, when present, spreads far wider than the clock band.
    if len(jitter) >= 10:
        assert spread(jitter) > 2 * spread(clock)
