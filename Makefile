# One command per gate.  `make check` is the whole pre-merge gate:
# determinism lint, strict typing (where mypy is installed), tier-1
# tests.  Every target works on the bare CI image — tools that are not
# installed skip with a message instead of failing, mirroring the
# skip-with-reason behaviour of tests/test_static_analysis.py.

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint lint-concurrency typecheck test bench-quick serve-bench \
	bench-cluster coverage check

## Both lint passes (determinism REP001-REP006 + concurrency
## REP101-REP105) over the source tree.
lint:
	$(PY) -m repro.devtools.lint src

## Concurrency pass alone (guarded-by discipline, task lifetime,
## blocking-in-async, shard-write disjointness, dropped futures).
lint-concurrency:
	$(PY) -m repro.devtools.concurrency src

## Strict mypy on repro.marketplace + repro.geo + repro.parallel +
## repro.service + repro.devtools (config in pyproject).
typecheck:
	@if $(PY) -c "import mypy" 2>/dev/null; then \
		$(PY) -m mypy -p repro.marketplace -p repro.geo \
			-p repro.parallel -p repro.service \
			-p repro.devtools; \
	else \
		echo "mypy not installed; skipping typecheck"; \
	fi

## Tier-1 test suite (the gate the driver enforces).
test:
	$(PY) -m pytest -x -q

## Quick perf bench: the scalar/vector x brute/index x batched/per-client
## x parallel/serial x sharded/serial-state flag matrix
## (use_vectorized_step, use_spatial_index, use_batched_ping,
## use_parallel_ping, use_sharded_state) plus the orchestrator sweep
## leg and the per-shard-count scaling leg.
bench-quick:
	$(PY) benchmarks/bench_perf_engine.py --quick

## Quick service load bench: real localhost sockets, concurrent
## WebSocket ping clients + REST clients against the asyncio server;
## checks throughput floors and the 429/Retry-After contract.
serve-bench:
	$(PY) benchmarks/bench_api_service.py --quick

## Quick cluster bench: the 8-campaign sweep dispatched sequentially,
## through the local process pool, and to 2- and 4-worker localhost
## clusters (real `repro worker` subprocesses over TCP), with a
## byte-identity cross-check of every dispatch mode's outcomes.
bench-cluster:
	$(PY) benchmarks/bench_sweep_cluster.py --quick

## Coverage gate (fail_under=90 on repro.marketplace + repro.parallel;
## needs `coverage`, which CI installs — locally it skips when absent).
coverage:
	@if $(PY) -c "import coverage" 2>/dev/null; then \
		$(PY) -m coverage run -m pytest -q \
			&& $(PY) -m coverage report; \
	else \
		echo "coverage not installed; skipping coverage gate"; \
	fi

## The whole pre-merge gate.
check: lint typecheck test
