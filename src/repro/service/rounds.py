"""Round accumulation: coalescing concurrent pings into lock-step rounds.

The measurement fleet pings in lock-step — every client, same instant,
every 5 s (§3.3) — which is why :meth:`PingServer.serve_round` can
answer a whole round with one vectorized pass.  Over a socket that
lock-step arrives as *many concurrent WebSocket messages within a tick*,
so the transport needs a rendezvous point: the accumulator parks each
arriving ping on a future, and one drain pass per window hands the
accumulated batch to ``serve_round`` and distributes the replies.

Because ``serve_round`` is reply-for-reply identical to independent
``ping()`` calls (tier-1 enforced), the batch composition — which
requests happen to share a round, their arrival order, duplicate
accounts — cannot change any client's reply.  Coalescing is therefore
purely a throughput lever, never a semantics one, and the service stays
byte-identical to the in-process path no matter how clients interleave.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro.api.models import PingReply
from repro.api.ping import PingRequest, PingServer


class RoundAccumulator:
    """Coalesce concurrently-arriving pings into ``serve_round`` batches.

    Parameters
    ----------
    server:
        Any :class:`PingServer`; batches go through its
        ``serve_round``.
    coalesce_window_s:
        How long the first ping of a round waits for company.  ``0``
        still yields once to the event loop, so messages already queued
        in the same loop pass join the round; a small positive window
        (a few milliseconds) lets independent sockets rendezvous at the
        cost of that much added latency.
    """

    def __init__(
        self, server: PingServer, coalesce_window_s: float = 0.0
    ) -> None:
        if coalesce_window_s < 0:
            raise ValueError("coalesce window must be >= 0")
        self._server = server
        self.coalesce_window_s = coalesce_window_s
        self._pending: List[
            Tuple[PingRequest, "asyncio.Future[PingReply]"]
        ] = []  # guarded-by: <event-loop>
        self._drain_scheduled = False  # guarded-by: <event-loop>
        # Strong reference to the in-flight drain task.  The event loop
        # only keeps *weak* references to tasks, so a bare
        # ``create_task()`` whose result is discarded can be garbage
        # collected mid-window — silently stranding every parked ping
        # on a future that will never resolve.
        self._drain_task: Optional["asyncio.Task[None]"] = None  # guarded-by: <event-loop>
        #: Served-round telemetry (reported by the bench / status page).
        self.rounds_served = 0
        self.requests_served = 0
        self.max_round_size = 0

    async def submit(self, request: PingRequest) -> PingReply:
        """Park one ping in the current round and await its reply."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[PingReply]" = loop.create_future()
        entry = (request, future)
        self._pending.append(entry)
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self._drain_task = loop.create_task(self._drain())
        try:
            return await future
        except asyncio.CancelledError:
            # Client hung up while parked (disconnect mid-window):
            # withdraw the request so the round only serves live
            # connections.  If the drain already swapped the batch out,
            # the entry is no longer in ``_pending`` and the served
            # reply is simply dropped by the done-future check below.
            try:
                self._pending.remove(entry)
            except ValueError:
                pass
            raise

    async def _drain(self) -> None:
        # Let the window elapse (or at minimum yield once) so every
        # ping already in flight on the loop can join the batch.
        if self.coalesce_window_s > 0:
            await asyncio.sleep(self.coalesce_window_s)
        else:
            await asyncio.sleep(0)
        batch = self._pending
        self._pending = []
        self._drain_scheduled = False
        self._drain_task = None
        if not batch:
            return
        requests = [request for request, _ in batch]
        self.rounds_served += 1
        self.requests_served += len(batch)
        if len(batch) > self.max_round_size:
            self.max_round_size = len(batch)
        try:
            replies = self._server.serve_round(requests)
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), reply in zip(batch, replies):
            # A future may already be cancelled (client hung up while
            # the round was being served); its reply is simply dropped.
            if not future.done():
                future.set_result(reply)
