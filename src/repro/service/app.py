"""The marketplace as an ASGI application.

Routes (all bodies in the canonical encoding of
:mod:`repro.api.serialize`, so service payloads are byte-identical to
encoding the in-process results directly):

* ``GET /v1/health`` — liveness + the service clock;
* ``GET /v1/estimates/price`` — ``account_id, start_lat, start_lon,
  end_lat, end_lon[, car_types]`` (§3.2; rate limited);
* ``GET /v1/estimates/time`` — ``account_id, lat, lon[, car_types]``
  (rate limited);
* ``GET /v1/surge`` — ``account_id, lat, lon[, car_type]`` (rate
  limited; the surge-mapper/avoidance primitive);
* ``WebSocket /v1/ping`` — the `pingClient` session: each text message
  ``{"account_id", "lat", "lon"[, "car_types"]}`` is answered with a
  canonical ``PingReply`` body.  Like the production endpoint, the ping
  stream is **never rate limited** (§3.2); concurrent pings coalesce
  into lock-step rounds (:class:`repro.service.rounds.RoundAccumulator`)
  served by one vectorized ``serve_round`` pass.

Rate limiting is enforced *at the transport*: a
:class:`~repro.api.ratelimit.RateLimitExceeded` becomes HTTP 429 with a
``Retry-After`` header carrying the whole-second, rounded-up wait.

The app is plain ASGI (http + websocket + lifespan scopes) with no
framework dependency; it runs under the stdlib server in
:mod:`repro.service.http`, the in-process test client in
:mod:`repro.service.testclient`, or any third-party ASGI server.
"""

from __future__ import annotations

import json
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)
from urllib.parse import parse_qs

from repro.api.ping import PingEndpoint
from repro.api.ratelimit import RateLimiter, RateLimitExceeded
from repro.api.rest import RestApi
from repro.api import serialize
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.geo.latlon import LatLon
from repro.service.rounds import RoundAccumulator

Scope = Dict[str, Any]
Message = Dict[str, Any]
Receive = Callable[[], Awaitable[Message]]
Send = Callable[[Message], Awaitable[None]]

_JSON_HEADER: Tuple[bytes, bytes] = (b"content-type", b"application/json")


class _BadRequest(Exception):
    """Client error carrying the HTTP status + error slug to emit."""

    def __init__(
        self, detail: str, status: int = 400, error: str = "bad_request"
    ) -> None:
        super().__init__(detail)
        self.detail = detail
        self.status = status
        self.error = error


def _params(scope: Scope) -> Dict[str, str]:
    """Query parameters, last value winning (the REST API takes one of
    each; repeating a parameter is not an error, just overriding)."""
    raw = parse_qs(
        scope.get("query_string", b"").decode("utf-8", "replace"),
        keep_blank_values=True,
    )
    return {key: values[-1] for key, values in raw.items()}


def _require(params: Dict[str, str], name: str) -> str:
    try:
        return params[name]
    except KeyError:
        raise _BadRequest(f"missing required parameter {name!r}") from None


def _require_float(params: Dict[str, str], name: str) -> float:
    raw = _require(params, name)
    try:
        value = float(raw)
    except ValueError:
        raise _BadRequest(
            f"parameter {name!r} must be a number, got {raw!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise _BadRequest(f"parameter {name!r} must be finite")
    return value


def _car_types(
    params: Dict[str, str]
) -> Optional[Sequence[CarType]]:
    try:
        return serialize.parse_car_types(params.get("car_types"))
    except ValueError as exc:
        raise _BadRequest(str(exc)) from None


class MarketplaceService:
    """ASGI app serving one marketplace engine snapshot.

    The engine is not ticked by the service: requests observe one
    simulated instant, which is exactly what makes transport replies
    comparable byte-for-byte against in-process calls.  (Driving the
    clock stays the caller's job — a campaign loop, or a future
    streaming mode.)
    """

    def __init__(
        self,
        engine: MarketplaceEngine,
        nearest_k: int = 8,
        limiter: Optional[RateLimiter] = None,
        coalesce_window_s: float = 0.0,
        city: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.limiter = limiter if limiter is not None else RateLimiter()
        self.endpoint = PingEndpoint(engine, nearest_k=nearest_k)
        self.rest = RestApi(engine, limiter=self.limiter)
        self.rounds = RoundAccumulator(
            self.endpoint, coalesce_window_s=coalesce_window_s
        )
        self.city = city

    # ------------------------------------------------------------------
    # ASGI entry point
    # ------------------------------------------------------------------
    async def __call__(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        kind = scope["type"]
        if kind == "lifespan":
            await self._lifespan(receive, send)
        elif kind == "http":
            await self._http(scope, receive, send)
        elif kind == "websocket":
            await self._websocket(scope, receive, send)
        else:  # pragma: no cover - unknown scope from an exotic server
            raise RuntimeError(f"unsupported ASGI scope {kind!r}")

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    # ------------------------------------------------------------------
    # HTTP: the REST estimates endpoints
    # ------------------------------------------------------------------
    async def _http(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        path = scope["path"]
        method = scope["method"]
        try:
            if path not in (
                "/v1/health",
                "/v1/estimates/price",
                "/v1/estimates/time",
                "/v1/surge",
            ):
                raise _BadRequest(
                    f"no such endpoint {path!r}", 404, "not_found"
                )
            if method != "GET":
                raise _BadRequest(
                    f"{method} not supported (use GET)",
                    405,
                    "method_not_allowed",
                )
            body = self._dispatch(path, _params(scope))
        except RateLimitExceeded as exc:
            await _respond(
                send,
                429,
                serialize.canonical_json(
                    serialize.rate_limited_payload(exc)
                ),
                extra_headers=[
                    (
                        b"retry-after",
                        str(exc.retry_after_hint_s).encode("ascii"),
                    )
                ],
            )
            return
        except _BadRequest as exc:
            await _respond(
                send,
                exc.status,
                serialize.canonical_json(
                    serialize.error_payload(exc.error, exc.detail)
                ),
            )
            return
        await _respond(send, 200, body)

    def _dispatch(self, path: str, params: Dict[str, str]) -> bytes:
        if path == "/v1/health":
            return serialize.canonical_json(
                serialize.health_payload(
                    self.engine.clock.now, city=self.city
                )
            )
        account_id = _require(params, "account_id")
        if path == "/v1/estimates/price":
            start = LatLon(
                _require_float(params, "start_lat"),
                _require_float(params, "start_lon"),
            )
            end = LatLon(
                _require_float(params, "end_lat"),
                _require_float(params, "end_lon"),
            )
            return serialize.encode_price_estimates(
                self.rest.price_estimates(
                    account_id, start, end, _car_types(params)
                )
            )
        if path == "/v1/estimates/time":
            location = LatLon(
                _require_float(params, "lat"),
                _require_float(params, "lon"),
            )
            return serialize.encode_time_estimates(
                self.rest.time_estimates(
                    account_id, location, _car_types(params)
                )
            )
        # /v1/surge
        location = LatLon(
            _require_float(params, "lat"),
            _require_float(params, "lon"),
        )
        raw_type = params.get("car_type")
        if raw_type is None:
            car_type = CarType.UBERX
        else:
            try:
                car_type = CarType(raw_type)
            except ValueError:
                raise _BadRequest(
                    f"unknown car type {raw_type!r}"
                ) from None
        multiplier = self.rest.surge_multiplier(
            account_id, location, car_type
        )
        return serialize.encode_surge(car_type, multiplier)

    # ------------------------------------------------------------------
    # WebSocket: the pingClient stream
    # ------------------------------------------------------------------
    async def _websocket(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        message = await receive()
        if message["type"] != "websocket.connect":  # pragma: no cover
            return
        if scope["path"] != "/v1/ping":
            await send({"type": "websocket.close", "code": 4404})
            return
        await send({"type": "websocket.accept"})
        while True:
            message = await receive()
            if message["type"] == "websocket.disconnect":
                return
            if message["type"] != "websocket.receive":  # pragma: no cover
                continue
            text = message.get("text")
            if text is None:
                raw = message.get("bytes") or b""
                text = raw.decode("utf-8", "replace")
            try:
                reply_bytes = await self._serve_ping(text)
            except _BadRequest as exc:
                reply_bytes = serialize.canonical_json(
                    serialize.error_payload(exc.error, exc.detail)
                )
            await send(
                {
                    "type": "websocket.send",
                    "text": reply_bytes.decode("utf-8"),
                }
            )

    async def _serve_ping(self, text: str) -> bytes:
        try:
            body = json.loads(text)
        except ValueError:
            raise _BadRequest("ping message is not valid JSON") from None
        if not isinstance(body, dict):
            raise _BadRequest("ping message must be a JSON object")
        try:
            account_id = body["account_id"]
            lat = body["lat"]
            lon = body["lon"]
        except KeyError as exc:
            raise _BadRequest(
                f"ping message missing {exc.args[0]!r}"
            ) from None
        if not isinstance(account_id, str):
            raise _BadRequest("account_id must be a string")
        if not isinstance(lat, (int, float)) or isinstance(lat, bool):
            raise _BadRequest("lat must be a number")
        if not isinstance(lon, (int, float)) or isinstance(lon, bool):
            raise _BadRequest("lon must be a number")
        raw_types = body.get("car_types")
        car_types: Optional[List[CarType]] = None
        if raw_types is not None:
            if not isinstance(raw_types, list):
                raise _BadRequest("car_types must be a list or null")
            car_types = []
            for token in raw_types:
                try:
                    car_types.append(CarType(token))
                except ValueError:
                    raise _BadRequest(
                        f"unknown car type {token!r}"
                    ) from None
        reply = await self.rounds.submit(
            (account_id, LatLon(float(lat), float(lon)), car_types)
        )
        return serialize.encode_ping_reply(reply)


async def _respond(
    send: Send,
    status: int,
    body: bytes,
    extra_headers: Optional[List[Tuple[bytes, bytes]]] = None,
) -> None:
    headers = [_JSON_HEADER]
    if extra_headers:
        headers.extend(extra_headers)
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": headers,
        }
    )
    await send(
        {"type": "http.response.body", "body": body, "more_body": False}
    )
