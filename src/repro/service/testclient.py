"""An in-process ASGI test client: drive the service with no sockets.

Tier-1 must verify the transport contract — routes, status codes, the
429/``Retry-After`` behaviour, and byte-identity of payloads — without
opening sockets or adding dependencies.  The client calls the ASGI app
directly: HTTP requests are one coroutine round-trip; WebSocket
sessions keep an app task alive on a private event loop that only
advances inside the client's (synchronous) method calls, so tests stay
plain functions.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.service.http import AsgiApp

Message = Dict[str, Any]


class TestResponse:
    """Status + headers + body of one in-process HTTP exchange."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self,
        status: int,
        headers: List[Tuple[bytes, bytes]],
        body: bytes,
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def header(self, name: str) -> Optional[str]:
        """The (last) value of a header, case-insensitively."""
        wanted = name.lower().encode("latin-1")
        value: Optional[str] = None
        for key, val in self.headers:
            if key.lower() == wanted:
                value = val.decode("latin-1")
        return value

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class TestWebSocket:
    """One live in-process WebSocket session against the app."""

    def __init__(
        self, client: "AsgiTestClient", path: str, query: str = ""
    ) -> None:
        self._loop = client._loop
        self._inbox: "asyncio.Queue[Message]" = asyncio.Queue()
        self._outbox: "asyncio.Queue[Message]" = asyncio.Queue()
        scope = {
            "type": "websocket",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "scheme": "ws",
            "path": path,
            "raw_path": path.encode("utf-8"),
            "query_string": query.encode("utf-8"),
            "root_path": "",
            "headers": [],
            "subprotocols": [],
            "server": ("testclient", 0),
            "client": ("testclient", 0),
        }

        async def _start() -> "asyncio.Task[None]":
            task = asyncio.ensure_future(
                client.app(scope, self._inbox.get, self._outbox.put)
            )
            await self._inbox.put({"type": "websocket.connect"})
            return task

        self._task = self._loop.run_until_complete(_start())
        first = self._next_event()
        if first["type"] != "websocket.accept":
            raise AssertionError(
                f"connection not accepted: {first!r}"
            )

    def _next_event(self) -> Message:
        async def _get() -> Message:
            getter = asyncio.ensure_future(self._outbox.get())
            await asyncio.wait(
                {getter, self._task},
                timeout=5.0,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if getter.done():
                return getter.result()
            getter.cancel()
            if self._task.done():
                # The app task ended without producing another event.
                exc = self._task.exception()
                if exc is not None:
                    raise exc
                raise AssertionError("app closed without a reply")
            raise AssertionError("timed out waiting for an app event")

        return self._loop.run_until_complete(_get())

    def send_text(self, text: str) -> None:
        self._loop.run_until_complete(
            self._inbox.put({"type": "websocket.receive", "text": text})
        )

    def send_json(self, payload: Any) -> None:
        self.send_text(json.dumps(payload))

    def receive_text(self) -> str:
        event = self._next_event()
        if event["type"] == "websocket.close":
            raise AssertionError(
                f"closed ({event.get('code')}) instead of replying"
            )
        assert event["type"] == "websocket.send", event
        text = event.get("text")
        if text is None:
            return (event.get("bytes") or b"").decode("utf-8")
        return str(text)

    def receive_json(self) -> Any:
        return json.loads(self.receive_text())

    def close(self) -> None:
        async def _close() -> None:
            await self._inbox.put(
                {"type": "websocket.disconnect", "code": 1000}
            )
            await asyncio.wait_for(self._task, 5.0)

        if not self._task.done():
            self._loop.run_until_complete(_close())

    def __enter__(self) -> "TestWebSocket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsgiTestClient:
    """Synchronous facade over an ASGI app, no sockets involved."""

    def __init__(self, app: AsgiApp) -> None:
        self.app = app
        self._loop = asyncio.new_event_loop()

    def close(self) -> None:
        if not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "AsgiTestClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def get(self, target: str) -> TestResponse:
        return self.request("GET", target)

    def request(
        self, method: str, target: str, body: bytes = b""
    ) -> TestResponse:
        path, _, query = target.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": path,
            "raw_path": target.encode("utf-8"),
            "query_string": query.encode("utf-8"),
            "root_path": "",
            "headers": [],
            "server": ("testclient", 0),
            "client": ("testclient", 0),
        }
        sent = False

        async def receive() -> Message:
            nonlocal sent
            if not sent:
                sent = True
                return {
                    "type": "http.request",
                    "body": body,
                    "more_body": False,
                }
            return {"type": "http.disconnect"}

        status = 500
        headers: List[Tuple[bytes, bytes]] = []
        chunks: List[bytes] = []

        async def send(message: Message) -> None:
            nonlocal status, headers
            if message["type"] == "http.response.start":
                status = message["status"]
                headers = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        self._loop.run_until_complete(self.app(scope, receive, send))
        return TestResponse(status, headers, b"".join(chunks))

    def websocket(self, path: str, query: str = "") -> TestWebSocket:
        return TestWebSocket(self, path, query)
