"""Serving the marketplace over real sockets.

The paper's apparatus is network clients talking to Uber's servers:
`pingClient` every 5 s per session over a persistent connection, and
the rate-limited REST developer API (§3.2-3.3).  This package is that
transport for the reproduction:

* :class:`MarketplaceService` — the ASGI app (REST estimates + the
  `pingClient` WebSocket stream, HTTP 429 + ``Retry-After`` at the
  transport edge);
* :class:`RoundAccumulator` — coalesces concurrent pings into
  lock-step rounds served by one vectorized
  ``PingServer.serve_round`` pass;
* :class:`AsgiHttpServer` — stdlib asyncio HTTP/1.1 + RFC 6455
  WebSocket server (no third-party framework on the image);
* :class:`AsgiTestClient` — in-process ASGI driver so tier-1 verifies
  the transport contract without sockets;
* :mod:`repro.service.loadgen` — the socket-side client used by
  ``benchmarks/bench_api_service.py``.

Contract: every payload uses the canonical encoding of
:mod:`repro.api.serialize`, and the service must stay **byte-identical**
to encoding the in-process ``PingEndpoint``/``RestApi`` results
directly — the bit-identity discipline extended across the wire.
"""

from repro.service.app import MarketplaceService
from repro.service.http import AsgiHttpServer
from repro.service.rounds import RoundAccumulator
from repro.service.testclient import AsgiTestClient

__all__ = [
    "AsgiHttpServer",
    "AsgiTestClient",
    "MarketplaceService",
    "RoundAccumulator",
]
