"""Minimal asyncio HTTP/WebSocket *client* for driving the service.

The load bench simulates thousands of concurrent measurement clients
against real localhost sockets; no HTTP client library ships in the
measurement image, so this module implements the exact client subset
needed: one-shot ``GET`` requests and text-frame WebSocket sessions.

Frame masking (mandatory client->server per RFC 6455) uses a rolling
counter-derived key: the key's cryptographic unpredictability protects
browsers from cache-poisoning intermediaries, which do not exist on a
loopback bench — while a deterministic key keeps this module clean
under the repository's no-unseeded-randomness lint (REP001).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.http import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    encode_frame,
    read_frame,
)


class HttpResponse:
    """Status, headers, body of one client-side HTTP exchange."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self, status: int, headers: Dict[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body


def _parse_head(head: bytes) -> Tuple[int, Dict[str, str]]:
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def http_get(
    host: str,
    port: int,
    target: str,
    headers: Optional[Sequence[Tuple[str, str]]] = None,
) -> HttpResponse:
    """One ``GET`` over a fresh connection (``Connection: close``)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = [
            f"GET {target} HTTP/1.1",
            f"host: {host}:{port}",
            "connection: close",
        ]
        for name, value in headers or ():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status, head_map = _parse_head(head)
        length = int(head_map.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return HttpResponse(status, head_map, body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


class WebSocketClient:
    """A client-side text-frame WebSocket session."""

    #: Fixed client handshake key (base64 of 16 bytes).  The accept
    #: check still exercises the server's SHA-1 handshake; uniqueness
    #: of the key carries no protocol meaning.
    _HANDSHAKE_KEY = "cmVwcm8td3Mta2V5LTAwMQ=="

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._mask_counter = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, path: str
    ) -> "WebSocketClient":
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"host: {host}:{port}\r\n"
                "upgrade: websocket\r\n"
                "connection: Upgrade\r\n"
                f"sec-websocket-key: {cls._HANDSHAKE_KEY}\r\n"
                "sec-websocket-version: 13\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status, _ = _parse_head(head)
        if status != 101:
            writer.close()
            raise ConnectionError(
                f"websocket handshake refused: HTTP {status}"
            )
        return cls(reader, writer)

    def _next_mask(self) -> bytes:
        self._mask_counter = (self._mask_counter + 0x9E3779B9) & 0xFFFFFFFF
        return self._mask_counter.to_bytes(4, "big")

    async def send_text(self, text: str) -> None:
        self._writer.write(
            encode_frame(
                OP_TEXT, text.encode("utf-8"), mask_key=self._next_mask()
            )
        )
        await self._writer.drain()

    async def receive_text(self) -> str:
        while True:
            frame = await read_frame(self._reader)
            if frame is None:
                raise ConnectionError("server closed the stream")
            opcode, payload = frame
            if opcode == OP_CLOSE:
                raise ConnectionError("server sent close")
            if opcode == OP_PING:
                self._writer.write(
                    encode_frame(
                        OP_PONG, payload, mask_key=self._next_mask()
                    )
                )
                await self._writer.drain()
                continue
            if opcode == OP_PONG:
                continue
            return payload.decode("utf-8")

    async def close(self) -> None:
        try:
            self._writer.write(
                encode_frame(
                    OP_CLOSE,
                    (1000).to_bytes(2, "big"),
                    mask_key=self._next_mask(),
                )
            )
            await self._writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


__all__: List[str] = ["HttpResponse", "WebSocketClient", "http_get"]
