"""A stdlib asyncio HTTP/1.1 + WebSocket server for ASGI apps.

The measurement environment ships no HTTP framework (no aiohttp /
uvicorn / websockets), so the transport is built directly on
``asyncio.start_server``: a small HTTP/1.1 request parser with
keep-alive, and an RFC 6455 WebSocket endpoint (handshake via
``hashlib``/``base64``, frame codec below).  It implements exactly the
subset the marketplace service uses — GET requests with query strings,
JSON bodies, and text-frame WebSocket sessions — which is also exactly
what the paper's measurement clients generated against production Uber.

The server is deliberately app-agnostic: it drives any ASGI 3 callable,
so the service app is testable without sockets (see
:mod:`repro.service.testclient`) and servable with a third-party ASGI
server where one exists.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

Scope = Dict[str, Any]
Message = Dict[str, Any]
AsgiApp = Callable[
    [
        Scope,
        Callable[[], Awaitable[Message]],
        Callable[[Message], Awaitable[None]],
    ],
    Awaitable[None],
]

#: RFC 6455 §1.3 handshake GUID.
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes.
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Parser limits: request head and frame payloads are bounded so a
#: misbehaving client cannot balloon server memory.
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_FRAME_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    426: "Upgrade Required",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class _Request:
    """One parsed HTTP request head (+ body)."""

    __slots__ = ("method", "target", "version", "headers", "body")

    def __init__(
        self,
        method: str,
        target: str,
        version: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers
        self.body = body

    @property
    def path(self) -> str:
        return self.target.split("?", 1)[0]

    @property
    def query_string(self) -> bytes:
        if "?" in self.target:
            return self.target.split("?", 1)[1].encode("utf-8")
        return b""

    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade"
            in self.headers.get("connection", "").lower()
        )

    def wants_close(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if "close" in connection:
            return True
        return self.version == "HTTP/1.0" and "keep-alive" not in connection


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[_Request]:
    """Parse one request, or ``None`` on a clean connection close."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ValueError("truncated request head") from None
        return None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise ValueError(
            f"bad content-length {length_raw!r}"
        ) from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return _Request(method, target, version, headers, body)


def _response_head(
    status: int, headers: List[Tuple[bytes, bytes]], body_len: int,
    keep_alive: bool,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    parts = [f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1")]
    for name, value in headers:
        lowered = name.lower()
        if lowered in (b"content-length", b"connection"):
            continue
        parts.append(name + b": " + value + b"\r\n")
    parts.append(f"content-length: {body_len}\r\n".encode("latin-1"))
    parts.append(
        b"connection: keep-alive\r\n" if keep_alive
        else b"connection: close\r\n"
    )
    parts.append(b"\r\n")
    return b"".join(parts)


def websocket_accept_key(client_key: str) -> str:
    """The RFC 6455 ``Sec-WebSocket-Accept`` value for a client key."""
    digest = hashlib.sha1(
        client_key.encode("latin-1") + _WS_GUID
    ).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(
    opcode: int, payload: bytes, mask_key: Optional[bytes] = None
) -> bytes:
    """Encode one unfragmented frame (masked iff *mask_key* given)."""
    header = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask_key is not None else 0
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += length.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += length.to_bytes(8, "big")
    if mask_key is None:
        return bytes(header) + payload
    header += mask_key
    return bytes(header) + apply_mask(payload, mask_key)


def apply_mask(payload: bytes, mask_key: bytes) -> bytes:
    """XOR-mask/unmask a payload with a 4-byte key (RFC 6455 §5.3)."""
    if not payload:
        return payload
    repeated = (mask_key * (len(payload) // 4 + 1))[: len(payload)]
    return bytes(a ^ b for a, b in zip(payload, repeated))


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[int, bytes]]:
    """Read one complete message: ``(opcode, payload)``.

    Handles continuation frames (fragmented messages are reassembled)
    and unmasking.  Returns ``None`` on EOF at a frame boundary.
    """
    opcode: Optional[int] = None
    buffer = bytearray()
    while True:
        try:
            first = await reader.readexactly(2)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and opcode is None:
                return None
            raise ConnectionResetError("truncated frame") from None
        fin = bool(first[0] & 0x80)
        frame_op = first[0] & 0x0F
        masked = bool(first[1] & 0x80)
        length = first[1] & 0x7F
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        elif length == 127:
            length = int.from_bytes(await reader.readexactly(8), "big")
        if length > MAX_FRAME_BYTES:
            raise ConnectionResetError("frame too large")
        mask_key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
        if masked:
            payload = apply_mask(payload, mask_key)
        if frame_op in (OP_CLOSE, OP_PING, OP_PONG):
            # Control frames may interleave a fragmented message and
            # are never themselves fragmented.
            return frame_op, payload
        if frame_op != OP_CONT:
            opcode = frame_op
        elif opcode is None:
            raise ConnectionResetError("continuation without a start")
        buffer += payload
        if fin:
            assert opcode is not None
            return opcode, bytes(buffer)


class AsgiHttpServer:
    """Serve an ASGI app over real localhost/network sockets.

    Usage::

        server = AsgiHttpServer(app, host="127.0.0.1", port=0)
        await server.start()        # binds; server.port is now real
        await server.serve_forever()

    ``port=0`` binds an ephemeral port (the bench does this so parallel
    CI jobs never collide).
    """

    def __init__(
        self, app: AsgiApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None  # guarded-by: <event-loop>
        self.connections_accepted = 0  # guarded-by: <event-loop>
        #: Connections whose app callable raised (each answered 500).
        self.app_failures = 0  # guarded-by: <event-loop>

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_HEAD_BYTES,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.connections_accepted += 1
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ValueError as exc:
                    await self._bare_error(writer, 400, str(exc))
                    break
                if request is None:
                    break
                if request.wants_websocket():
                    await self._serve_websocket(request, reader, writer)
                    break
                keep_alive = not request.wants_close()
                await self._serve_http(request, writer, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # Server shutdown cancels handlers mid-close; the
                # transport is already closed, so ending quietly here
                # beats surfacing a spurious CancelledError.
                pass

    async def _bare_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        detail: str,
        error: str = "bad_request",
    ) -> None:
        body = json.dumps(
            {"detail": detail, "error": error},
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=False,
        ).encode("utf-8")
        writer.write(
            _response_head(
                status,
                [(b"content-type", b"application/json")],
                len(body),
                keep_alive=False,
            )
            + body
        )
        await writer.drain()

    async def _serve_http(
        self,
        request: _Request,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> None:
        scope: Scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": request.method.upper(),
            "scheme": "http",
            "path": request.path,
            "raw_path": request.target.encode("utf-8"),
            "query_string": request.query_string,
            "root_path": "",
            "headers": [
                (name.encode("latin-1"), value.encode("latin-1"))
                for name, value in request.headers.items()
            ],
            "server": (self.host, self.port),
            "client": writer.get_extra_info("peername"),
        }
        received = False

        async def receive() -> Message:
            nonlocal received
            if not received:
                received = True
                return {
                    "type": "http.request",
                    "body": request.body,
                    "more_body": False,
                }
            return {"type": "http.disconnect"}

        status = 500
        headers: List[Tuple[bytes, bytes]] = []
        chunks: List[bytes] = []

        async def send(message: Message) -> None:
            nonlocal status, headers
            if message["type"] == "http.response.start":
                status = message["status"]
                headers = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        try:
            await self.app(scope, receive, send)
        except Exception:  # noqa: BLE001 - an app crash answers 500
            self.app_failures += 1
            await self._bare_error(
                writer, 500, "internal error", error="internal_error"
            )
            return
        body = b"".join(chunks)
        writer.write(
            _response_head(status, headers, len(body), keep_alive)
            + body
        )
        await writer.drain()

    async def _serve_websocket(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        client_key = request.headers.get("sec-websocket-key")
        if client_key is None:
            await self._bare_error(
                writer, 400, "missing Sec-WebSocket-Key"
            )
            return
        scope: Scope = {
            "type": "websocket",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "scheme": "ws",
            "path": request.path,
            "raw_path": request.target.encode("utf-8"),
            "query_string": request.query_string,
            "root_path": "",
            "headers": [
                (name.encode("latin-1"), value.encode("latin-1"))
                for name, value in request.headers.items()
            ],
            "subprotocols": [],
            "server": (self.host, self.port),
            "client": writer.get_extra_info("peername"),
        }
        connected = False
        closed = False

        async def receive() -> Message:
            nonlocal connected, closed
            if not connected:
                connected = True
                return {"type": "websocket.connect"}
            if closed:
                return {"type": "websocket.disconnect", "code": 1006}
            while True:
                try:
                    frame = await read_frame(reader)
                except (ConnectionError, asyncio.IncompleteReadError):
                    frame = None
                if frame is None:
                    closed = True
                    return {
                        "type": "websocket.disconnect",
                        "code": 1006,
                    }
                opcode, payload = frame
                if opcode == OP_CLOSE:
                    closed = True
                    code = 1000
                    if len(payload) >= 2:
                        code = int.from_bytes(payload[:2], "big")
                    writer.write(encode_frame(OP_CLOSE, payload[:2]))
                    await writer.drain()
                    return {
                        "type": "websocket.disconnect",
                        "code": code,
                    }
                if opcode == OP_PING:
                    writer.write(encode_frame(OP_PONG, payload))
                    await writer.drain()
                    continue
                if opcode == OP_PONG:
                    continue
                if opcode == OP_TEXT:
                    return {
                        "type": "websocket.receive",
                        "text": payload.decode("utf-8", "replace"),
                    }
                return {"type": "websocket.receive", "bytes": payload}

        async def send(message: Message) -> None:
            nonlocal closed
            kind = message["type"]
            if kind == "websocket.accept":
                writer.write(
                    b"HTTP/1.1 101 Switching Protocols\r\n"
                    b"upgrade: websocket\r\n"
                    b"connection: Upgrade\r\n"
                    b"sec-websocket-accept: "
                    + websocket_accept_key(client_key).encode("ascii")
                    + b"\r\n\r\n"
                )
                await writer.drain()
            elif kind == "websocket.send":
                text = message.get("text")
                if text is not None:
                    frame = encode_frame(
                        OP_TEXT, text.encode("utf-8")
                    )
                else:
                    frame = encode_frame(
                        OP_BINARY, message.get("bytes") or b""
                    )
                writer.write(frame)
                await writer.drain()
            elif kind == "websocket.close":
                if not closed:
                    code = int(message.get("code", 1000))
                    writer.write(
                        encode_frame(
                            OP_CLOSE, code.to_bytes(2, "big")
                        )
                    )
                    await writer.drain()
                    closed = True

        await self.app(scope, receive, send)
