"""Canonical wire encoding for API payloads.

The socket service (:mod:`repro.service`) must produce **byte-identical**
payloads to the in-process reference objects — that is the bit-identity
contract extended across a transport.  Byte identity needs a canonical
JSON form, fixed here in one place and used by both sides:

* keys sorted, separators ``(",", ":")`` (no whitespace);
* ``ensure_ascii=False`` over UTF-8 (one escaping convention);
* ``allow_nan=False`` — NaN/Infinity have no JSON encoding, and a
  payload that cannot round-trip cannot be compared byte-for-byte.

Every function returning ``bytes`` is the *reference encoder* for its
endpoint: the service calls these, and the identity tests call them on
direct in-process results, so the comparison is exact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

from repro.api.models import PingReply, PriceEstimate, TimeEstimate
from repro.api.ratelimit import RateLimitExceeded
from repro.marketplace.types import CarType


def canonical_json(payload: Any) -> bytes:
    """The one JSON byte encoding every transport payload uses."""
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
        allow_nan=False,
    ).encode("utf-8")


# ----------------------------------------------------------------------
# Payload shapes (dicts, the parse target of a JSON body)
# ----------------------------------------------------------------------
def ping_reply_payload(reply: PingReply) -> Dict[str, Any]:
    """`pingClient` response body (WebSocket text frame)."""
    return reply.to_json()


def price_estimates_payload(
    estimates: Sequence[PriceEstimate],
) -> Dict[str, Any]:
    """``estimates/price`` response body (§3.2 shape: a price list)."""
    return {"prices": [e.to_json() for e in estimates]}


def time_estimates_payload(
    estimates: Sequence[TimeEstimate],
) -> Dict[str, Any]:
    """``estimates/time`` response body."""
    return {"times": [e.to_json() for e in estimates]}


def surge_payload(car_type: CarType, multiplier: float) -> Dict[str, Any]:
    """Surge-lookup response body (one rate-limited multiplier read)."""
    return {"type": car_type.value, "surge_multiplier": multiplier}


def health_payload(
    now_s: float, city: Optional[str] = None
) -> Dict[str, Any]:
    """Liveness body: the service clock (simulated seconds) and city."""
    payload: Dict[str, Any] = {"status": "ok", "now_s": now_s}
    if city is not None:
        payload["city"] = city
    return payload


def error_payload(error: str, detail: str) -> Dict[str, Any]:
    """Uniform error body: a machine slug plus a human sentence."""
    return {"error": error, "detail": detail}


def rate_limited_payload(exc: RateLimitExceeded) -> Dict[str, Any]:
    """HTTP 429 body.  ``retry_after_s`` mirrors the ``Retry-After``
    header: whole seconds, rounded up, never negative (a truncated
    "0 s" would invite an immediate re-hit that is rejected again)."""
    payload = error_payload("rate_limited", str(exc))
    payload["account_id"] = exc.account_id
    payload["retry_after_s"] = exc.retry_after_hint_s
    return payload


# ----------------------------------------------------------------------
# Reference encoders (the exact bytes a transport must emit)
# ----------------------------------------------------------------------
def encode_ping_reply(reply: PingReply) -> bytes:
    return canonical_json(ping_reply_payload(reply))


def encode_price_estimates(estimates: Sequence[PriceEstimate]) -> bytes:
    return canonical_json(price_estimates_payload(estimates))


def encode_time_estimates(estimates: Sequence[TimeEstimate]) -> bytes:
    return canonical_json(time_estimates_payload(estimates))


def encode_surge(car_type: CarType, multiplier: float) -> bytes:
    return canonical_json(surge_payload(car_type, multiplier))


def parse_car_types(raw: Optional[str]) -> Optional[Sequence[CarType]]:
    """Parse a comma-separated ``car_types`` query value.

    ``None``/empty means "no restriction" (every type the service
    offers), matching the in-process ``car_types=None`` convention.
    Raises ``ValueError`` naming the first unknown type.
    """
    if raw is None or raw == "":
        return None
    types = []
    for token in raw.split(","):
        token = token.strip()
        try:
            types.append(CarType(token))
        except ValueError:
            raise ValueError(f"unknown car type {token!r}") from None
    return types
