"""The `pingClient` endpoint.

After authenticating, the Client app sends a `pingClient` message every
5 seconds carrying the user's geolocation; the server replies with, per
car type: the nearest eight cars (randomized ID, location, recent path
vector), the EWT, and the surge multiplier (§3.3).

:class:`PingServer` is the minimal interface — the measurement fleet only
depends on it, so the same fleet code measures the marketplace simulator
*and* the taxi-trace replayer used for validation (§3.5), exactly as the
paper reuses its methodology across both.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.geo.latlon import LatLon
from repro.api.models import CarView, PingReply, TypeStatus
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType


class PingServer(abc.ABC):
    """Anything that can answer a `pingClient` message."""

    @abc.abstractmethod
    def ping(
        self,
        account_id: str,
        location: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> PingReply:
        """Answer one ping from *account_id* at *location*.

        *car_types* restricts the response to the given types; ``None``
        means every type the service offers here.  (The real endpoint
        always returned all types; restricting is a measurement-side
        optimization that changes nothing the analysis consumes.)
        """

    @abc.abstractmethod
    def current_time(self) -> float:
        """The service's clock, in simulated seconds."""


class PingEndpoint(PingServer):
    """`pingClient` served from a live marketplace engine."""

    def __init__(self, engine: MarketplaceEngine, nearest_k: int = 8) -> None:
        if nearest_k <= 0:
            raise ValueError("nearest_k must be positive")
        self.engine = engine
        self.nearest_k = nearest_k
        # Per-driver CarView memo.  A car's served view only changes
        # when it moves (every step builds a fresh LatLon object) or
        # re-identifies (new session token), but a whole fleet of
        # clients observes it between moves; building the frozen view
        # once per change serves every observer from the cache.
        self._views: dict = {}

    def current_time(self) -> float:
        return self.engine.clock.now

    def _view_for(self, driver) -> CarView:
        view = self._views.get(driver.driver_id)
        if (
            view is None
            or view.car_id != driver.session_token
            or view.location is not driver.location
        ):
            view = CarView(
                car_id=driver.session_token,
                location=driver.location,
                path=driver.path_triples(),
            )
            self._views[driver.driver_id] = view
        return view

    def ping(
        self,
        account_id: str,
        location: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> PingReply:
        engine = self.engine
        if car_types is None:
            car_types = list(engine.config.fleet)
        statuses = []
        view_for = self._view_for
        for car_type in car_types:
            # One spatial query serves both the car list and the EWT.
            nearest, ewt = engine.nearest_cars_with_ewt(
                location, car_type, k=self.nearest_k
            )
            # A driver without a session token has no public identity
            # and must never be served: emitting "" would collapse every
            # such car into one colliding ID, corrupting the unique-car
            # supply counts and death-based demand estimates (§3.3).
            cars = tuple(
                view_for(d) for d in nearest if d.session_token
            )
            statuses.append(
                TypeStatus(
                    car_type=car_type,
                    cars=cars,
                    ewt_minutes=ewt,
                    surge_multiplier=engine.observed_multiplier(
                        account_id, location, car_type
                    ),
                )
            )
        return PingReply(
            timestamp=engine.clock.now,
            location=location,
            statuses=tuple(statuses),
        )
