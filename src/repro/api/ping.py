"""The `pingClient` endpoint.

After authenticating, the Client app sends a `pingClient` message every
5 seconds carrying the user's geolocation; the server replies with, per
car type: the nearest eight cars (randomized ID, location, recent path
vector), the EWT, and the surge multiplier (§3.3).

:class:`PingServer` is the minimal interface — the measurement fleet only
depends on it, so the same fleet code measures the marketplace simulator
*and* the taxi-trace replayer used for validation (§3.5), exactly as the
paper reuses its methodology across both.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.latlon import LatLon
from repro.api.models import CarView, PingReply, TypeStatus
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType

#: One client's ping for a lock-step round: (account_id, location,
#: car_types or None for every type served here).
PingRequest = Tuple[str, LatLon, Optional[Sequence[CarType]]]


class PingServer(abc.ABC):
    """Anything that can answer a `pingClient` message."""

    @abc.abstractmethod
    def ping(
        self,
        account_id: str,
        location: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> PingReply:
        """Answer one ping from *account_id* at *location*.

        *car_types* restricts the response to the given types; ``None``
        means every type the service offers here.  (The real endpoint
        always returned all types; restricting is a measurement-side
        optimization that changes nothing the analysis consumes.)
        """

    @abc.abstractmethod
    def current_time(self) -> float:
        """The service's clock, in simulated seconds."""

    def serve_round(
        self, requests: Sequence[PingRequest]
    ) -> List[PingReply]:
        """Answer one lock-step round of pings, one reply per request.

        The fleet pings in lock-step (every client, same instant, every
        5 s — §3.3), so a server may exploit the round structure to
        share work across clients.  The default is the semantic
        definition: N independent :meth:`ping` calls, in request order.
        Overrides must return reply-for-reply identical results.
        """
        return [
            self.ping(account_id, location, car_types)
            for account_id, location, car_types in requests
        ]


class PingEndpoint(PingServer):
    """`pingClient` served from a live marketplace engine."""

    def __init__(self, engine: MarketplaceEngine, nearest_k: int = 8) -> None:
        if nearest_k <= 0:
            raise ValueError("nearest_k must be positive")
        self.engine = engine
        self.nearest_k = nearest_k
        # Per-driver CarView memo.  A car's served view only changes
        # when it moves (every step builds a fresh LatLon object) or
        # re-identifies (new session token), but a whole fleet of
        # clients observes it between moves; building the frozen view
        # once per change serves every observer from the cache.  Swept
        # against live session tokens (see _sweep_departed) so week-
        # scale campaigns don't accumulate views of departed identities.
        self._views: Dict[int, CarView] = {}

    def current_time(self) -> float:
        return self.engine.clock.now

    def _sweep_departed(self) -> None:
        """Evict memoized views whose public identity is gone.

        Every driver death/re-identification strands the old token's
        view in the memo; unswept, a week-scale campaign grows it with
        each of those events.  Amortized: only runs once the memo
        outgrows twice the online fleet.  Behaviour-neutral — every
        evicted entry fails the freshness check in :meth:`_view_for`
        and would be rebuilt before serving anyway.
        """
        views = self._views
        engine = self.engine
        online = sum(
            engine.online_count(car_type)
            for car_type in engine.config.fleet
        )
        if len(views) <= 2 * online + 16:
            return
        stale = [
            driver_id
            for driver_id, view in views.items()
            if engine.driver_by_id(driver_id).session_token != view.car_id
        ]
        for driver_id in stale:
            del views[driver_id]

    def _view_for(self, driver) -> CarView:
        view = self._views.get(driver.driver_id)
        if (
            view is None
            or view.car_id != driver.session_token
            or view.location is not driver.location
        ):
            view = CarView(
                car_id=driver.session_token,
                location=driver.location,
                path=driver.path_triples(),
            )
            self._views[driver.driver_id] = view
        return view

    def ping(
        self,
        account_id: str,
        location: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> PingReply:
        engine = self.engine
        self._sweep_departed()
        if car_types is None:
            car_types = list(engine.config.fleet)
        statuses = []
        view_for = self._view_for
        for car_type in car_types:
            # One spatial query serves both the car list and the EWT.
            nearest, ewt = engine.nearest_cars_with_ewt(
                location, car_type, k=self.nearest_k
            )
            # A driver without a session token has no public identity
            # and must never be served: emitting "" would collapse every
            # such car into one colliding ID, corrupting the unique-car
            # supply counts and death-based demand estimates (§3.3).
            cars = tuple(
                view_for(d) for d in nearest if d.session_token
            )
            statuses.append(
                TypeStatus(
                    car_type=car_type,
                    cars=cars,
                    ewt_minutes=ewt,
                    surge_multiplier=engine.observed_multiplier(
                        account_id, location, car_type
                    ),
                )
            )
        return PingReply(
            timestamp=engine.clock.now,
            location=location,
            statuses=tuple(statuses),
        )

    def serve_round(
        self, requests: Sequence[PingRequest]
    ) -> List[PingReply]:
        """One vectorized pass over a whole lock-step round.

        One distance matrix per (fleet, car type) against every ping
        location (:meth:`MarketplaceEngine.round_query`), one batched
        point→area gather, and per-account jitter staleness resolved
        once per round — instead of N independent :meth:`ping` calls
        re-deriving all three.  With ``use_parallel_ping`` the engine
        additionally shards the distance-matrix pass across a worker
        thread pool (per car type and location block, merged back in
        serial order — see :mod:`repro.parallel.sharding`); the batch
        handed back here is bit-identical either way.  Reply-for-reply
        bit-identical to the per-client path (the flag-matrix tests
        enforce it); falls back to it when the engine declines the
        batch query (``use_batched_ping`` off, or scalar step mode).
        """
        engine = self.engine
        self._sweep_departed()
        if not requests:
            return []
        lats = np.array(
            [location.lat for _, location, _ in requests],
            dtype=np.float64,
        )
        lons = np.array(
            [location.lon for _, location, _ in requests],
            dtype=np.float64,
        )
        all_types = list(engine.config.fleet)
        # The batch computes one distance matrix per car type, so it
        # only pays for the union of what the round actually asks for.
        # `None` contributes "all types" to that union explicitly — a
        # mixed round is still a union, not a silent widening to the
        # whole fleet when only a subset is needed.
        all_set = set(all_types)
        seen = set()
        needed: List[CarType] = []
        for _, _, car_types in requests:
            for car_type in (
                all_types if car_types is None else car_types
            ):
                if car_type not in seen:
                    seen.add(car_type)
                    needed.append(car_type)
            if seen >= all_set:
                # A request may restrict to a type the fleet doesn't
                # field, so `seen` can exceed the fleet; the union is
                # complete once it *covers* the fleet.
                break
        batch = engine.round_query(lats, lons, self.nearest_k, needed)
        if batch is None:
            return [
                self.ping(account_id, location, car_types)
                for account_id, location, car_types in requests
            ]
        area_ids = engine.round_area_ids(lats, lons)
        now = engine.clock.now
        drivers = engine.drivers
        # The engine does not advance while a round is served, so one
        # freshness check per served driver covers the whole round —
        # the per-(location, type, rank) lookups below are then plain
        # dict hits.  Tokenless drivers get no entry: a driver with no
        # session token has no public identity and is filtered exactly
        # as in ping().
        views: Dict[int, CarView] = {}
        view_for = self._view_for
        engine.round_prefetch_views(batch.served_rows)
        for row in batch.served_rows:
            driver = drivers[row]
            if driver.session_token:
                views[row] = view_for(driver)
        # Jitter staleness is a pure function of (account, interval),
        # so one probe per account serves every car type this round.
        stale_memo: Dict[str, bool] = {}
        replies = []
        for i, (account_id, location, car_types) in enumerate(requests):
            if account_id not in stale_memo:
                stale_memo[account_id] = engine.jitter.is_stale(
                    account_id, now
                )
            stale = stale_memo[account_id]
            area_id = area_ids[i]
            statuses = []
            for car_type in (
                all_types if car_types is None else car_types
            ):
                seg = batch.segment(car_type)
                rows_i = seg[1][i] if seg is not None else []
                if rows_i:
                    ewt: Optional[float] = engine.ewt_from_nearest(
                        (seg[0][i][0], rows_i[0])  # type: ignore[index]
                    )
                    cars = tuple(
                        [
                            view
                            for row in rows_i
                            if (view := views.get(row)) is not None
                        ]
                    )
                else:
                    ewt = None
                    cars = ()
                statuses.append(
                    TypeStatus(
                        car_type=car_type,
                        cars=cars,
                        ewt_minutes=ewt,
                        surge_multiplier=engine.round_observed_multiplier(
                            account_id, location, car_type, area_id, stale
                        ),
                    )
                )
            replies.append(
                PingReply(
                    timestamp=now,
                    location=location,
                    statuses=tuple(statuses),
                )
            )
        return replies
