"""Per-account sliding-window rate limiting.

Uber capped third-party API usage at 1 000 requests per hour per user
account (§3.2); the paper's client fleet stayed under it (and the
`pingClient` path was never limited at all).  The limiter operates on
simulated time so tests can exercise window expiry without sleeping.

The limiter is shared mutable state between every transport that serves
an account — the in-process :class:`repro.api.rest.RestApi`, the PR 5
thread-pool serving path, and the socket service
(:mod:`repro.service`) — so all bookkeeping happens under one lock:
an unlocked prune/append interleaving miscounts budgets and can pop
from a deque another thread just emptied.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict


def retry_after_hint(retry_after_s: float) -> int:
    """Whole seconds a client must wait before retrying.

    Rounded *up* and clamped to >= 0: truncating (``:.0f``) renders a
    sub-second wait as "0 s", and a transport that echoes that as
    ``Retry-After: 0`` invites an immediate re-hit that is rejected
    again.  ``ceil`` guarantees the advertised wait is never shorter
    than the real one.
    """
    return max(0, math.ceil(retry_after_s))


class RateLimitExceeded(Exception):
    """Raised when an account exceeds its request budget."""

    def __init__(self, account_id: str, retry_after_s: float) -> None:
        hint = retry_after_hint(retry_after_s)
        super().__init__(
            f"account {account_id!r} over rate limit; "
            f"retry after {hint}s"
        )
        self.account_id = account_id
        #: Exact remaining wait in (possibly fractional) seconds.
        self.retry_after_s = retry_after_s
        #: What a transport should surface (``Retry-After`` header):
        #: whole seconds, rounded up, never negative.
        self.retry_after_hint_s = hint


class RateLimiter:
    """Sliding-window limiter: *limit* requests per *window_s* seconds.

    Thread-safe: :meth:`check` and :meth:`remaining` may be called
    concurrently for the same account from transport worker threads.
    """

    def __init__(self, limit: int = 1000, window_s: float = 3600.0) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.limit = limit
        self.window_s = window_s
        self._history: Dict[str, Deque[float]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def check(self, account_id: str, now: float) -> None:
        """Record one request; raise :class:`RateLimitExceeded` if over."""
        with self._lock:
            history = self._history.setdefault(account_id, deque())
            cutoff = now - self.window_s
            while history and history[0] <= cutoff:
                history.popleft()
            if len(history) >= self.limit:
                retry_after = history[0] + self.window_s - now
                raise RateLimitExceeded(account_id, retry_after)
            history.append(now)

    def remaining(self, account_id: str, now: float) -> int:
        """Requests left in the current window without consuming one.

        Also prunes: expired timestamps are dropped and fully-idle
        accounts are forgotten, so accounts that stop calling
        :meth:`check` do not pin up to *limit* floats forever.
        """
        with self._lock:
            history = self._history.get(account_id)
            if not history:
                self._history.pop(account_id, None)
                return self.limit
            cutoff = now - self.window_s
            while history and history[0] <= cutoff:
                history.popleft()
            if not history:
                del self._history[account_id]
                return self.limit
            return max(0, self.limit - len(history))
