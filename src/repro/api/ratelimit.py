"""Per-account sliding-window rate limiting.

Uber capped third-party API usage at 1 000 requests per hour per user
account (§3.2); the paper's client fleet stayed under it (and the
`pingClient` path was never limited at all).  The limiter operates on
simulated time so tests can exercise window expiry without sleeping.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict


class RateLimitExceeded(Exception):
    """Raised when an account exceeds its request budget."""

    def __init__(self, account_id: str, retry_after_s: float) -> None:
        super().__init__(
            f"account {account_id!r} over rate limit; "
            f"retry after {retry_after_s:.0f}s"
        )
        self.account_id = account_id
        self.retry_after_s = retry_after_s


class RateLimiter:
    """Sliding-window limiter: *limit* requests per *window_s* seconds."""

    def __init__(self, limit: int = 1000, window_s: float = 3600.0) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.limit = limit
        self.window_s = window_s
        self._history: Dict[str, Deque[float]] = {}

    def check(self, account_id: str, now: float) -> None:
        """Record one request; raise :class:`RateLimitExceeded` if over."""
        history = self._history.setdefault(account_id, deque())
        cutoff = now - self.window_s
        while history and history[0] <= cutoff:
            history.popleft()
        if len(history) >= self.limit:
            retry_after = history[0] + self.window_s - now
            raise RateLimitExceeded(account_id, retry_after)
        history.append(now)

    def remaining(self, account_id: str, now: float) -> int:
        """Requests left in the current window without consuming one.

        Also prunes: expired timestamps are dropped and fully-idle
        accounts are forgotten, so accounts that stop calling
        :meth:`check` do not pin up to *limit* floats forever.
        """
        history = self._history.get(account_id)
        if not history:
            self._history.pop(account_id, None)
            return self.limit
        cutoff = now - self.window_s
        while history and history[0] <= cutoff:
            history.popleft()
        if not history:
            del self._history[account_id]
            return self.limit
        return max(0, self.limit - len(history))
