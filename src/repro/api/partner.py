"""The Partner (driver) app's view: the surge map (Fig 1).

"The centerpiece of the Partner app is a map with colored polygons
indicating areas of surge.  Unlike the Client app, the locations of
other cars are not shown."  Only registered drivers could log in, and
the paper declined to sign Uber's no-scraping agreement — so the authors
*reconstructed* the surge map from the API (§5.3); we expose the real
one here because our drivers are simulated and consume it for their
relocation decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.geo.latlon import LatLon
from repro.geo.polygon import Polygon
from repro.marketplace.engine import MarketplaceEngine


@dataclass(frozen=True)
class SurgeCell:
    """One colored polygon of the Partner app's map."""

    area_id: int
    name: str
    polygon: Polygon
    multiplier: float

    @property
    def is_surging(self) -> bool:
        return self.multiplier > 1.0


class PartnerView:
    """Driver-side surge map over a live engine."""

    def __init__(self, engine: MarketplaceEngine) -> None:
        self.engine = engine

    def surge_map(self) -> List[SurgeCell]:
        """The current per-area multipliers with their polygons."""
        cells = []
        for area in self.engine.config.region.surge_areas:
            cells.append(
                SurgeCell(
                    area_id=area.area_id,
                    name=area.name,
                    polygon=area.polygon,
                    multiplier=self.engine.surge.multiplier(area.area_id),
                )
            )
        return cells

    def hottest_area(self) -> SurgeCell:
        """Where a profit-seeking driver would head right now."""
        return max(self.surge_map(), key=lambda c: c.multiplier)

    def render(self, columns: int = 12, rows: int = 8) -> str:
        """ASCII surge map: each character cell shows its area's level.

        Digits encode tenths above 1 (``.`` = no surge, ``9+`` capped) —
        a terminal rendition of the app's colored polygons.
        """
        box = self.engine.config.region.bounding_box
        cells = {c.area_id: c for c in self.surge_map()}
        lines = []
        for r in range(rows):
            row_chars = []
            # North at the top.
            lat = box.north - (box.north - box.south) * (r + 0.5) / rows
            for c in range(columns):
                lon = box.west + (box.east - box.west) * (c + 0.5) / columns
                area = self.engine.config.region.area_of(LatLon(lat, lon))
                if area is None:
                    row_chars.append(" ")
                    continue
                multiplier = cells[area.area_id].multiplier
                if multiplier <= 1.0:
                    row_chars.append(".")
                else:
                    tenths = min(9, int(round((multiplier - 1.0) * 10)))
                    row_chars.append(str(tenths))
            lines.append("".join(row_chars))
        legend = "  ".join(
            f"area {c.area_id} ({c.name}): x{c.multiplier:.1f}"
            for c in self.surge_map()
        )
        return "\n".join(lines + [legend])
