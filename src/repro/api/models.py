"""JSON-shaped API response models.

Each model serializes to/from plain dicts (the shape a JSON body would
parse to), so campaign logs are plain ``json.dumps``-able structures and
the analysis pipeline can be run from persisted logs as well as live
objects — mirroring how the paper recorded ~1 TB of responses and analysed
them offline (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geo.latlon import LatLon
from repro.marketplace.types import CarType


@dataclass(frozen=True)
class CarView:
    """One car as shown in a `pingClient` response (§3.3).

    ``car_id`` is the randomized per-appearance token; ``path`` traces the
    car's recent movements as ``(sim_seconds, lat, lon)`` triples.
    """

    car_id: str
    location: LatLon
    path: Tuple[Tuple[float, float, float], ...] = ()

    def to_json(self) -> dict:
        return {
            "id": self.car_id,
            "lat": self.location.lat,
            "lon": self.location.lon,
            "path": [list(p) for p in self.path],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CarView":
        return cls(
            car_id=data["id"],
            location=LatLon(data["lat"], data["lon"]),
            path=tuple(tuple(p) for p in data.get("path", [])),
        )


@dataclass(frozen=True)
class TypeStatus:
    """Per-car-type block of a `pingClient` response.

    ``ewt_minutes`` is ``None`` when no car of the type is available.
    """

    car_type: CarType
    cars: Tuple[CarView, ...]
    ewt_minutes: Optional[float]
    surge_multiplier: float

    def to_json(self) -> dict:
        return {
            "type": self.car_type.value,
            "cars": [c.to_json() for c in self.cars],
            "ewt_minutes": self.ewt_minutes,
            "surge_multiplier": self.surge_multiplier,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TypeStatus":
        return cls(
            car_type=CarType(data["type"]),
            cars=tuple(CarView.from_json(c) for c in data["cars"]),
            ewt_minutes=data["ewt_minutes"],
            surge_multiplier=data["surge_multiplier"],
        )


@dataclass(frozen=True)
class PingReply:
    """A full `pingClient` response: one block per available car type."""

    timestamp: float
    location: LatLon
    statuses: Tuple[TypeStatus, ...]

    def status_for(self, car_type: CarType) -> Optional[TypeStatus]:
        for status in self.statuses:
            if status.car_type is car_type:
                return status
        return None

    def to_json(self) -> dict:
        return {
            "t": self.timestamp,
            "lat": self.location.lat,
            "lon": self.location.lon,
            "statuses": [s.to_json() for s in self.statuses],
        }

    @classmethod
    def from_json(cls, data: dict) -> "PingReply":
        return cls(
            timestamp=data["t"],
            location=LatLon(data["lat"], data["lon"]),
            statuses=tuple(
                TypeStatus.from_json(s) for s in data["statuses"]
            ),
        )


@dataclass(frozen=True)
class PriceEstimate:
    """One entry of an ``estimates/price`` response (§3.2)."""

    car_type: CarType
    surge_multiplier: float
    low_usd: float
    high_usd: float
    currency: str = "USD"

    def to_json(self) -> dict:
        return {
            "type": self.car_type.value,
            "surge_multiplier": self.surge_multiplier,
            "low_estimate": self.low_usd,
            "high_estimate": self.high_usd,
            "currency_code": self.currency,
        }

    @classmethod
    def from_json(cls, data: dict) -> "PriceEstimate":
        return cls(
            car_type=CarType(data["type"]),
            surge_multiplier=data["surge_multiplier"],
            low_usd=data["low_estimate"],
            high_usd=data["high_estimate"],
            currency=data.get("currency_code", "USD"),
        )


@dataclass(frozen=True)
class TimeEstimate:
    """One entry of an ``estimates/time`` response (§3.2)."""

    car_type: CarType
    ewt_seconds: Optional[float]

    def to_json(self) -> dict:
        return {"type": self.car_type.value, "estimate": self.ewt_seconds}

    @classmethod
    def from_json(cls, data: dict) -> "TimeEstimate":
        return cls(car_type=CarType(data["type"]),
                   ewt_seconds=data["estimate"])
