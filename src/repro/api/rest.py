"""The public developer API: ``estimates/price`` and ``estimates/time``.

The paper uses the API for the experiments that need wide geographic
coverage — surge-area discovery (§5.3) and the avoidance strategy (§6) —
because, unlike `pingClient`, it can be queried at arbitrary coordinates
without maintaining a persistent session.  Two properties matter:

* the API datastream carries **no jitter** (Figs 13-14: the "April API"
  line shows the clean 5-minute stair-step);
* requests are **rate limited** to 1 000/hour/account (§3.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geo.latlon import LatLon
from repro.api.models import PriceEstimate, TimeEstimate
from repro.api.ratelimit import RateLimiter
from repro.marketplace.engine import METERS_PER_MILE, MarketplaceEngine
from repro.marketplace.types import FARE_TABLE, CarType


class RestApi:
    """`estimates/price` + `estimates/time` over a marketplace engine."""

    def __init__(
        self,
        engine: MarketplaceEngine,
        limiter: Optional[RateLimiter] = None,
    ) -> None:
        self.engine = engine
        self.limiter = limiter if limiter is not None else RateLimiter()

    def _types(
        self, car_types: Optional[Sequence[CarType]]
    ) -> Sequence[CarType]:
        if car_types is not None:
            return car_types
        return list(self.engine.config.fleet)

    def price_estimates(
        self,
        account_id: str,
        start: LatLon,
        end: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> List[PriceEstimate]:
        """Fare estimates (with surge multipliers) for a start->end trip.

        The multiplier reported is the *true* current value for the start
        location's surge area — the API was never affected by the jitter
        bug.
        """
        now = self.engine.clock.now
        self.limiter.check(account_id, now)
        estimates = []
        meters = start.distance_m(end)
        miles = meters / METERS_PER_MILE
        for car_type in self._types(car_types):
            schedule = FARE_TABLE[car_type]
            multiplier = self.engine.true_multiplier(start, car_type)
            # The production API brackets its guess; +-20 % around the
            # straight-line fare at average city speed.
            minutes = meters / self.engine.config.driver.speed_mps / 60.0
            fare = schedule.fare(miles, minutes, multiplier)
            estimates.append(
                PriceEstimate(
                    car_type=car_type,
                    surge_multiplier=multiplier,
                    low_usd=round(fare * 0.8, 2),
                    high_usd=round(fare * 1.2, 2),
                )
            )
        return estimates

    def time_estimates(
        self,
        account_id: str,
        location: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> List[TimeEstimate]:
        """EWTs at a location, in seconds (``None`` = no car available)."""
        now = self.engine.clock.now
        self.limiter.check(account_id, now)
        estimates = []
        for car_type in self._types(car_types):
            minutes = self.engine.estimate_wait_minutes(location, car_type)
            estimates.append(
                TimeEstimate(
                    car_type=car_type,
                    ewt_seconds=None if minutes is None else minutes * 60.0,
                )
            )
        return estimates

    def surge_multiplier(
        self, account_id: str, location: LatLon,
        car_type: CarType = CarType.UBERX,
    ) -> float:
        """Convenience: just the multiplier at a point (one rate-limited
        request), as used by the surge-area mapper and avoidance strategy."""
        now = self.engine.clock.now
        self.limiter.check(account_id, now)
        return self.engine.true_multiplier(location, car_type)
