"""The service API surface — everything a measurement client can observe.

Two endpoints mattered to the paper (§3.2-§3.3):

* **pingClient** (:mod:`repro.api.ping`) — the Client app's 5-second
  heartbeat: per car type, the nearest eight cars (randomized IDs,
  locations, recent path vectors), the EWT, and the surge multiplier.
  Subject to the jitter bug.
* **estimates/price and estimates/time** (:mod:`repro.api.rest`) — the
  public developer API: surge multipliers and EWTs at a coordinate, rate
  limited to 1 000 requests/hour/account.  *Not* subject to jitter.

Responses are JSON-shaped dataclasses (:mod:`repro.api.models`) with
round-trip (de)serialization, so campaign logs can be written to disk and
re-analysed, exactly like the paper's 996 GB of response logs.
"""

from repro.api.models import (
    CarView,
    PingReply,
    PriceEstimate,
    TimeEstimate,
    TypeStatus,
)
from repro.api.partner import PartnerView, SurgeCell
from repro.api.ping import PingEndpoint, PingServer
from repro.api.ratelimit import RateLimiter, RateLimitExceeded
from repro.api.rest import RestApi

__all__ = [
    "CarView",
    "PingReply",
    "PriceEstimate",
    "TimeEstimate",
    "TypeStatus",
    "PartnerView",
    "SurgeCell",
    "PingEndpoint",
    "PingServer",
    "RateLimiter",
    "RateLimitExceeded",
    "RestApi",
]
