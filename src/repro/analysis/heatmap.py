"""Spatial aggregation per measurement client (§4.3, Figs 9-10).

Each client cell reports two per-day averages:

* the number of unique car IDs it saw (a strict upper bound on true
  cars — IDs are randomized per appearance, Fig 9 caption), and
* its average EWT.

The interplay between the two is the paper's motivation for dynamic
pricing: some dense cells are still under-supplied (Times Square, UCSF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geo.latlon import LatLon
from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog


@dataclass(frozen=True)
class ClientCell:
    """Heatmap values for one measurement client."""

    client_id: str
    location: LatLon
    unique_cars_per_day: float
    mean_ewt_minutes: Optional[float]


def client_heatmap(
    log: CampaignLog,
    car_type: CarType = CarType.UBERX,
) -> List[ClientCell]:
    """Per-client daily unique-car counts and mean EWTs."""
    if not log.rounds:
        raise ValueError("empty campaign log")
    days = max(log.duration_s / 86_400.0, 1e-9)
    seen: Dict[str, set] = {cid: set() for cid in log.client_positions}
    ewt_totals: Dict[str, Tuple[float, int]] = {
        cid: (0.0, 0) for cid in log.client_positions
    }
    for record in log.rounds:
        for (client_id, ct), sample in record.samples.items():
            if ct is not car_type:
                continue
            seen[client_id].update(sample.car_ids)
            if sample.ewt_minutes is not None:
                total, n = ewt_totals[client_id]
                ewt_totals[client_id] = (
                    total + sample.ewt_minutes, n + 1
                )
    cells = []
    for client_id, location in sorted(log.client_positions.items()):
        total, n = ewt_totals[client_id]
        cells.append(
            ClientCell(
                client_id=client_id,
                location=location,
                unique_cars_per_day=len(seen[client_id]) / days,
                mean_ewt_minutes=None if n == 0 else total / n,
            )
        )
    return cells


def render_grid(
    cells: List[ClientCell],
    value: str = "cars",
    cell_format: str = "{:7.1f}",
) -> str:
    """ASCII rendering of a heatmap for bench output.

    Rows are ordered north to south, columns west to east, on the grid
    implied by distinct client latitudes/longitudes.
    """
    if value not in ("cars", "ewt"):
        raise ValueError("value must be 'cars' or 'ewt'")
    lats = sorted({c.location.lat for c in cells}, reverse=True)
    lons = sorted({c.location.lon for c in cells})
    by_pos = {(c.location.lat, c.location.lon): c for c in cells}
    lines = []
    for lat in lats:
        row = []
        for lon in lons:
            cell = by_pos.get((lat, lon))
            if cell is None:
                row.append(" " * 7)
                continue
            v = (
                cell.unique_cars_per_day
                if value == "cars"
                else (cell.mean_ewt_minutes or float("nan"))
            )
            row.append(cell_format.format(v))
        lines.append(" ".join(row))
    return "\n".join(lines)
