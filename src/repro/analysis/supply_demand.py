"""Supply and demand estimation from the observation stream (§3.3).

* **Supply** per interval: the number of unique car identities observed
  across all clients — an upper bound on true cars (IDs are randomized
  per appearance).
* **Demand** per interval: deaths away from the region edge — an upper
  bound on fulfilled demand (some deaths are drivers signing off).

This is exactly the estimator the paper validates against the taxi
ground truth (Fig 4, 97 % of cars / 95 % of deaths captured).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.geo.latlon import LatLon
from repro.geo.polygon import Polygon
from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog
from repro.analysis.cleaning import (
    build_tracks,
    detect_deaths,
    filter_short_lived,
)


@dataclass(frozen=True)
class IntervalEstimate:
    """Measured supply and demand for one interval."""

    interval_index: int
    start_s: float
    supply: int
    demand: int


def estimate_supply_demand(
    log: CampaignLog,
    car_type: Optional[CarType] = CarType.UBERX,
    boundary: Optional[Polygon] = None,
    interval_s: float = 300.0,
    min_lifespan_s: float = 60.0,
    edge_margin_m: float = 150.0,
) -> List[IntervalEstimate]:
    """Per-interval supply/demand estimates from a campaign log.

    *car_type* ``None`` aggregates every type.  The first and last
    intervals are partially observed, so callers comparing to ground
    truth usually trim them.
    """
    if not log.rounds:
        return []
    tracks = filter_short_lived(build_tracks(log), min_lifespan_s)
    if car_type is not None:
        tracks = {
            cid: tr for cid, tr in tracks.items() if tr.car_type is car_type
        }
    deaths = detect_deaths(log, tracks, boundary, edge_margin_m)

    first_idx = int(log.rounds[0].t // interval_s)
    last_idx = int(log.rounds[-1].t // interval_s)
    supply: Dict[int, set] = {
        i: set() for i in range(first_idx, last_idx + 1)
    }
    for track in tracks.values():
        lo = int(track.first_seen // interval_s)
        hi = int(track.last_seen // interval_s)
        for i in range(max(lo, first_idx), min(hi, last_idx) + 1):
            supply[i].add(track.car_id)
    demand: Dict[int, int] = {i: 0 for i in supply}
    for death in deaths:
        if not death.countable:
            continue
        idx = int(death.t // interval_s)
        if first_idx <= idx <= last_idx:
            demand[idx] += 1
    return [
        IntervalEstimate(
            interval_index=i,
            start_s=i * interval_s,
            supply=len(supply[i]),
            demand=demand[i],
        )
        for i in range(first_idx, last_idx + 1)
    ]


def estimate_supply_demand_by_area(
    log: CampaignLog,
    area_of: Callable[[LatLon], Optional[int]],
    car_type: Optional[CarType] = CarType.UBERX,
    boundary: Optional[Polygon] = None,
    interval_s: float = 300.0,
    min_lifespan_s: float = 60.0,
    edge_margin_m: float = 150.0,
) -> Dict[int, List[IntervalEstimate]]:
    """Per-surge-area supply/demand estimates.

    The §5.4 correlation and forecasting analyses treat each surge area
    as an independent time series; this splits the region-wide estimate
    by assigning each car sighting (and each death) to the area its
    position falls in.  A car spanning two areas within one interval
    counts toward both — the same upper-bound character as the
    region-wide estimator.
    """
    if not log.rounds:
        return {}
    tracks = filter_short_lived(build_tracks(log), min_lifespan_s)
    if car_type is not None:
        tracks = {
            cid: tr for cid, tr in tracks.items() if tr.car_type is car_type
        }
    deaths = detect_deaths(log, tracks, boundary, edge_margin_m)

    first_idx = int(log.rounds[0].t // interval_s)
    last_idx = int(log.rounds[-1].t // interval_s)
    supply: Dict[Tuple[int, int], set] = {}
    demand: Dict[Tuple[int, int], int] = {}
    area_ids: set = set()
    for track in tracks.values():
        for t, lat, lon in track.sightings:
            idx = int(t // interval_s)
            if not first_idx <= idx <= last_idx:
                continue
            area_id = area_of(LatLon(lat, lon))
            if area_id is None:
                continue
            area_ids.add(area_id)
            supply.setdefault((area_id, idx), set()).add(track.car_id)
    for death in deaths:
        if not death.countable:
            continue
        idx = int(death.t // interval_s)
        if not first_idx <= idx <= last_idx:
            continue
        area_id = area_of(death.last_position)
        if area_id is None:
            continue
        area_ids.add(area_id)
        demand[(area_id, idx)] = demand.get((area_id, idx), 0) + 1
    return {
        area_id: [
            IntervalEstimate(
                interval_index=i,
                start_s=i * interval_s,
                supply=len(supply.get((area_id, i), ())),
                demand=demand.get((area_id, i), 0),
            )
            for i in range(first_idx, last_idx + 1)
        ]
        for area_id in sorted(area_ids)
    }
