"""The audit pipeline (§4-§5): everything the paper computes from its logs.

All analyses operate on :class:`repro.measurement.records.CampaignLog`
(the merged observation stream of the client fleet) or on probe series
from the REST API — never on simulator internals.  That discipline is the
point: the pipeline must *recover* the surge algorithm's structure
(5-minute clock, surge areas, jitter, supply/demand coupling) blind, and
the tests check it recovers the structure the simulator actually has.
"""

from repro.analysis.cleaning import (
    CarTrack,
    Death,
    build_tracks,
    detect_deaths,
    filter_short_lived,
)
from repro.analysis.supply_demand import (
    IntervalEstimate,
    estimate_supply_demand,
)
from repro.analysis.timeseries import (
    bin_intervals,
    cdf,
    mean_confidence_interval,
)
from repro.analysis.surge_stats import (
    SurgeEpisode,
    interval_multipliers,
    multiplier_distribution,
    surge_episodes,
    update_moments,
)
from repro.analysis.jitter import (
    JitterEvent,
    detect_jitter_events,
    simultaneity_histogram,
)
from repro.analysis.areas import discover_surge_areas
from repro.analysis.clock import (
    ClockEstimate,
    discover_clock,
    duration_quantization,
)
from repro.analysis.correlate import cross_correlation
from repro.analysis.forecast import (
    ForecastResult,
    fit_raw,
    fit_rush,
    fit_threshold,
)
from repro.analysis.transitions import (
    TransitionStats,
    transition_probabilities,
)
from repro.analysis.diurnal import (
    DiurnalStats,
    diurnal_stats,
    rush_hour_lift,
)
from repro.analysis.earnings import (
    EarningsSummary,
    gini_coefficient,
    summarize_earnings,
)
from repro.analysis.heatmap import client_heatmap
from repro.analysis.lifespan import lifespans_by_group
from repro.analysis.report import AuditReport, audit_campaign
from repro.analysis.spatial import (
    SpatialSummary,
    spatial_summary,
    undersupplied_cells,
)

__all__ = [
    "CarTrack",
    "Death",
    "build_tracks",
    "detect_deaths",
    "filter_short_lived",
    "IntervalEstimate",
    "estimate_supply_demand",
    "bin_intervals",
    "cdf",
    "mean_confidence_interval",
    "SurgeEpisode",
    "interval_multipliers",
    "multiplier_distribution",
    "surge_episodes",
    "update_moments",
    "JitterEvent",
    "detect_jitter_events",
    "simultaneity_histogram",
    "discover_surge_areas",
    "ClockEstimate",
    "discover_clock",
    "duration_quantization",
    "cross_correlation",
    "ForecastResult",
    "fit_raw",
    "fit_rush",
    "fit_threshold",
    "TransitionStats",
    "transition_probabilities",
    "client_heatmap",
    "lifespans_by_group",
    "DiurnalStats",
    "diurnal_stats",
    "rush_hour_lift",
    "EarningsSummary",
    "gini_coefficient",
    "summarize_earnings",
    "AuditReport",
    "audit_campaign",
    "SpatialSummary",
    "spatial_summary",
    "undersupplied_cells",
]
