"""Driver-earnings analysis.

Uber's stated rationale for surge is that "higher profits may increase
supply by incentivizing drivers to come online" (§2); the paper
counters that the measured supply response is small and that the
black-box algorithm hurts "drivers' ability to predict fares" (§1).
This module quantifies the driver side of the market the way a
fairness-minded auditor would:

* per-driver hourly earnings and their dispersion (Gini coefficient);
* the share of earnings attributable to surge (fare above the 1.0x
  counterfactual);
* earnings predictability: how much a driver's next-hour earnings vary.

These feed the pricing-policy ablation: the paper's smoothing proposal
and Sidecar's free market trade surge upside for predictability.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.marketplace.engine import CompletedTrip, MarketplaceEngine
from repro.marketplace.types import FARE_TABLE, CarType


@dataclass(frozen=True)
class EarningsSummary:
    """Fleet-level earnings statistics over an observation window."""

    drivers: int
    total_usd: float
    mean_hourly_usd: float
    median_hourly_usd: float
    gini: float
    surge_share: float  # fraction of gross fares above the 1x baseline

    def describe(self) -> str:
        return (
            f"{self.drivers} drivers earned ${self.total_usd:,.0f} "
            f"(mean ${self.mean_hourly_usd:.2f}/h, median "
            f"${self.median_hourly_usd:.2f}/h, Gini {self.gini:.2f}); "
            f"{100 * self.surge_share:.1f}% of gross fares came from "
            "surge"
        )


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini index of a non-negative distribution (0 = equal, 1 = one
    driver takes everything)."""
    if not values:
        raise ValueError("no values")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for i, v in enumerate(ordered, start=1):
        cumulative += v
        weighted += cumulative
    # Gini = 1 - 2 * B where B is the area under the Lorenz curve.
    lorenz_area = weighted / (n * total)
    return max(0.0, 1.0 - 2.0 * lorenz_area + 1.0 / n)


def surge_premium(trips: Sequence[CompletedTrip]) -> float:
    """Fraction of gross fares above the multiplier-1 counterfactual.

    Recomputes every trip's fare at 1.0x and compares; booking fees are
    exempt from surge (not multiplied), so the premium is on metered amounts.
    """
    if not trips:
        raise ValueError("no trips")
    gross = 0.0
    baseline = 0.0
    for trip in trips:
        schedule = FARE_TABLE[trip.car_type]
        gross += trip.fare_usd
        # Invert the surge component exactly: the metered part scales
        # linearly with the multiplier.
        fee = schedule.booking_fee_usd
        metered_surged = trip.fare_usd - fee
        metered_base = (
            metered_surged / trip.surge_multiplier
            if trip.surge_multiplier > 0 else metered_surged
        )
        baseline += metered_base + fee
    if gross == 0:
        return 0.0
    return max(0.0, (gross - baseline) / gross)


def summarize_earnings(
    engine: MarketplaceEngine,
    window_hours: float,
    car_type: Optional[CarType] = CarType.UBERX,
    since_s: Optional[float] = None,
) -> EarningsSummary:
    """Earnings over the engine's run (or since *since_s*).

    Hourly rates divide each driver's accumulated earnings by the window
    length — an upper-level approximation (drivers are not online the
    whole window), adequate for comparing *policies* under identical
    supply behaviour.
    """
    if window_hours <= 0:
        raise ValueError("window must be positive")
    earners = [
        d for d in engine.drivers
        if (car_type is None or d.car_type is car_type)
        and d.earnings_usd > 0
    ]
    trips = [
        t for t in engine.completed_trips
        if (car_type is None or t.car_type is car_type)
        and (since_s is None or t.completed_at >= since_s)
    ]
    if not earners or not trips:
        raise ValueError("no earnings in the window")
    per_driver = [d.earnings_usd for d in earners]
    hourly = [e / window_hours for e in per_driver]
    return EarningsSummary(
        drivers=len(earners),
        total_usd=sum(per_driver),
        mean_hourly_usd=statistics.mean(hourly),
        median_hourly_usd=statistics.median(hourly),
        gini=gini_coefficient(per_driver),
        surge_share=surge_premium(trips),
    )


def hourly_variability(
    trips: Sequence[CompletedTrip], bucket_s: float = 3600.0
) -> float:
    """Coefficient of variation of fleet earnings across hour buckets.

    The paper's driver-side complaint is unpredictability; a smoother
    pricing rule should lower this number for the same market.
    """
    if not trips:
        raise ValueError("no trips")
    buckets: Dict[int, float] = {}
    for trip in trips:
        buckets.setdefault(int(trip.completed_at // bucket_s), 0.0)
        buckets[int(trip.completed_at // bucket_s)] += trip.fare_usd
    values = list(buckets.values())
    if len(values) < 2:
        return 0.0
    mean = statistics.mean(values)
    if mean == 0:
        return 0.0
    return statistics.pstdev(values) / mean
