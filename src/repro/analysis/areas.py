"""Surge-area discovery (§5.3, Figs 18-19).

"We looked for clusters of adjacent locations that always had equal surge
multipliers" — probe the API on a grid, one multiplier series per probe
point, then union adjacent points whose series are identical (lock-step).
The connected components are the surge areas.

Caveat the paper itself notes: regions that never surge during the
measurement are indistinguishable from their neighbours (a series of all
1s is lock-step with everything), so components are only meaningful where
surging was observed — callers should probe during busy periods.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.geo.latlon import LatLon
from repro.api.rest import RestApi
from repro.marketplace.types import CarType
from repro.measurement.fleet import World


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def probe_multipliers(
    world: World,
    api: RestApi,
    points: Sequence[LatLon],
    rounds: int,
    interval_s: float = 300.0,
    car_type: CarType = CarType.UBERX,
    accounts: Optional[Sequence[str]] = None,
) -> List[List[float]]:
    """Collect one multiplier series per probe point via the REST API.

    Queries every *interval_s* (aligned with the surge clock — the API
    stream has no jitter, §5.3), spreading requests over *accounts* to
    respect the 1 000/hour/account limit.  Returns ``series[i][r]`` = the
    multiplier at ``points[i]`` in round ``r``.
    """
    if rounds <= 0:
        raise ValueError("need at least one probe round")
    from repro.measurement.scheduler import RequestScheduler

    scheduler = RequestScheduler(limit_per_hour=api.limiter.limit)
    if accounts is None:
        plan = scheduler.plan(
            queries_per_round=len(points), round_period_s=interval_s
        )
        accounts = scheduler.make_accounts(plan)
    series: List[List[float]] = [[] for _ in points]
    for _ in range(rounds):
        for i, point in enumerate(points):
            account = scheduler.account_for(accounts, world.now)
            if account is None:
                raise RuntimeError(
                    "probe workload exceeds the account budget; "
                    "supply more accounts or slow the cadence"
                )
            series[i].append(api.surge_multiplier(account, point, car_type))
        world.advance(interval_s)
    return series


def discover_surge_areas(
    points: Sequence[LatLon],
    series: Sequence[Sequence[float]],
    neighbor_distance_m: float,
) -> List[List[int]]:
    """Cluster probe points into surge areas.

    Two points within *neighbor_distance_m* whose series are identical in
    every round belong to the same area.  Returns components as lists of
    point indices, largest first.
    """
    if len(points) != len(series):
        raise ValueError("one series per point required")
    if neighbor_distance_m <= 0:
        raise ValueError("neighbour distance must be positive")
    n = len(points)
    uf = _UnionFind(n)
    for i in range(n):
        for j in range(i + 1, n):
            if points[i].fast_distance_m(points[j]) > neighbor_distance_m:
                continue
            if tuple(series[i]) == tuple(series[j]):
                uf.union(i, j)
    components: Dict[int, List[int]] = {}
    for i in range(n):
        components.setdefault(uf.find(i), []).append(i)
    return sorted(components.values(), key=len, reverse=True)


def area_assignment(
    points: Sequence[LatLon],
    components: Sequence[Sequence[int]],
) -> Dict[int, int]:
    """Map point index -> discovered-area index (component rank)."""
    assignment: Dict[int, int] = {}
    for area_idx, component in enumerate(components):
        for point_idx in component:
            assignment[point_idx] = area_idx
    return assignment
