"""Diurnal aggregation of measured series (§4.2's daily patterns).

The paper's first characterization result is that supply, demand, surge,
and EWT "peak during the day and decline at night", with rush-hour local
peaks and weekday/weekend differences.  These helpers turn any
``(t, value)`` stream or per-interval dictionary into hour-of-day
profiles, optionally split by weekday/weekend, and quantify peak
structure.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.marketplace.clock import SECONDS_PER_DAY

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class DiurnalStats:
    """Hourly aggregates of one measured quantity."""

    hourly_mean: Dict[int, float]
    hourly_count: Dict[int, int]

    def peak_hour(self) -> int:
        return max(self.hourly_mean, key=lambda h: self.hourly_mean[h])

    def trough_hour(self) -> int:
        return min(self.hourly_mean, key=lambda h: self.hourly_mean[h])

    def day_night_ratio(
        self,
        day_hours: Tuple[int, int] = (8, 20),
        night_hours: Tuple[int, int] = (1, 5),
    ) -> float:
        """Mean daytime level over mean deep-night level."""
        day = [
            v for h, v in self.hourly_mean.items()
            if day_hours[0] <= h < day_hours[1]
        ]
        night = [
            v for h, v in self.hourly_mean.items()
            if night_hours[0] <= h < night_hours[1]
        ]
        if not day or not night:
            raise ValueError("not enough hours covered for the ratio")
        night_mean = statistics.mean(night)
        if night_mean == 0:
            return float("inf")
        return statistics.mean(day) / night_mean


def diurnal_stats(
    samples: Iterable[Tuple[float, float]],
    weekend_filter: Optional[bool] = None,
    start_weekday: int = 0,
) -> DiurnalStats:
    """Aggregate ``(sim_seconds, value)`` samples by hour of day.

    ``weekend_filter``: ``None`` keeps everything, ``True`` keeps only
    weekend samples, ``False`` only weekdays (day 0 of simulated time
    has weekday *start_weekday*, 0 = Monday).
    """
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for t, value in samples:
        if weekend_filter is not None:
            weekday = (start_weekday + int(t // SECONDS_PER_DAY)) % 7
            if (weekday >= 5) != weekend_filter:
                continue
        hour = int((t % SECONDS_PER_DAY) // _SECONDS_PER_HOUR)
        sums[hour] = sums.get(hour, 0.0) + value
        counts[hour] = counts.get(hour, 0) + 1
    if not sums:
        raise ValueError("no samples matched")
    return DiurnalStats(
        hourly_mean={h: sums[h] / counts[h] for h in sums},
        hourly_count=dict(counts),
    )


def rush_hour_lift(
    stats: DiurnalStats,
    rush: Sequence[Tuple[int, int]] = ((6, 10), (16, 20)),
) -> float:
    """Mean rush-hour level relative to the all-day mean.

    > 1 means the quantity peaks at rush hours, the §4.2 signature.
    """
    rush_values = [
        v for h, v in stats.hourly_mean.items()
        if any(lo <= h < hi for lo, hi in rush)
    ]
    if not rush_values:
        raise ValueError("no rush-hour samples")
    overall = statistics.mean(stats.hourly_mean.values())
    if overall == 0:
        return float("inf")
    return statistics.mean(rush_values) / overall


def interval_series_to_samples(
    per_interval: Dict[int, float], interval_s: float = 300.0
) -> List[Tuple[float, float]]:
    """Adapt a per-interval dict to the ``(t, value)`` sample shape."""
    return [
        (idx * interval_s + interval_s / 2.0, value)
        for idx, value in sorted(per_interval.items())
    ]
