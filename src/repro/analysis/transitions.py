"""Driver-response analysis: the 5-state car transition model (§5.5).

Cars are treated as state machines over 5-minute intervals:

* ``new``  — first appearance, in area *a*;
* ``old``  — started and ended the interval in area *a*;
* ``in``   — moved into *a* from another area during the interval;
* ``out``  — moved out of *a* during the interval;
* ``dying``— disappeared from *a* during the interval.

Counts are conditioned on the *previous* interval's pricing: either all
areas had equal multipliers (no incentive to relocate) or one area's
multiplier exceeded every neighbour's by >= 0.2 (a monetary incentive).
Fig 22 compares the two distributions per area; the paper finds a small
consistent increase in ``new`` (supply attraction), and demand
suppression visible as more ``old`` / fewer ``dying`` cars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.geo.latlon import LatLon
from repro.analysis.cleaning import CarTrack

STATES = ("new", "old", "in", "out", "dying")


@dataclass
class TransitionStats:
    """State counts for one (area, condition) cell of Fig 22."""

    area_id: int
    condition: str  # "equal" or "surging"
    counts: Dict[str, int] = field(
        default_factory=lambda: {s: 0 for s in STATES}
    )
    intervals: int = 0

    def probabilities(self) -> Dict[str, float]:
        total = sum(self.counts.values())
        if total == 0:
            return {s: 0.0 for s in STATES}
        return {s: c / total for s, c in self.counts.items()}


def _positions_by_interval(
    track: CarTrack, interval_s: float
) -> Dict[int, Tuple[LatLon, LatLon]]:
    """First and last sighting position of a track per interval."""
    result: Dict[int, Tuple[LatLon, LatLon]] = {}
    for t, lat, lon in track.sightings:
        idx = int(t // interval_s)
        pos = LatLon(lat, lon)
        if idx not in result:
            result[idx] = (pos, pos)
        else:
            result[idx] = (result[idx][0], pos)
    return result


def classify_conditions(
    area_multipliers: Dict[int, Dict[int, float]],
    adjacency: Dict[int, Sequence[int]],
    margin: float = 0.2,
) -> Dict[int, Dict[int, str]]:
    """Label each (interval, area) as "equal", "surging", or "other".

    ``area_multipliers[area][interval]`` is the *measured* per-area clock
    multiplier.  The label for interval *t* describes interval *t − 1*
    (the incentive drivers could have reacted to), per the paper.
    """
    labels: Dict[int, Dict[int, str]] = {a: {} for a in area_multipliers}
    all_intervals = set()
    for series in area_multipliers.values():
        all_intervals.update(series)
    for t in all_intervals:
        prev = t - 1
        values = {
            a: series.get(prev)
            for a, series in area_multipliers.items()
        }
        if any(v is None for v in values.values()):
            continue
        distinct = set(values.values())
        for area_id in area_multipliers:
            if len(distinct) == 1:
                labels[area_id][t] = "equal"
                continue
            neighbors = adjacency.get(area_id, ())
            neighbor_values = [values[n] for n in neighbors if n in values]
            if neighbor_values and values[area_id] >= (
                max(neighbor_values) + margin
            ):
                labels[area_id][t] = "surging"
            else:
                labels[area_id][t] = "other"
    return labels


def transition_probabilities(
    tracks: Dict[str, CarTrack],
    area_of: Callable[[LatLon], Optional[int]],
    area_multipliers: Dict[int, Dict[int, float]],
    adjacency: Dict[int, Sequence[int]],
    interval_s: float = 300.0,
    margin: float = 0.2,
    campaign_end_s: Optional[float] = None,
) -> Dict[Tuple[int, str], TransitionStats]:
    """Fig 22: per-area transition statistics under both conditions.

    ``campaign_end_s`` marks the end of observation; tracks still alive
    then contribute no ``dying`` event.
    """
    labels = classify_conditions(area_multipliers, adjacency, margin)
    stats: Dict[Tuple[int, str], TransitionStats] = {}
    for area_id in area_multipliers:
        for condition in ("equal", "surging"):
            stats[(area_id, condition)] = TransitionStats(
                area_id=area_id, condition=condition
            )

    def bump(area_id: Optional[int], interval: int, state: str) -> None:
        if area_id is None:
            return
        condition = labels.get(area_id, {}).get(interval)
        if condition in ("equal", "surging"):
            stats[(area_id, condition)].counts[state] += 1

    for track in tracks.values():
        if not track.sightings:
            continue
        per_interval = _positions_by_interval(track, interval_s)
        intervals = sorted(per_interval)
        first_interval, last_interval = intervals[0], intervals[-1]
        for idx in intervals:
            start_pos, end_pos = per_interval[idx]
            start_area = area_of(start_pos)
            end_area = area_of(end_pos)
            if idx == first_interval:
                bump(start_area, idx, "new")
            if idx == last_interval:
                still_alive = (
                    campaign_end_s is not None
                    and track.last_seen
                    >= campaign_end_s - interval_s
                )
                if not still_alive:
                    bump(end_area, idx, "dying")
            if start_area == end_area:
                if idx not in (first_interval, last_interval):
                    bump(start_area, idx, "old")
            else:
                bump(start_area, idx, "out")
                bump(end_area, idx, "in")
    return stats
