"""Jitter detection (§5.2, Figs 14-17).

Jitter manifests in a per-client multiplier stream as a short *blip*: the
value deviates for under a minute and then returns to what it was.  The
detector finds blips structurally (constant-value run, <= *max_duration_s*,
same value on both sides) and then annotates each with the property the
paper discovered: the stale value equals the previous 5-minute interval's
published multiplier.

Clock updates are not blips — the new value persists — so the detector
naturally separates the two processes, which is how Figs 15-17 split them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.surge_stats import interval_multipliers


@dataclass(frozen=True)
class JitterEvent:
    """One detected stale-value blip in a client's stream."""

    client_id: str
    start_s: float
    end_s: float
    stale_value: float
    surrounding_value: float
    interval_index: int
    matches_previous_interval: bool

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def lowered_price(self) -> bool:
        """Did the blip show a lower price than the published value?"""
        return self.stale_value < self.surrounding_value


def detect_jitter_events(
    series: Sequence[Tuple[float, float]],
    client_id: str = "",
    interval_s: float = 300.0,
    max_duration_s: float = 60.0,
) -> List[JitterEvent]:
    """Find jitter blips in one client's time-sorted multiplier stream.

    The stream should be sampled at the app's 5-second cadence; coarser
    sampling misses events (they last 20-30 s; the paper observed none
    over a minute, hence the default cap).

    Two structural conditions separate a blip from clock behaviour: the
    values on both sides of the run must agree, and the run's value must
    differ from its own interval's modal (clock) value — a short stretch
    of the *new* clock value bracketed by stale windows would otherwise
    read as a blip of the new value.
    """
    if not series:
        return []
    clock = interval_multipliers(series, interval_s)
    # Compress into constant-value runs.
    runs: List[Tuple[float, float, float]] = []  # (start, end, value)
    start_t, value = series[0][0], series[0][1]
    last_t = start_t
    for t, m in series[1:]:
        if m != value:
            runs.append((start_t, t, value))
            start_t, value = t, m
        last_t = t
    runs.append((start_t, last_t, value))

    def previous_published_value(run_index: int) -> Optional[float]:
        """The clock value published before the run surrounding a blip.

        Walks backwards past other short blips to the nearest long
        (clock-published) run.  A blip can strike *before* its own
        interval's publish moment, in which case the served stale value
        is the multiplier from two wall-clock intervals back — run
        structure captures that correctly where interval arithmetic
        would not.
        """
        surrounding = runs[run_index - 1][2]
        for j in range(run_index - 2, -1, -1):
            start, end, value = runs[j]
            if value == surrounding:
                continue
            if end - start > max_duration_s or j == 0:
                return value
        return None

    events: List[JitterEvent] = []
    for i in range(1, len(runs) - 1):
        r_start, r_end, r_value = runs[i]
        duration = r_end - r_start
        if duration > max_duration_s or duration <= 0:
            continue
        before_value = runs[i - 1][2]
        after_value = runs[i + 1][2]
        if before_value != after_value or r_value == before_value:
            continue
        interval = int(r_start // interval_s)
        if r_value == clock.get(interval):
            # A short stretch of the interval's own clock value is not a
            # blip (it is the published value glimpsed between stale
            # windows).  This also drops the rare genuine blip whose
            # stale value coincides with the current clock value —
            # precision over recall, as such events are unobservable
            # evidence of staleness anyway.
            continue
        previous = previous_published_value(i)
        events.append(
            JitterEvent(
                client_id=client_id,
                start_s=r_start,
                end_s=r_end,
                stale_value=r_value,
                surrounding_value=before_value,
                interval_index=interval,
                matches_previous_interval=(
                    previous is not None and r_value == previous
                ),
            )
        )
    return events


def simultaneity_histogram(
    events_by_client: Dict[str, Sequence[JitterEvent]],
) -> Counter:
    """How many clients jitter at once (Fig 17)?

    For every event, counts the clients (including its own) with an
    overlapping event; returns ``Counter({n_simultaneous: n_events})``.
    The paper finds ~90 % of events are single-client, none exceed 5.
    """
    all_events = [
        event for events in events_by_client.values() for event in events
    ]
    histogram: Counter = Counter()
    for event in all_events:
        clients = set()
        for client_id, events in events_by_client.items():
            for other in events:
                if other.start_s < event.end_s and event.start_s < other.end_s:
                    clients.add(client_id)
                    break
        histogram[len(clients)] += 1
    return histogram


def drop_fraction(events: Sequence[JitterEvent]) -> float:
    """Fraction of jitter events that lowered the shown price.

    The paper: 74 % in Manhattan, 64 % in SF — stale values come from the
    previous interval and most surges last one interval, so the previous
    value is usually lower.
    """
    if not events:
        raise ValueError("no events")
    return sum(1 for e in events if e.lowered_price) / len(events)


def drop_to_one_fraction(events: Sequence[JitterEvent]) -> float:
    """Fraction of events whose stale multiplier was exactly 1 (Fig 16)."""
    if not events:
        raise ValueError("no events")
    return sum(1 for e in events if e.stale_value == 1.0) / len(events)
