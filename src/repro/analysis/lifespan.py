"""Car-lifespan analysis (§4.1, Fig 7).

A car "lives" from its first to its last sighting.  Because IDs are
randomized every time a car becomes available, a lifespan measures one
*availability stretch*, ending when the car is booked, signs off, or
leaves — so low-priced, high-demand types (X, XL, FAMILY, POOL) live
much shorter observable lives than luxury types.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.marketplace.types import CarType
from repro.analysis.cleaning import CarTrack


def lifespans_by_group(
    tracks: Dict[str, CarTrack],
) -> Tuple[List[float], List[float]]:
    """Lifespans (seconds) split into (low-cost, luxury/other) groups.

    The paper groups X/XL/FAMILY/POOL as "low-priced Ubers" and reports
    ~90 % of them living under a small bound, with the rest living
    longer.
    """
    low_cost: List[float] = []
    other: List[float] = []
    for track in tracks.values():
        target = low_cost if track.car_type.is_low_cost else other
        target.append(track.lifespan_s)
    return low_cost, other


def lifespans_by_type(
    tracks: Dict[str, CarTrack],
) -> Dict[CarType, List[float]]:
    """Lifespans (seconds) per car type."""
    result: Dict[CarType, List[float]] = {}
    for track in tracks.values():
        result.setdefault(track.car_type, []).append(track.lifespan_s)
    return result
