"""Time-shifted cross-correlation of surge vs marketplace features.

Implements the §5.4 analysis behind Figs 20-21: "The correlation
coefficient at time shift Δt is computed using surge at time t and
feature values in the interval [t + Δt − 5, t + Δt)."  A strong negative
correlation of (supply − demand) with surge at Δt ≈ 0, and a strong
positive one for EWT, are the paper's evidence that the algorithm is
responsive to the previous window's state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class CorrelationPoint:
    """Correlation at one time shift."""

    shift_minutes: float
    coefficient: float
    p_value: float
    n: int


def cross_correlation(
    surge: Dict[int, float],
    feature: Dict[int, float],
    max_shift_intervals: int = 12,
    interval_minutes: float = 5.0,
) -> List[CorrelationPoint]:
    """Pearson correlation of surge(t) vs feature(t + Δt), Δt in intervals.

    Both inputs are per-interval dictionaries (interval index -> value),
    e.g. from :func:`repro.analysis.surge_stats.interval_multipliers` and
    per-interval feature means.  Shifts run from
    ``-max_shift_intervals`` to ``+max_shift_intervals``; only intervals
    present in both series (after shifting) contribute.
    """
    if max_shift_intervals < 0:
        raise ValueError("max shift cannot be negative")
    points: List[CorrelationPoint] = []
    for shift in range(-max_shift_intervals, max_shift_intervals + 1):
        xs: List[float] = []
        ys: List[float] = []
        for idx, s in surge.items():
            f = feature.get(idx + shift)
            if f is not None:
                xs.append(s)
                ys.append(f)
        if len(xs) < 3 or len(set(xs)) < 2 or len(set(ys)) < 2:
            points.append(
                CorrelationPoint(
                    shift_minutes=shift * interval_minutes,
                    coefficient=float("nan"),
                    p_value=float("nan"),
                    n=len(xs),
                )
            )
            continue
        r, p = stats.pearsonr(xs, ys)
        points.append(
            CorrelationPoint(
                shift_minutes=shift * interval_minutes,
                coefficient=float(r),
                p_value=float(p),
                n=len(xs),
            )
        )
    return points


def strongest_shift(
    points: Sequence[CorrelationPoint],
) -> CorrelationPoint:
    """The shift with the largest |r| (ignoring NaNs)."""
    valid = [p for p in points if not np.isnan(p.coefficient)]
    if not valid:
        raise ValueError("no valid correlation points")
    return max(valid, key=lambda p: abs(p.coefficient))
