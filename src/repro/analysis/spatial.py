"""Spatial supply analysis (§4.3).

The paper's heatmaps reveal "a complex relationship between car density
and EWT": some sparse cells wait long (classic under-supply), but so do
some of the *densest* cells (Times Square, UCSF) — demand concentrates
harder than supply does.  That complexity is Uber's own argument for
dynamic pricing, so the audit quantifies it:

* the density-EWT correlation across client cells;
* *hot-and-slow* cells — top-quartile density with above-median EWT —
  the undersupplied hotspots the paper calls out by name.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.heatmap import ClientCell


@dataclass(frozen=True)
class SpatialSummary:
    """Cross-cell relationship between car density and waiting time."""

    cells: int
    density_ewt_correlation: float
    hot_and_slow: Tuple[str, ...]   # client ids
    cold_and_slow: Tuple[str, ...]  # classic under-supply

    def describe(self) -> str:
        return (
            f"{self.cells} cells; density-EWT correlation "
            f"{self.density_ewt_correlation:+.2f}; "
            f"{len(self.hot_and_slow)} dense-but-slow cells, "
            f"{len(self.cold_and_slow)} sparse-and-slow cells"
        )


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    if n < 3:
        raise ValueError("need at least 3 cells")
    mean_x = statistics.mean(xs)
    mean_y = statistics.mean(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def spatial_summary(cells: Sequence[ClientCell]) -> SpatialSummary:
    """Quantify the density/EWT interplay across a heatmap's cells."""
    usable = [
        c for c in cells if c.mean_ewt_minutes is not None
    ]
    if len(usable) < 3:
        raise ValueError("need at least 3 cells with EWT data")
    densities = [c.unique_cars_per_day for c in usable]
    ewts = [c.mean_ewt_minutes for c in usable]
    correlation = _pearson(densities, ewts)

    density_q3 = sorted(densities)[3 * len(densities) // 4]
    density_q1 = sorted(densities)[len(densities) // 4]
    ewt_median = statistics.median(ewts)
    hot_slow = tuple(
        c.client_id for c in usable
        if c.unique_cars_per_day >= density_q3
        and c.mean_ewt_minutes > ewt_median
    )
    cold_slow = tuple(
        c.client_id for c in usable
        if c.unique_cars_per_day <= density_q1
        and c.mean_ewt_minutes > ewt_median
    )
    return SpatialSummary(
        cells=len(usable),
        density_ewt_correlation=correlation,
        hot_and_slow=hot_slow,
        cold_and_slow=cold_slow,
    )


def undersupplied_cells(
    cells: Sequence[ClientCell],
    ewt_threshold_minutes: Optional[float] = None,
) -> List[ClientCell]:
    """Cells whose EWT exceeds a threshold (default: cell median).

    Sorted slowest first — the candidate areas where surge should (and
    in the measurement, does) concentrate.
    """
    usable = [c for c in cells if c.mean_ewt_minutes is not None]
    if not usable:
        raise ValueError("no cells with EWT data")
    if ewt_threshold_minutes is None:
        ewt_threshold_minutes = statistics.median(
            c.mean_ewt_minutes for c in usable
        )
    slow = [
        c for c in usable if c.mean_ewt_minutes > ewt_threshold_minutes
    ]
    return sorted(
        slow, key=lambda c: c.mean_ewt_minutes, reverse=True
    )
