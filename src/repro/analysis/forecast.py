"""Surge forecasting with linear regression (§5.4, Table 1).

Three models, all predicting the next 5-minute interval's multiplier from
the current interval's (supply − demand) difference, EWT, and multiplier:

* **Raw** — fit and evaluated on the full (cleaned) series;
* **Threshold** — only predicts at *t* when surge was > 1 at *t − 1*
  ("we know less about the state of the system when surge is 1");
* **Rush** — fit and evaluated on rush-hour data only (6-10am, 4-8pm).

Cleaning per the paper: intervals with multiplier = 1 are removed before
fitting — otherwise always-predict-1 scores 86 % in Manhattan — except
those directly preceding or following a surging interval.

The paper's punchline is *negative*: no model reaches R² ≥ 0.9, so
short-term surge cannot be forecast from public data.  Our simulator
prices on quantity demanded plus noise while the audit only sees
fulfilled demand, reproducing that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.marketplace.clock import SECONDS_PER_DAY


@dataclass(frozen=True)
class FeatureRow:
    """Aligned features for one interval (inputs at t, target at t+1)."""

    interval_index: int
    sd_diff: float
    ewt: float
    surge: float
    next_surge: float


@dataclass(frozen=True)
class ForecastResult:
    """Fitted parameters and fit quality (one Table 1 cell group)."""

    theta_sd_diff: float
    theta_ewt: float
    theta_prev_surge: float
    intercept: float
    r2: float
    n: int

    def predict(self, sd_diff: float, ewt: float, surge: float) -> float:
        return (
            self.intercept
            + self.theta_sd_diff * sd_diff
            + self.theta_ewt * ewt
            + self.theta_prev_surge * surge
        )


def build_dataset(
    surge: Dict[int, float],
    sd_diff: Dict[int, float],
    ewt: Dict[int, float],
) -> List[FeatureRow]:
    """Align per-interval series into (features at t, surge at t+1) rows.

    Applies the paper's cleaning rule: rows whose *target* interval has
    multiplier 1 are dropped unless adjacent to a surging interval.
    """
    rows: List[FeatureRow] = []
    for idx in sorted(surge):
        nxt = surge.get(idx + 1)
        sd = sd_diff.get(idx)
        e = ewt.get(idx)
        if nxt is None or sd is None or e is None:
            continue
        if nxt == 1.0:
            prev_surging = surge.get(idx, 1.0) > 1.0
            next_surging = surge.get(idx + 2, 1.0) > 1.0
            if not (prev_surging or next_surging):
                continue
        rows.append(
            FeatureRow(
                interval_index=idx,
                sd_diff=sd,
                ewt=e,
                surge=surge[idx],
                next_surge=nxt,
            )
        )
    return rows


def _fit(rows: Sequence[FeatureRow]) -> ForecastResult:
    if len(rows) < 8:
        raise ValueError(
            f"not enough data to fit a 4-parameter model ({len(rows)} rows)"
        )
    x = np.array(
        [[r.sd_diff, r.ewt, r.surge, 1.0] for r in rows], dtype=float
    )
    y = np.array([r.next_surge for r in rows], dtype=float)
    theta, _, _, _ = np.linalg.lstsq(x, y, rcond=None)
    predictions = x @ theta
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 0.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return ForecastResult(
        theta_sd_diff=float(theta[0]),
        theta_ewt=float(theta[1]),
        theta_prev_surge=float(theta[2]),
        intercept=float(theta[3]),
        r2=r2,
        n=len(rows),
    )


def fit_raw(rows: Sequence[FeatureRow]) -> ForecastResult:
    """The permissive model: everything that survived cleaning."""
    return _fit(rows)


def fit_threshold(rows: Sequence[FeatureRow]) -> ForecastResult:
    """Predict only when surge was already > 1 in the input interval."""
    return _fit([r for r in rows if r.surge > 1.0])


def is_rush_interval(
    interval_index: int, interval_s: float = 300.0
) -> bool:
    """Is this interval inside the paper's rush windows (6-10am, 4-8pm)?"""
    hour = (interval_index * interval_s % SECONDS_PER_DAY) / 3600.0
    return 6.0 <= hour < 10.0 or 16.0 <= hour < 20.0


def fit_rush(rows: Sequence[FeatureRow]) -> ForecastResult:
    """Fit and evaluate on rush-hour intervals only."""
    return _fit([r for r in rows if is_rush_interval(r.interval_index)])
