"""Update-clock discovery: how often does the operator reprice?

The paper infers the 5-minute clock informally (surge durations quantize
to multiples of 5 minutes, Fig 13; change moments cluster at a fixed
phase, Fig 15).  This module makes the inference principled:

for each candidate period *P*, fold the observed multiplier-change times
modulo *P* and measure their circular concentration (the resultant
length *R* of the phase angles).  A true clock period makes every change
land at (nearly) the same phase — *R* ≈ 1 — while a wrong period spreads
them — *R* small.  Every *divisor* of the true period also concentrates
perfectly (change times k·300+φ fold to a single phase mod 60 as well),
while *multiples* split the phases apart; the fundamental is therefore
the **largest** candidate whose concentration clears the threshold.

Jitter blips pollute the change stream with uniformly-placed events, so
callers should pass a de-jittered stream (or accept a lower R).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PeriodScore:
    """Circular-concentration score for one candidate period."""

    period_s: float
    concentration: float  # resultant length R in [0, 1]
    phase_s: float        # circular mean of change moments mod period
    n_changes: int


@dataclass(frozen=True)
class ClockEstimate:
    """The discovered repricing clock."""

    period_s: float
    phase_s: float
    concentration: float
    scores: Tuple[PeriodScore, ...]


def change_times(series: Sequence[Tuple[float, float]]) -> List[float]:
    """Timestamps at which the observed value changed."""
    times: List[float] = []
    prev: Optional[float] = None
    for t, value in series:
        if prev is not None and value != prev:
            times.append(t)
        prev = value
    return times


def score_period(times: Sequence[float], period_s: float) -> PeriodScore:
    """Circular concentration of *times* folded modulo *period_s*."""
    if period_s <= 0:
        raise ValueError("period must be positive")
    if not times:
        return PeriodScore(period_s, 0.0, 0.0, 0)
    sin_sum = 0.0
    cos_sum = 0.0
    for t in times:
        angle = 2.0 * math.pi * ((t % period_s) / period_s)
        sin_sum += math.sin(angle)
        cos_sum += math.cos(angle)
    n = len(times)
    resultant = math.hypot(sin_sum, cos_sum) / n  # repro: noqa=REP004 -- circular-statistics resultant length, analysis-only: no numpy mirror path exists, so hypot's extra ulp of accuracy is free
    mean_angle = math.atan2(sin_sum, cos_sum) % (2.0 * math.pi)
    phase = mean_angle / (2.0 * math.pi) * period_s
    return PeriodScore(
        period_s=period_s,
        concentration=resultant,
        phase_s=phase,
        n_changes=n,
    )


def discover_clock(
    series: Sequence[Tuple[float, float]],
    candidate_periods: Optional[Sequence[float]] = None,
    min_changes: int = 5,
    threshold: float = 0.6,
) -> Optional[ClockEstimate]:
    """Infer the repricing period from an observed value stream.

    Returns ``None`` when the stream has fewer than *min_changes*
    changes or no candidate concentrates above *threshold*.  Candidates
    default to every whole minute from 1 to 15 — bracketing the 3-5
    minutes prior measurements suggested [6].
    """
    if candidate_periods is None:
        candidate_periods = [60.0 * m for m in range(1, 16)]
    times = change_times(series)
    if len(times) < min_changes:
        return None
    scores = tuple(
        score_period(times, period) for period in candidate_periods
    )
    strong = [s for s in scores if s.concentration >= threshold]
    if not strong:
        return None
    best = max(strong, key=lambda s: s.period_s)
    return ClockEstimate(
        period_s=best.period_s,
        phase_s=best.phase_s,
        concentration=best.concentration,
        scores=scores,
    )


def duration_quantization(
    durations: Sequence[float],
    period_s: float,
    tolerance_s: float = 30.0,
) -> float:
    """Fraction of durations within tolerance of a multiple of period.

    The paper's Fig 13 observation restated: with the true period, ~90 %
    of (pre-jitter) surge durations quantize.
    """
    if not durations:
        raise ValueError("no durations")
    if period_s <= 0:
        raise ValueError("period must be positive")
    hits = 0
    for d in durations:
        remainder = d % period_s
        if min(remainder, period_s - remainder) <= tolerance_s:
            hits += 1
    return hits / len(durations)
