"""One-shot audit report over a campaign log.

Runs the full §4/§5 observational pipeline against a single
:class:`repro.measurement.records.CampaignLog` and renders a text report
with the text-mode charts from :mod:`repro.viz`: supply/demand series,
EWT and multiplier CDFs, surge-episode durations, the discovered update
clock, and any jitter findings.  This is what ``repro.cli analyze
--full`` prints, and what a researcher would skim first after a
campaign.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geo.polygon import Polygon
from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog
from repro.analysis.clock import discover_clock, duration_quantization
from repro.analysis.jitter import JitterEvent, detect_jitter_events
from repro.analysis.supply_demand import estimate_supply_demand
from repro.analysis.surge_stats import (
    mean_multiplier,
    surge_episodes,
    surge_fraction,
)
from repro.viz.plots import cdf_chart, line_chart, sparkline


@dataclass
class AuditReport:
    """Structured results backing the rendered report."""

    city: str
    rounds: int
    clients: int
    supply_series: List[Tuple[float, float]]
    demand_series: List[Tuple[float, float]]
    surge_active_fraction: float
    mean_multiplier: float
    max_multiplier: float
    episode_durations_s: List[float]
    clock_period_s: Optional[float]
    clock_phase_s: Optional[float]
    ewts: List[float]
    jitter_events: List[JitterEvent]

    def render(self, width: int = 70) -> str:
        lines = [
            f"audit report — {self.city}",
            f"{self.rounds} rounds from {self.clients} clients",
            "",
        ]
        if self.supply_series:
            lines.append(line_chart(
                {
                    "supply": self.supply_series,
                    "demand": self.demand_series,
                },
                title="supply & demand per 5-minute interval",
                x_label="interval index", width=width,
            ))
            lines.append("")
        lines.append(
            f"surge: active {100 * self.surge_active_fraction:.0f}% of "
            f"samples, mean x{self.mean_multiplier:.2f}, "
            f"max x{self.max_multiplier:.1f}"
        )
        if self.episode_durations_s:
            lines.append(cdf_chart(
                {"durations": [d / 60.0 for d in self.episode_durations_s]},
                title="surge episode durations",
                x_label="minutes", width=width,
            ))
        if self.clock_period_s is not None:
            quantized = duration_quantization(
                self.episode_durations_s, self.clock_period_s
            ) if self.episode_durations_s else 0.0
            lines.append(
                f"update clock: period {self.clock_period_s / 60:.0f} min, "
                f"phase {self.clock_phase_s:.0f} s into the interval; "
                f"{100 * quantized:.0f}% of episode durations quantize"
            )
        else:
            lines.append("update clock: not discovered "
                         "(too few multiplier changes)")
        if self.ewts:
            lines.append(
                f"EWT: mean {statistics.mean(self.ewts):.1f} min  "
                + sparkline(self.ewts)
            )
        if self.jitter_events:
            stale_match = sum(
                1 for e in self.jitter_events
                if e.matches_previous_interval
            )
            drops = sum(1 for e in self.jitter_events if e.lowered_price)
            lines.append(
                f"jitter: {len(self.jitter_events)} events; "
                f"{100 * stale_match / len(self.jitter_events):.0f}% "
                f"equal the previous interval's multiplier; "
                f"{100 * drops / len(self.jitter_events):.0f}% lowered "
                "the shown price  <-- consistency bug signature"
            )
        else:
            lines.append("jitter: no events detected")
        return "\n".join(lines)


def audit_campaign(
    log: CampaignLog,
    boundary: Optional[Polygon] = None,
    car_type: CarType = CarType.UBERX,
) -> AuditReport:
    """Run the full observational pipeline over one campaign log."""
    estimates = estimate_supply_demand(
        log, car_type=car_type, boundary=boundary
    )
    trimmed = estimates[1:-1] if len(estimates) > 2 else estimates

    multipliers: List[float] = []
    durations: List[float] = []
    jitter_events: List[JitterEvent] = []
    ewts: List[float] = []
    clock_votes: Dict[float, List[float]] = {}
    for cid in log.client_ids:
        series = log.multiplier_series(cid, car_type)
        multipliers.extend(m for _, m in series)
        durations.extend(e.duration_s for e in surge_episodes(series))
        jitter_events.extend(detect_jitter_events(series, client_id=cid))
        estimate = discover_clock(series)
        if estimate is not None:
            clock_votes.setdefault(estimate.period_s, []).append(
                estimate.phase_s
            )
        for _, e in log.ewt_series(cid, car_type):
            if e is not None:
                ewts.append(e)

    clock_period: Optional[float] = None
    clock_phase: Optional[float] = None
    if clock_votes:
        clock_period = max(
            clock_votes, key=lambda p: len(clock_votes[p])
        )
        clock_phase = statistics.mean(clock_votes[clock_period])

    indexed = list(enumerate(multipliers))
    return AuditReport(
        city=log.city,
        rounds=len(log.rounds),
        clients=len(log.client_positions),
        supply_series=[
            (float(e.interval_index), float(e.supply)) for e in trimmed
        ],
        demand_series=[
            (float(e.interval_index), float(e.demand)) for e in trimmed
        ],
        surge_active_fraction=(
            surge_fraction(indexed) if indexed else 0.0
        ),
        mean_multiplier=(
            mean_multiplier(indexed) if indexed else 1.0
        ),
        max_multiplier=max(multipliers) if multipliers else 1.0,
        episode_durations_s=durations,
        clock_period_s=clock_period,
        clock_phase_s=clock_phase,
        ewts=ewts,
        jitter_events=jitter_events,
    )
