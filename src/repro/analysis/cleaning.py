"""Data cleaning: car tracks, short-lived-car filtering, death detection.

The methodology (§3.3, §4.1) turns raw ping rounds into per-car tracks,
then:

* **filters short-lived cars** — a car glimpsed for only a round or two
  was likely drifting past the measurement boundary, displaced from the
  nearest-8 list, or both; keeping them would inflate supply and demand;
* **detects deaths** — a car present in round *k* but absent from *every*
  client's round *k+1* died; deaths away from the region edge upper-bound
  fulfilled demand (restriction 2: edge deaths may just be cars driving
  out, so they are excluded — conservatively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geo.latlon import LatLon
from repro.geo.polygon import Polygon
from repro.marketplace.types import CarType
from repro.measurement.records import CampaignLog


@dataclass
class CarTrack:
    """Everything observed about one (randomized) car identity."""

    car_id: str
    car_type: CarType
    sightings: List[Tuple[float, float, float]] = field(
        default_factory=list
    )  # (t, lat, lon), time-sorted

    @property
    def first_seen(self) -> float:
        return self.sightings[0][0]

    @property
    def last_seen(self) -> float:
        return self.sightings[-1][0]

    @property
    def lifespan_s(self) -> float:
        """Observed lifespan (first sighting to last, §4.1 Fig 7)."""
        return self.last_seen - self.first_seen

    @property
    def last_position(self) -> LatLon:
        _, lat, lon = self.sightings[-1]
        return LatLon(lat, lon)


@dataclass(frozen=True)
class Death:
    """A car disappearing from the merged observation stream."""

    car_id: str
    car_type: CarType
    t: float  # the first round at which the car was gone
    last_position: LatLon
    near_edge: bool

    @property
    def countable(self) -> bool:
        """Counts toward fulfilled demand (not an edge disappearance)."""
        return not self.near_edge


def build_tracks(log: CampaignLog) -> Dict[str, CarTrack]:
    """Assemble per-car tracks from a campaign log.

    A car's type is taken from the per-type sample block it appeared in;
    IDs never collide across types because they identify vehicles.
    """
    tracks: Dict[str, CarTrack] = {}
    for record in log.rounds:
        # Map new car ids to their type via the sample blocks.
        for (_, car_type), sample in record.samples.items():
            for car_id in sample.car_ids:
                if car_id not in tracks:
                    tracks[car_id] = CarTrack(car_id=car_id,
                                              car_type=car_type)
        for car_id, (lat, lon) in record.cars.items():
            track = tracks.get(car_id)
            if track is not None:
                track.sightings.append((record.t, lat, lon))
    return tracks


def filter_short_lived(
    tracks: Dict[str, CarTrack],
    min_lifespan_s: float = 60.0,
) -> Dict[str, CarTrack]:
    """Drop cars observed for less than *min_lifespan_s*.

    "We can safely filter short-lived cars from our dataset, and focus
    ... only on cars that are driving within the bounds of our
    measurement area." (§4.1)
    """
    if min_lifespan_s < 0:
        raise ValueError("minimum lifespan cannot be negative")
    return {
        car_id: track
        for car_id, track in tracks.items()
        if track.lifespan_s >= min_lifespan_s
    }


def detect_deaths(
    log: CampaignLog,
    tracks: Dict[str, CarTrack],
    boundary: Optional[Polygon] = None,
    edge_margin_m: float = 150.0,
) -> List[Death]:
    """Deaths: cars that vanish from the merged stream before the end.

    A track whose last sighting precedes the final round died at the next
    round after :attr:`CarTrack.last_seen`.  With *boundary* given,
    deaths within *edge_margin_m* of it are flagged ``near_edge`` and
    excluded from demand counts by callers (§3.3 restriction 2).
    """
    if not log.rounds:
        return []
    last_round_t = log.rounds[-1].t
    round_times = [r.t for r in log.rounds]
    deaths: List[Death] = []
    for track in tracks.values():
        if not track.sightings:
            continue
        if track.last_seen >= last_round_t:
            continue  # still alive when the campaign ended
        # Death timestamp: the first round strictly after last_seen.
        t_death = next(
            (t for t in round_times if t > track.last_seen), last_round_t
        )
        pos = track.last_position
        near_edge = False
        if boundary is not None:
            near_edge = boundary.distance_to_boundary_m(pos) <= edge_margin_m
        deaths.append(
            Death(
                car_id=track.car_id,
                car_type=track.car_type,
                t=t_death,
                last_position=pos,
                near_edge=near_edge,
            )
        )
    deaths.sort(key=lambda d: d.t)
    return deaths
