"""Surge-multiplier statistics: distributions, durations, update timing.

Implements the §5.1-§5.2 analyses over per-client multiplier streams:

* the multiplier distribution (Fig 12) — sampled per round, so it is
  time-weighted exactly like the paper's "how often does it surge";
* surge *episodes* — maximal runs with multiplier > 1; their durations
  form Fig 13's CDFs, with the 5-minute stair-step visible whenever the
  stream is jitter-free;
* update *moments* — where within each 5-minute window the multiplier
  changes (Fig 15): clock updates cluster in a ~35 s band, jitter is
  uniform;
* per-interval representative multipliers — the majority value within
  each window, which "discards jitters since they are unpredictable"
  (§5.4) and feeds the correlation/forecasting analyses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.timeseries import run_lengths


@dataclass(frozen=True)
class SurgeEpisode:
    """One maximal stretch of multiplier > 1."""

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def multiplier_distribution(
    series: Sequence[Tuple[float, float]]
) -> List[float]:
    """All sampled multipliers (one per round) — Fig 12's population."""
    return [m for _, m in series]


def surge_fraction(series: Sequence[Tuple[float, float]]) -> float:
    """Fraction of samples with multiplier > 1 (1 - Fig 12's value at 1)."""
    if not series:
        raise ValueError("empty series")
    surging = sum(1 for _, m in series if m > 1.0)
    return surging / len(series)


def surge_episodes(
    series: Sequence[Tuple[float, float]]
) -> List[SurgeEpisode]:
    """Maximal multiplier-above-1 runs in a time-sorted stream (Fig 13)."""
    runs = run_lengths(series, lambda m: m > 1.0)
    return [SurgeEpisode(start_s=s, end_s=e) for s, e in runs]


def stair_step_fraction(
    episodes: Sequence[SurgeEpisode],
    interval_s: float = 300.0,
    tolerance_s: float = 30.0,
) -> float:
    """Fraction of episodes whose duration is ~a multiple of *interval_s*.

    The paper's February/API observation: 90 % of surge durations were
    multiples of 5 minutes (§5.2).
    """
    if not episodes:
        raise ValueError("no episodes")
    count = 0
    for ep in episodes:
        remainder = ep.duration_s % interval_s
        if min(remainder, interval_s - remainder) <= tolerance_s:
            count += 1
    return count / len(episodes)


def update_moments(
    series: Sequence[Tuple[float, float]],
    interval_s: float = 300.0,
) -> List[float]:
    """Seconds-into-interval of every multiplier change (Fig 15)."""
    moments: List[float] = []
    prev = None
    for t, m in series:
        if prev is not None and m != prev:
            moments.append(t % interval_s)
        prev = m
    return moments


def interval_multipliers(
    series: Sequence[Tuple[float, float]],
    interval_s: float = 300.0,
) -> Dict[int, float]:
    """Majority multiplier per interval: the clock value, jitter removed.

    Jitter occupies at most ~30 s of a 300 s window, so the modal sample
    is the true published value; ties break toward the larger multiplier
    (jitter serves *stale* values, which are usually lower).
    """
    by_interval: Dict[int, Counter] = {}
    for t, m in series:
        by_interval.setdefault(int(t // interval_s), Counter())[m] += 1
    result: Dict[int, float] = {}
    for idx, counts in by_interval.items():
        best = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        result[idx] = best[0]
    return result


def mean_multiplier(series: Sequence[Tuple[float, float]]) -> float:
    """Time-weighted mean multiplier (the paper reports 1.07 MHTN / 1.36 SF)."""
    if not series:
        raise ValueError("empty series")
    return sum(m for _, m in series) / len(series)
