"""Shared time-series utilities for the audit pipeline."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def bin_intervals(
    samples: Iterable[Tuple[float, float]],
    interval_s: float = 300.0,
) -> Dict[int, List[float]]:
    """Group ``(t, value)`` samples into fixed intervals.

    Returns interval-index -> values.  The 5-minute interval is the
    paper's universal unit of analysis (§5.2).
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    bins: Dict[int, List[float]] = {}
    for t, value in samples:
        bins.setdefault(int(t // interval_s), []).append(value)
    return bins


def interval_means(
    samples: Iterable[Tuple[float, float]],
    interval_s: float = 300.0,
) -> Dict[int, float]:
    """Per-interval means of a sample stream."""
    return {
        idx: sum(values) / len(values)
        for idx, values in bin_intervals(samples, interval_s).items()
    }


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative percentages).

    Percentages run 0-100 to match the paper's figure axes.
    """
    if len(values) == 0:
        raise ValueError("cannot compute the CDF of no data")
    xs = np.sort(np.asarray(values, dtype=float))
    ys = np.arange(1, len(xs) + 1) * (100.0 / len(xs))
    return xs, ys


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction (0-1) of values <= threshold."""
    if len(values) == 0:
        raise ValueError("cannot evaluate the CDF of no data")
    arr = np.asarray(values, dtype=float)
    return float(np.count_nonzero(arr <= threshold)) / len(arr)


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Mean and half-width of its normal-approximation CI.

    The paper reports 95 % CIs of means throughout (footnote 2).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot average no data")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    # 1.96 for 95 %; general z from the inverse error function.
    z = math.sqrt(2.0) * _erfinv(confidence)
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, half


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-4 accurate)."""
    if not -1.0 < x < 1.0:
        raise ValueError("erfinv domain is (-1, 1)")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), x
    )


def run_lengths(
    series: Sequence[Tuple[float, float]],
    predicate,
) -> List[Tuple[float, float]]:
    """Contiguous stretches of *series* where ``predicate(value)`` holds.

    *series* is time-sorted ``(t, value)``.  Returns ``(start, end)``
    pairs; the final run is closed at the last sample time.  Used for
    surge-duration extraction (Fig 13).
    """
    runs: List[Tuple[float, float]] = []
    start: Optional[float] = None
    last_t: Optional[float] = None
    for t, value in series:
        if last_t is not None and t < last_t:
            raise ValueError("series must be time-sorted")
        if predicate(value):
            if start is None:
                start = t
        else:
            if start is not None:
                runs.append((start, t))
                start = None
        last_t = t
    if start is not None and last_t is not None and last_t > start:
        runs.append((start, last_t))
    return runs
