"""Shared-memory numpy blocks and the process shard pool.

Thread shards (``repro.parallel.sharding``) parallelize the movement
kernel only as far as the GIL allows: the numpy ufuncs release it, but
every serial phase between kernels re-serializes the tick, which caps
scaling on 100k-driver metros.  This module supplies the process-backed
alternative: one :class:`SharedArrayBlock` holds the kernel-hot fleet
arrays in a single ``multiprocessing.shared_memory`` segment, and a
:class:`ProcessShardPool` runs stripe workers in separate processes
that attach the same segment by name — zero-copy reads and writes of
the very same physical pages the parent sees, so the executor swap
cannot change a single output bit (same arrays, same kernel, same
serial merge order).

**Segment lifetime rules.**  Exactly one party — the creator (the
engine's :class:`FleetArray`) — owns the segment: it creates it, and it
alone unlinks it (``MarketplaceEngine.close``, backed by a
``weakref.finalize`` so an engine that is merely dropped still cleans
up).  Workers *attach* by name in the pool initializer without
registering the attachment with the resource tracker (they share the
creator's tracker process, so a worker-side registration would
collapse into — and on exit strip — the creator's entry: the
well-known 3.x tracker over-eagerness).  The creator's own tracker
registration is kept on purpose: if the whole process tree dies hard,
the tracker still sweeps ``/dev/shm``.  A worker that dies mid-tick therefore cannot leak or
destroy the segment — the parent surfaces a clean error and its
close/finalize path unlinks as usual.

This module is importable from workers with no marketplace
dependencies; the movement kernel itself, and the worker entry points
that reconstruct the array namespace, live next to the arrays in
``repro.marketplace.fleet_array``.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory
from multiprocessing.context import BaseContext
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: One array's layout inside a block: (name, shape, dtype string).
#: Specs are plain picklable data so workers can rebuild the views from
#: ``(segment_name, specs)`` alone.
ArraySpec = Tuple[str, Tuple[int, ...], str]

def _no_register(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during worker-side
    attach (see :meth:`SharedArrayBlock.attach`)."""


#: Per-array alignment inside the segment.  64 bytes keeps every array
#: cache-line aligned (and trivially satisfies numpy's dtype alignment),
#: so two shards writing the tail of one array and the head of the next
#: never share a line.
_ALIGN = 64


def _layout(specs: Sequence[ArraySpec]) -> Tuple[List[int], int]:
    """Byte offset per spec plus the total segment size (>= 1)."""
    offsets: List[int] = []
    cursor = 0
    for _, shape, dtype in specs:
        size = int(np.dtype(dtype).itemsize) * int(np.prod(shape, dtype=np.int64))
        offsets.append(cursor)
        cursor += (size + _ALIGN - 1) // _ALIGN * _ALIGN
    return offsets, max(1, cursor)


class SharedArrayBlock:
    """A set of named numpy arrays carved out of one shared segment.

    The creator side calls :meth:`create` (zero-filled pages, exactly
    like ``np.zeros``); workers call :meth:`attach` with the pickled
    ``(name, specs)`` pair.  Views are plain ``np.ndarray`` objects over
    the segment buffer — indistinguishable from heap arrays to every
    kernel — and stay valid until :meth:`close`.
    """

    __slots__ = ("name", "specs", "arrays", "owner", "_shm")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        specs: Sequence[ArraySpec],
        owner: bool,
    ) -> None:
        self._shm = shm
        self.name = shm.name
        self.specs: Tuple[ArraySpec, ...] = tuple(specs)
        self.owner = owner
        offsets, _ = _layout(self.specs)
        self.arrays: Dict[str, np.ndarray] = {
            name: np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off
            )
            for (name, shape, dtype), off in zip(self.specs, offsets)
        }

    @classmethod
    def create(cls, specs: Sequence[ArraySpec]) -> "SharedArrayBlock":
        """Allocate a fresh zero-filled segment sized for *specs*."""
        _, total = _layout(specs)
        shm = shared_memory.SharedMemory(create=True, size=total)
        return cls(shm, specs, owner=True)

    @classmethod
    def attach(
        cls, name: str, specs: Sequence[ArraySpec]
    ) -> "SharedArrayBlock":
        """Map an existing segment by name (worker side).

        Attaching must not (re-)register the segment with the resource
        tracker: worker processes share the creator's tracker, so a
        worker-side registration followed by worker exit (or an
        explicit deregistration) would strip the creator's own entry —
        losing the hard-crash sweep and spraying tracker KeyErrors at
        unlink time.  Python 3.13 exposes ``track=False`` for exactly
        this; on older runtimes the registration call is suppressed for
        the duration of the constructor (the initializer runs
        single-threaded, and only attach paths come through here).
        """
        register = resource_tracker.register
        resource_tracker.register = _no_register
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register
        return cls(shm, specs, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view still held
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self.owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def _preferred_context() -> BaseContext:
    """Fork where available (cheap, inherits the attached parent
    segment's page tables); spawn elsewhere.  Attach-by-name in the
    initializer keeps both correct."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessShardPool:
    """A lazily-started worker *process* pool for stripe shards.

    The counterpart of :class:`~repro.parallel.sharding.ShardPool` for
    work the GIL would otherwise serialize.  Task functions must be
    module-level picklable callables; the ``initializer`` runs once per
    worker (it is where the fleet's shared block is attached, see
    ``fleet_array._shm_attach_worker``).  Like the thread pool, the
    executor is created on first use and sized at construction.

    A worker that dies mid-task breaks the executor; ``map_ordered``
    consumes every outstanding future (nothing dangles), tears the
    broken executor down, and raises one clean ``RuntimeError`` — the
    engine's tick fails loudly instead of hanging, and the segment
    itself is untouched (the parent still owns and unlinks it).
    """

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[ProcessPoolExecutor] = None  # guarded-by: _lock
        self._lock = threading.Lock()

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            executor = self._executor
            if executor is None:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=_preferred_context(),
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
                self._executor = executor
            return executor

    def map_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Run ``fn(*task)`` in worker processes; results in task order.

        Mirrors ``ShardPool.map_ordered``'s ordering contract: results
        are gathered by future, not completion.  There is no inline
        single-task shortcut — callers route single-shard ticks to the
        serial kernel themselves, exactly as they do for threads.
        """
        executor = self._ensure()
        futures: List[Future[Any]] = []
        try:
            for task in tasks:
                futures.append(executor.submit(fn, *task))
            return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            # Settle everything before tearing down: no dangling
            # futures, no half-consumed queue.
            for future in futures:
                if future.cancel():
                    continue
                try:
                    future.exception()
                except BrokenProcessPool:
                    pass
            self.shutdown()
            raise RuntimeError(
                "shard worker process died mid-tick; the tick failed "
                "cleanly and the shared segment remains owned by the "
                "engine (close() unlinks it)"
            ) from exc

    def shutdown(self) -> None:
        """Stop the worker processes (idempotent)."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)
