"""Parallel execution layer: sharded round serving + campaign sweeps.

Two coordinated pieces, both pure speed — never behaviour:

* :mod:`repro.parallel.sharding` — a worker thread pool
  (:class:`ShardPool`) that executes the per-(fleet, car-type) distance
  kernels of a batched ping round concurrently.  The numpy kernels
  release the GIL, each shard's floats are computed with the exact
  elementwise arithmetic of the serial pass, and the merge reassembles
  results in the serial path's order — so ``use_parallel_ping`` joins
  the engine's bit-identity flag matrix (``use_spatial_index`` ×
  ``use_vectorized_step`` × ``use_batched_ping`` × ``use_parallel_ping``,
  sixteen combos, all bit-identical; tier-1 enforced).

* :mod:`repro.parallel.partition` — the deterministic stripe grid
  (:class:`GridPartition`) that cuts the fleet's own state arrays into
  per-grid-block row shards so :class:`ShardedFleetState` (in
  ``repro.marketplace.fleet_array``) can run the movement kernel of a
  tick concurrently.  Assignment is by *pre-move* position, the merge
  visits shards in ascending stripe order, and the kernel is
  elementwise — so ``use_sharded_state`` joins the same bit-identity
  flag matrix at every shard count (tier-1 enforced for counts
  {1, 2, 4, 7}).

* :mod:`repro.parallel.orchestrator` — a process-pool runner for
  *independent* campaigns (multi-seed replications, dual-city runs,
  ablation sweeps): per-campaign seeding, structured JSON-serializable
  results (truth digests + metrics), crash isolation with per-campaign
  error capture, and a deterministic merge ordered by campaign key.
  Exposed as ``repro measure --jobs N`` and the :func:`run_sweep` API
  the benchmarks adopt.

* :mod:`repro.parallel.cluster` (+ :mod:`repro.parallel.wire`) — the
  multi-host extension of the orchestrator: an asyncio TCP
  dispatcher/worker pair (``repro measure --workers`` /
  ``repro worker``) that distributes the same :class:`CampaignSpec`s
  over length-prefixed canonical-JSON frames and merges
  :class:`CampaignOutcome`s in spec order, byte-identical to a local
  :func:`run_sweep` — including requeue-on-death with exactly-once
  merge (tier-1 enforced).
"""

from typing import Any

from repro.parallel.partition import GridPartition, resolve_state_shards
from repro.parallel.sharding import ShardPool, plan_shards, resolve_workers

__all__ = [
    "GridPartition",
    "ShardPool",
    "plan_shards",
    "resolve_state_shards",
    "resolve_workers",
    # orchestrator/cluster names are re-exported lazily below to keep
    # the marketplace -> sharding import light (the engine imports this
    # package; the orchestrator imports the engine).
    "CampaignSpec",
    "CampaignOutcome",
    "run_sweep",
    "execute_campaign",
    "truth_digest",
    "ensure_unique_keys",
    "SweepDispatcher",
    "ClusterWorker",
    "run_cluster_sweep",
]

_ORCHESTRATOR_NAMES = frozenset(
    {
        "CampaignSpec",
        "CampaignOutcome",
        "run_sweep",
        "execute_campaign",
        "truth_digest",
        "ensure_unique_keys",
    }
)

_CLUSTER_NAMES = frozenset(
    {"SweepDispatcher", "ClusterWorker", "run_cluster_sweep"}
)


def __getattr__(name: str) -> Any:  # pragma: no cover - lazy re-export
    if name in _ORCHESTRATOR_NAMES:
        from repro.parallel import orchestrator

        return getattr(orchestrator, name)
    if name in _CLUSTER_NAMES:
        from repro.parallel import cluster

        return getattr(cluster, name)
    raise AttributeError(name)
