"""Wire protocol for the distributed sweep cluster.

Length-prefixed canonical-JSON frames: a 4-byte big-endian length
header followed by the message body encoded with
:func:`repro.api.serialize.canonical_json` — the same byte encoding
the ASGI service uses, so a :class:`CampaignOutcome` that crossed the
wire hashes identically to one produced in-process.

Message vocabulary (all frames are JSON objects with a ``type`` key):

* ``hello``   — worker -> dispatcher, once per session: protocol
  version + local job slots.
* ``next``    — worker -> dispatcher: one pull request for one spec
  (the worker sends one per free slot, so the queue is pull-based and
  heterogeneous hosts load-balance naturally).
* ``spec``    — dispatcher -> worker: an assigned
  :class:`CampaignSpec` plus its sweep index.
* ``outcome`` — worker -> dispatcher: the finished
  :class:`CampaignOutcome` for a sweep index.
* ``done``    — dispatcher -> worker: no work left; drain and hang up.

Codec invariants:

* ``spec_from_wire(spec_to_wire(s)) == s`` exactly (``engine_flags``
  round-trips list-of-pairs <-> tuple-of-tuples).
* ``outcome_from_wire`` tolerates payloads without ``wall_s`` so old
  recorded outcomes stay loadable (schema is backward-compatible).
* Frames above :data:`MAX_FRAME_BYTES` are refused on both sides —
  outcomes are scalar digests/metrics by contract, never logs.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.api.serialize import canonical_json
from repro.parallel.orchestrator import CampaignOutcome, CampaignSpec

#: Bump on any incompatible message/codec change; ``hello`` carries it
#: and the dispatcher refuses mismatched workers instead of guessing.
PROTOCOL_VERSION = 1

#: Hard cap on one frame.  Outcomes are digest + scalar metrics
#: (campaign logs go to disk on the worker via ``spec.out``), so a
#: frame anywhere near this is a protocol violation, not real data.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER_BYTES = 4

MSG_HELLO = "hello"
MSG_NEXT = "next"
MSG_SPEC = "spec"
MSG_OUTCOME = "outcome"
MSG_DONE = "done"


class WireError(ValueError):
    """A malformed, truncated, oversized, or out-of-protocol frame."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message to ``[u32 length][canonical JSON]`` bytes."""
    body = canonical_json(message)
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(body)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return len(body).to_bytes(_HEADER_BYTES, "big") + body


def write_frame(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
    """Queue one encoded frame on ``writer`` (caller awaits ``drain``).

    The frame is handed to the transport in a single ``write`` call, so
    concurrent senders on one connection can never interleave partial
    frames.
    """
    writer.write(encode_frame(message))


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF mid-frame, an oversized length, a non-JSON body, or a body that
    is not an object with a ``type`` key all raise :class:`WireError` —
    a half-frame is a dead peer, never silently dropped data.
    """
    try:
        header = await reader.readexactly(_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise WireError("connection closed mid frame header") from exc
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid frame body") from exc
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("type"), str
    ):
        raise WireError("frame body is not a typed message object")
    return payload


# ----------------------------------------------------------------------
# Message constructors
# ----------------------------------------------------------------------


def hello_message(jobs: int) -> Dict[str, Any]:
    return {
        "type": MSG_HELLO,
        "protocol": PROTOCOL_VERSION,
        "jobs": int(jobs),
    }


def next_message() -> Dict[str, Any]:
    return {"type": MSG_NEXT}


def spec_message(index: int, spec: CampaignSpec) -> Dict[str, Any]:
    return {"type": MSG_SPEC, "index": int(index), "spec": spec_to_wire(spec)}


def outcome_message(index: int, outcome: CampaignOutcome) -> Dict[str, Any]:
    return {
        "type": MSG_OUTCOME,
        "index": int(index),
        "outcome": outcome_to_wire(outcome),
    }


def done_message() -> Dict[str, Any]:
    return {"type": MSG_DONE}


# ----------------------------------------------------------------------
# Dataclass codecs
# ----------------------------------------------------------------------


def spec_to_wire(spec: CampaignSpec) -> Dict[str, Any]:
    """JSON-safe :class:`CampaignSpec` (tuples become lists)."""
    return {
        "key": spec.key,
        "city": spec.city,
        "seed": spec.seed,
        "hours": spec.hours,
        "warmup_hours": spec.warmup_hours,
        "ping_interval_s": spec.ping_interval_s,
        "jitter": spec.jitter,
        "max_clients": spec.max_clients,
        "out": spec.out,
        "engine_flags": [[name, value] for name, value in spec.engine_flags],
    }


def spec_from_wire(payload: Dict[str, Any]) -> CampaignSpec:
    """Inverse of :func:`spec_to_wire`; raises :class:`WireError`."""
    try:
        flags: Tuple[Tuple[str, object], ...] = tuple(
            (str(pair[0]), pair[1]) for pair in payload["engine_flags"]
        )
        return CampaignSpec(
            key=str(payload["key"]),
            city=str(payload["city"]),
            seed=int(payload["seed"]),
            hours=float(payload["hours"]),
            warmup_hours=float(payload["warmup_hours"]),
            ping_interval_s=float(payload["ping_interval_s"]),
            jitter=float(payload["jitter"]),
            max_clients=(
                None
                if payload["max_clients"] is None
                else int(payload["max_clients"])
            ),
            out=None if payload["out"] is None else str(payload["out"]),
            engine_flags=flags,
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise WireError(f"malformed spec payload: {exc}") from exc


def outcome_to_wire(outcome: CampaignOutcome) -> Dict[str, Any]:
    """JSON-safe :class:`CampaignOutcome` — exactly ``to_json()``."""
    return outcome.to_json()


def outcome_from_wire(payload: Dict[str, Any]) -> CampaignOutcome:
    """Inverse of :func:`outcome_to_wire`; raises :class:`WireError`.

    ``wall_s`` is optional so pre-cluster outcome JSON stays loadable.
    """
    try:
        metrics = payload.get("metrics")
        return CampaignOutcome(
            key=str(payload["key"]),
            ok=bool(payload["ok"]),
            truth_digest=payload.get("truth_digest"),
            metrics=(
                None
                if metrics is None
                else {str(k): float(v) for k, v in metrics.items()}
            ),
            out_path=payload.get("out_path"),
            error=payload.get("error"),
            traceback=payload.get("traceback"),
            wall_s=(
                None
                if payload.get("wall_s") is None
                else float(payload["wall_s"])
            ),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WireError(f"malformed outcome payload: {exc}") from exc
