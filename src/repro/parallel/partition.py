"""Spatial partitioning of fleet state for sharded engine ticks.

PR 5 sharded round *serving* (the per-round distance matrices); this
module shards the fleet *state* itself, so the movement kernel of
:meth:`FleetArray.begin_step` can tick per surge area / grid block on
several cores at once (ROADMAP item 2).  The partition is a fixed
stripe grid over the region bounding box: deterministic, cheap to
assign (one ``searchsorted`` per tick against the movers' *pre-move*
positions), and balanced for the roughly uniform metro fleets the
scenarios spawn.

**Why stripes, not surge polygons.**  A per-surge-area partition would
need the full point-in-polygon gather every tick and would leave
drivers outside every area unassigned; the stripe grid covers the
whole plane (coordinates beyond the bounding box clamp into the edge
stripes), costs one vectorized binary search, and still aligns with
the surge geography because surge areas tile the same bounding box the
stripes cut.  The stripes cut the box's longer physical axis so shard
borders stay short — fewer drivers sit near a border, and a mover
crossing a border mid-tick is simply assigned by the position it
*started* the tick at (the serial semantics: every mover advances from
its pre-step position, so pre-move assignment partitions exactly the
rows the serial kernel would touch).

**Determinism.**  A :class:`GridPartition` is a pure function of the
bounding box and the shard count — never of load, the clock, or
insertion order — so the same fleet always splits the same way, and
the sharded step's merge order (ascending shard index) is reproducible
run over run.  Bit-identity of the sharded tick itself comes from the
movement kernel being elementwise (see ``fleet_array.py``); this
module only ever decides *which rows go where*, never arithmetic.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional

import numpy as np

from repro.geo.latlon import EARTH_RADIUS_M

#: Default cap on state shards when ``state_shards`` is left unset:
#: matches the round-serving worker cap (repro.parallel.sharding) so an
#: auto-configured engine never oversubscribes the machine with two
#: competing pools.
DEFAULT_STATE_SHARD_CAP = 4


def resolve_state_shards(shards: Optional[int]) -> int:
    """Effective shard count for sharded fleet state.

    ``None`` picks ``min(DEFAULT_STATE_SHARD_CAP, cpu_count)`` —
    sharded by default on multi-core machines, serial (1) on
    single-core ones where extra shards could only add overhead.  An
    explicit count is honoured as given (tests force odd counts like 3
    and 7 on single-core CI to exercise the merge path).
    """
    if shards is None:
        return max(1, min(DEFAULT_STATE_SHARD_CAP, os.cpu_count() or 1))
    if shards < 1:
        raise ValueError("state shards must be >= 1")
    return shards


class GridPartition:
    """Deterministic stripe partition of a lat/lon bounding box.

    The box is cut into ``shards`` equal-width stripes along its longer
    physical axis (longitude stripes for wide boxes, latitude stripes
    for tall ones, measured in metres at the box's mid-latitude so
    high-latitude cities pick the right axis).  Interior edges come
    from one ``np.linspace`` over the box extent; assignment is one
    vectorized ``searchsorted``, and points outside the box fall into
    the nearest edge stripe, so every coordinate — including a wanderer
    nudged past the boundary — always has exactly one shard.
    """

    __slots__ = ("shards", "by_lon", "_edges")

    def __init__(
        self,
        south: float,
        north: float,
        west: float,
        east: float,
        shards: int,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not (north > south and east > west):
            raise ValueError("degenerate bounding box")
        self.shards = shards
        mid_lat = (south + north) / 2.0
        width_m = (
            math.radians(east - west)
            * EARTH_RADIUS_M
            * math.cos(math.radians(mid_lat))
        )
        height_m = math.radians(north - south) * EARTH_RADIUS_M
        self.by_lon = width_m >= height_m
        lo, hi = (west, east) if self.by_lon else (south, north)
        # Interior stripe edges only: searchsorted(side="right") then
        # yields codes 0..shards-1 with out-of-box points clamped into
        # the first/last stripe for free.
        self._edges: np.ndarray = np.linspace(lo, hi, shards + 1)[1:-1]

    def assign(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Shard code (``0..shards-1``) per coordinate pair."""
        coords = lons if self.by_lon else lats
        return np.searchsorted(self._edges, coords, side="right")

    def split_rows(
        self,
        rows: np.ndarray,
        lats: np.ndarray,
        lons: np.ndarray,
    ) -> List[np.ndarray]:
        """Split *rows* into per-shard row arrays by position.

        *lats*/*lons* are full coordinate arrays indexed by row (the
        fleet's position arrays); each returned array keeps *rows*'s
        relative order (so per-shard work visits rows ascending when
        the input is ascending), the arrays are pairwise disjoint and
        cover the input, and empty shards are dropped.  With one shard
        (or an empty input) the input comes back whole — callers can
        hand the result straight to a worker pool either way.
        """
        if self.shards == 1 or rows.size == 0:
            return [rows]
        codes = self.assign(lats[rows], lons[rows])
        # One comparison pass per shard: the mask is both the emptiness
        # test and the selector (evaluating ``codes == s`` twice made
        # this O(2 · shards · n) every tick).
        out: List[np.ndarray] = []
        for s in range(self.shards):
            mask = codes == s
            if mask.any():
                out.append(rows[mask])
        return out
