"""Shard planning and the worker thread pool for batched round serving.

The batched ping path (PR 4) answers a whole lock-step round with one
distance matrix per (fleet, car type).  Those matrices are independent
of each other, and *within* a matrix every ping-location row is
independent too (the stable per-row top-k never looks across rows) — so
the round's vectorized pass decomposes into **shards**: per-(car type,
location-block) tasks that can run concurrently on a thread pool.  The
numpy kernels (``radians``/``cos``/``sqrt`` ufuncs, ``argsort``) release
the GIL on the array sizes the shards see, so plain threads deliver real
parallelism without any cross-process copying of fleet state.

**Why bit-identity survives threading.**  Shards share *read-only*
inputs (the dispatchable-rows coordinate gather, the round's ping
locations) and write only their own preallocated outputs.  Each shard
computes the exact elementwise arithmetic of the serial pass —
elementwise ufuncs give the same float for the same element regardless
of how the array is blocked — and the merge concatenates shard outputs
in the serial pass's (car type, location) order.  No RNG is consumed
anywhere on the round-serving path.  Scheduling order therefore cannot
reach a single output bit, which is what lets ``use_parallel_ping``
join the engine's bit-identity flag matrix.

:func:`plan_shards` is deterministic (a pure function of the segment
sizes, the location count, and the worker/granularity settings); it
never consults the clock or load, so the same query always produces the
same shard set — only execution interleaving varies.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: Default cap on worker threads when ``workers`` is left unset: enough
#: to saturate the per-round kernels at bench scale, small enough not to
#: oversubscribe typical CI boxes.
DEFAULT_WORKER_CAP = 4

#: A shard: (segment_index, s0, s1, r0, r1) — columns [s0:s1) of the
#: dispatchable struct (one car type), ping-location rows [r0:r1).
Shard = Tuple[int, int, int, int, int]


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count for a shard pool.

    ``None`` picks ``min(DEFAULT_WORKER_CAP, cpu_count)`` — parallel by
    default on multi-core machines, serial (1) on single-core ones where
    threads could only add overhead.  An explicit count is honoured as
    given (tests force >1 on single-core CI to exercise the threaded
    merge path).
    """
    if workers is None:
        return max(1, min(DEFAULT_WORKER_CAP, os.cpu_count() or 1))
    if workers < 1:
        raise ValueError("parallel workers must be >= 1")
    return workers


def plan_shards(
    n_locations: int,
    segment_sizes: Sequence[int],
    workers: int,
    min_elements: int,
) -> List[Shard]:
    """Split a round's per-type matrices into worker shards.

    Each segment (car type) of width ``m`` yields an
    ``n_locations × m`` matrix.  Segments are split along the
    location axis into up to ``workers`` blocks, but never so finely
    that a shard falls below ``min_elements`` matrix entries — below
    that, dispatch overhead beats the kernel time and the segment stays
    whole.  Empty segments yield no shard.  Deterministic: depends only
    on the arguments.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if min_elements < 1:
        raise ValueError("min_elements must be >= 1")
    shards: List[Shard] = []
    for seg_i, m in enumerate(segment_sizes):
        if m <= 0 or n_locations <= 0:
            continue
        elements = n_locations * m
        blocks = min(workers, max(1, elements // min_elements), n_locations)
        for b in range(blocks):
            r0 = n_locations * b // blocks
            r1 = n_locations * (b + 1) // blocks
            if r1 > r0:
                shards.append((seg_i, 0, m, r0, r1))
    return shards


class ShardPool:
    """A lazily-started worker thread pool for round-serving shards.

    The pool is created on first use, never at import time, and is
    sized at construction; idle threads cost nothing between rounds and
    exit when the pool (and the engine owning it) is garbage-collected.
    ``min_elements`` is the granularity floor handed to
    :func:`plan_shards`; queries whose total work falls below it are
    served inline without touching the pool at all, so toy-scale
    engines pay zero threading overhead.
    """

    def __init__(
        self,
        workers: int,
        min_elements: int = 32768,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if min_elements < 1:
            raise ValueError("min_elements must be >= 1")
        self.workers = workers
        self.min_elements = min_elements
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock
        # Engines sharing one pool across round-serving threads hit
        # _ensure concurrently; an unlocked check-then-create can build
        # two executors and strand one (its threads live until process
        # exit).  The lock covers only creation/teardown — map_ordered
        # itself stays lock-free on the executor handle it got back.
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            executor = self._executor
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard",
                )
                self._executor = executor
            return executor

    def map_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task; results in *task order*.

        Submission order equals task order and results are gathered by
        future, not by completion, so the caller's merge sees the same
        sequence however the threads interleave.  The first shard
        exception propagates (after all futures settle) — a failing
        shard must fail the round, not silently drop replies.
        """
        if len(tasks) == 1:
            return [fn(*tasks[0])]
        executor = self._ensure()
        futures: List[Future[Any]] = [
            executor.submit(fn, *task) for task in tasks
        ]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Stop the worker threads (tests; engines just drop the pool)."""
        with self._lock:
            executor = self._executor
            self._executor = None
        # Join the threads outside the lock: a worker blocked on
        # _ensure must not deadlock against shutdown(wait=True).
        if executor is not None:
            executor.shutdown(wait=True)
