"""Distributed sweep dispatch: a multi-host campaign cluster over TCP.

Extends :mod:`repro.parallel.orchestrator`'s process-pool sweep across
machines: a dispatcher hands :class:`CampaignSpec`s to worker hosts
over length-prefixed canonical-JSON frames (:mod:`repro.parallel.wire`)
and merges the returned :class:`CampaignOutcome`s in spec order —
byte-identical to a local :func:`run_sweep` over the same specs.

Contracts (all tier-1 enforced by ``tests/test_cluster.py``):

* **Pull-based queue.**  Workers request specs one ``next`` frame per
  free slot; the dispatcher never pushes unrequested work, so slow and
  fast hosts load-balance naturally.
* **Nothing lost, nothing doubled.**  A worker disconnect, death, or
  per-spec timeout requeues the in-flight spec (bounded by
  ``max_attempts``, then a structured failure outcome).  Merges are
  first-outcome-wins by sweep index: a spec that was requeued and then
  answered twice is merged exactly once, late duplicates are dropped.
* **Crash isolation.**  A campaign that fails on a worker comes back
  as the same structured error outcome :func:`run_sweep` would build;
  an abandoned spec becomes a failure outcome naming the reason and
  attempt count.  Sibling campaigns are never affected.
* **Byte identity.**  Outcome *identity* (digests, metrics, key,
  failure shape — everything except the ``wall_s`` wall-clock
  metadata) is byte-identical across sequential, pooled, and cluster
  dispatch for the same specs.  Campaigns are seeded per spec, so
  where they run can never matter.

Initiation is symmetric: either side can listen and either can dial —
``repro worker --listen`` + ``repro measure --workers`` is the
two-terminal quickstart; ``repro measure --cluster-listen`` +
``repro worker --connect`` suits workers behind NAT.  The protocol a
side speaks depends only on its role, never on who opened the socket.

Dispatcher state is event-loop confined (``guarded-by: <event-loop>``):
every mutation happens on the loop that runs the connection handlers,
so no locks are needed and the merge order is exactly spec order.
"""

from __future__ import annotations

import asyncio
import traceback as traceback_module
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.parallel import wire
from repro.parallel.orchestrator import (
    CampaignOutcome,
    CampaignSpec,
    ensure_unique_keys,
    execute_campaign,
)
from repro.parallel.sharding import resolve_workers

#: Assignment attempts per spec before the dispatcher gives up and
#: synthesizes a structured failure outcome.
DEFAULT_MAX_ATTEMPTS = 3


def parse_hostport(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with a clear error."""
    host, sep, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not sep or not host or not 0 <= port <= 65535:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, port


def _default_executor_factory(jobs: int) -> Executor:
    return ProcessPoolExecutor(max_workers=jobs)


class _WorkerConnection:
    """Dispatcher-side record of one connected worker session."""

    __slots__ = ("writer", "jobs", "in_flight", "released")

    def __init__(self, writer: asyncio.StreamWriter, jobs: int) -> None:
        self.writer = writer
        self.jobs = jobs
        #: sweep index -> assignment id, for every spec this worker is
        #: currently computing; drained back to the queue on release.
        self.in_flight: Dict[int, int] = {}
        self.released = False


class SweepDispatcher:
    """Serve one sweep to any number of worker connections.

    Construct with the specs (duplicate keys rejected immediately, the
    same submit-time contract as :func:`run_sweep`), then attach
    workers via :meth:`listen` and/or :meth:`dial`, and await
    :meth:`outcomes` for the spec-ordered result list.
    """

    def __init__(
        self,
        specs: Sequence[CampaignSpec],
        *,
        spec_timeout_s: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        specs = list(specs)
        ensure_unique_keys(specs)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if spec_timeout_s is not None and spec_timeout_s <= 0:
            raise ValueError("spec_timeout_s must be positive")
        self._specs: List[CampaignSpec] = specs
        self._spec_timeout_s = spec_timeout_s
        self._max_attempts = max_attempts
        # Everything below is touched only from the event loop that
        # runs the connection handlers — loop confinement is the lock.
        self._results: List[Optional[CampaignOutcome]] = [None] * len(specs)  # guarded-by: <event-loop>
        self._pending: Deque[int] = deque(range(len(specs)))  # guarded-by: <event-loop>
        self._attempts: List[int] = [0] * len(specs)  # guarded-by: <event-loop>
        self._assignment_seq = 0  # guarded-by: <event-loop>
        self._current_assignment: Dict[int, int] = {}  # guarded-by: <event-loop>
        self._watchdogs: Dict[int, "asyncio.Task[None]"] = {}  # guarded-by: <event-loop>
        self._parked: Deque[_WorkerConnection] = deque()  # guarded-by: <event-loop>
        self._remaining = len(specs)  # guarded-by: <event-loop>
        self._conn_tasks: Set["asyncio.Task[None]"] = set()  # guarded-by: <event-loop>
        self._server: Optional["asyncio.Server"] = None  # guarded-by: <event-loop>
        self._done = asyncio.Event()
        if self._remaining == 0:
            self._done.set()
        # Observability counters (tests and the bench read these).
        self.workers_seen = 0  # guarded-by: <event-loop>
        self.requeues = 0  # guarded-by: <event-loop>
        self.timeouts = 0  # guarded-by: <event-loop>
        self.duplicates_dropped = 0  # guarded-by: <event-loop>

    # -- attachment ----------------------------------------------------

    async def listen(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Accept dialing workers; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("dispatcher is already listening")
        self._server = await asyncio.start_server(
            self._accepted, host=host, port=port
        )
        sockets = self._server.sockets
        name = sockets[0].getsockname()
        return str(name[0]), int(name[1])

    async def _accepted(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One accepted worker session, tracked like a dialed one.

        Registering in ``_conn_tasks`` lets :meth:`aclose` cancel
        accepted sessions too; absorbing the cancellation here keeps
        it out of the asyncio.streams done-callback, which would
        re-raise it into the loop's exception handler as noise.
        """
        task = asyncio.current_task()
        if task is not None:  # pragma: no branch - tasks always current
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self.handle_connection(reader, writer)
        except asyncio.CancelledError:
            pass

    async def dial(self, host: str, port: int) -> None:
        """Connect out to a listening worker and serve it this sweep."""
        reader, writer = await asyncio.open_connection(host, port)
        task = asyncio.create_task(self.handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    # -- results -------------------------------------------------------

    async def outcomes(self) -> List[CampaignOutcome]:
        """Wait for the sweep; one outcome per spec, spec order."""
        await self._done.wait()
        merged: List[CampaignOutcome] = []
        for outcome in self._results:
            if outcome is None:  # pragma: no cover - done implies merged
                raise RuntimeError("sweep finished with an unmerged spec")
            merged.append(outcome)
        return merged

    async def aclose(self) -> None:
        """Stop listening, drop live connections, cancel watchdogs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for watchdog in list(self._watchdogs.values()):
            watchdog.cancel()
        self._watchdogs.clear()
        conn_tasks = list(self._conn_tasks)
        for task in conn_tasks:
            task.cancel()
        if conn_tasks:
            await asyncio.gather(*conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    # -- protocol ------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Speak the dispatcher side of one worker session.

        Works identically whether the TCP connection was accepted
        (:meth:`listen`) or initiated (:meth:`dial`).  Any protocol or
        transport error releases the connection: its in-flight specs
        requeue and the rest of the sweep is untouched.
        """
        conn: Optional[_WorkerConnection] = None
        try:
            hello = await wire.read_frame(reader)
            if hello is None:
                return
            if hello.get("type") != wire.MSG_HELLO:
                raise wire.WireError(
                    f"expected hello, got {hello.get('type')!r}"
                )
            if hello.get("protocol") != wire.PROTOCOL_VERSION:
                raise wire.WireError(
                    f"protocol mismatch: worker speaks "
                    f"{hello.get('protocol')!r}, dispatcher speaks "
                    f"{wire.PROTOCOL_VERSION}"
                )
            conn = _WorkerConnection(writer, jobs=int(hello.get("jobs", 1)))
            self.workers_seen += 1
            while True:
                message = await wire.read_frame(reader)
                if message is None:
                    break
                kind = message["type"]
                if kind == wire.MSG_NEXT:
                    await self._grant(conn)
                elif kind == wire.MSG_OUTCOME:
                    await self._absorb(conn, message)
                else:
                    raise wire.WireError(
                        f"unexpected {kind!r} frame from worker"
                    )
        except (wire.WireError, ConnectionError, OSError):
            pass  # dead or misbehaving worker; requeue handles the rest
        finally:
            if conn is not None:
                await self._release(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _grant(self, conn: _WorkerConnection) -> None:
        """Answer one ``next``: assign a spec, park, or send ``done``."""
        if conn.released:
            return
        index = self._next_index()
        if index is not None:
            await self._assign(conn, index)
        elif self._remaining == 0:
            try:
                wire.write_frame(conn.writer, wire.done_message())
                await conn.writer.drain()
            except (ConnectionError, OSError):
                await self._release(conn)
        else:
            # No spec free right now, but the sweep is not finished: a
            # requeue may still need this slot.  Park the request; it
            # is answered by _pump (on requeue) or _finish (sweep end).
            self._parked.append(conn)

    def _next_index(self) -> Optional[int]:  # guarded-by: <event-loop>
        """Pop the next unmerged pending index, skipping stale entries.

        A requeued index whose late outcome already merged stays in
        ``_pending`` until popped here — merged slots are simply
        skipped, which is what makes requeue + late-merge race-free.
        """
        while self._pending:
            index = self._pending.popleft()
            if self._results[index] is None:
                return index
        return None

    async def _assign(self, conn: _WorkerConnection, index: int) -> None:
        self._assignment_seq += 1
        assignment = self._assignment_seq
        self._attempts[index] += 1
        self._current_assignment[index] = assignment
        conn.in_flight[index] = assignment
        if self._spec_timeout_s is not None:
            # Kept by index so merge/release can cancel it (REP102: the
            # watchdog task's lifetime is owned by this dict).
            self._watchdogs[index] = asyncio.create_task(
                self._expire(index, assignment, conn)
            )
        try:
            wire.write_frame(
                conn.writer, wire.spec_message(index, self._specs[index])
            )
            await conn.writer.drain()
        except (ConnectionError, OSError):
            await self._release(conn)

    async def _absorb(
        self, conn: _WorkerConnection, message: Dict[str, Any]
    ) -> None:
        raw_index = message.get("index")
        if not isinstance(raw_index, int) or not (
            0 <= raw_index < len(self._specs)
        ):
            raise wire.WireError(f"outcome for unknown index {raw_index!r}")
        payload = message.get("outcome")
        if not isinstance(payload, dict):
            raise wire.WireError("outcome frame missing outcome object")
        outcome = wire.outcome_from_wire(payload)
        if outcome.key != self._specs[raw_index].key:
            raise wire.WireError(
                f"outcome key {outcome.key!r} does not match spec "
                f"{self._specs[raw_index].key!r} at index {raw_index}"
            )
        conn.in_flight.pop(raw_index, None)
        await self._merge(raw_index, outcome)

    async def _merge(self, index: int, outcome: CampaignOutcome) -> None:
        """First outcome wins; late duplicates are dropped, counted."""
        watchdog = self._watchdogs.pop(index, None)
        if watchdog is not None:
            watchdog.cancel()
        self._current_assignment.pop(index, None)
        if self._results[index] is not None:
            self.duplicates_dropped += 1
            return
        self._results[index] = outcome
        self._remaining -= 1
        if self._remaining == 0:
            await self._finish()

    async def _release(self, conn: _WorkerConnection) -> None:
        """Detach a connection; requeue everything it was computing."""
        if conn.released:
            return
        conn.released = True
        lost = sorted(conn.in_flight)
        conn.in_flight.clear()
        for index in lost:
            watchdog = self._watchdogs.pop(index, None)
            if watchdog is not None:
                watchdog.cancel()
            self._current_assignment.pop(index, None)
            await self._recycle(index, "worker connection lost mid-campaign")

    async def _expire(
        self, index: int, assignment: int, conn: _WorkerConnection
    ) -> None:
        timeout = self._spec_timeout_s
        if timeout is None:  # pragma: no cover - only spawned with one
            return
        await asyncio.sleep(timeout)
        if self._current_assignment.get(index) != assignment:
            return
        self._current_assignment.pop(index, None)
        self._watchdogs.pop(index, None)
        conn.in_flight.pop(index, None)
        self.timeouts += 1
        await self._recycle(index, f"no outcome within {timeout:g}s")

    async def _recycle(self, index: int, reason: str) -> None:
        """Requeue a lost assignment, or abandon it after max attempts.

        Abandonment mirrors :func:`run_sweep`'s crash isolation: the
        spec gets a structured failure outcome naming the reason, and
        sibling campaigns are untouched.
        """
        if self._results[index] is not None:
            return
        attempts = self._attempts[index]
        if attempts >= self._max_attempts:
            spec = self._specs[index]
            await self._merge(
                index,
                CampaignOutcome(
                    key=spec.key,
                    ok=False,
                    error=(
                        f"cluster: {reason} "
                        f"(attempt {attempts}/{self._max_attempts}; "
                        f"spec abandoned)"
                    ),
                ),
            )
        else:
            self.requeues += 1
            self._pending.append(index)
            await self._pump()

    async def _pump(self) -> None:
        """Hand requeued specs to parked ``next`` requests."""
        while self._parked:
            index = self._next_index()
            if index is None:
                return
            conn = self._parked.popleft()
            if conn.released:
                self._pending.appendleft(index)
                continue
            await self._assign(conn, index)

    async def _finish(self) -> None:
        self._done.set()
        while self._parked:
            conn = self._parked.popleft()
            if conn.released:
                continue
            try:
                wire.write_frame(conn.writer, wire.done_message())
                await conn.writer.drain()
            except (ConnectionError, OSError):
                pass


class ClusterWorker:
    """Run campaigns for a dispatcher over one or many sessions.

    Wraps :func:`execute_campaign` behind a local executor (by default
    a :class:`ProcessPoolExecutor` of ``jobs`` workers, so the PR 9
    shared-memory shard machinery composes underneath unchanged).  One
    ``next`` is pulled per free slot; outcomes stream back as they
    finish.  A broken executor is rebuilt and reported per campaign —
    never propagated to the session.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        executor_factory: Optional[Callable[[int], Executor]] = None,
    ) -> None:
        self.jobs = resolve_workers(jobs)
        self._executor_factory = executor_factory or _default_executor_factory
        self._executor: Optional[Executor] = None  # guarded-by: <event-loop>
        self._server: Optional["asyncio.Server"] = None  # guarded-by: <event-loop>
        self.campaigns_run = 0  # guarded-by: <event-loop>

    # -- attachment ----------------------------------------------------

    async def connect(self, host: str, port: int) -> None:
        """Dial a listening dispatcher; returns when the sweep is done."""
        reader, writer = await asyncio.open_connection(host, port)
        await self.handle_connection(reader, writer)

    async def listen(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Accept dialing dispatchers; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("worker is already listening")
        self._server = await asyncio.start_server(
            self._accepted, host=host, port=port
        )
        sockets = self._server.sockets
        name = sockets[0].getsockname()
        return str(name[0]), int(name[1])

    async def _accepted(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One accepted dispatcher session; absorbs teardown
        cancellation so it never reaches the asyncio.streams
        done-callback (which re-raises it as loop noise).
        ``handle_connection`` has already cancelled the session's
        in-flight campaigns by the time the cancellation lands here."""
        try:
            await self.handle_connection(reader, writer)
        except asyncio.CancelledError:
            pass

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call listen() before serve_forever()")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._shutdown_executor()

    # -- protocol ------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Speak the worker side of one dispatcher session."""
        tasks: Set["asyncio.Task[None]"] = set()
        try:
            wire.write_frame(writer, wire.hello_message(self.jobs))
            for _ in range(self.jobs):
                wire.write_frame(writer, wire.next_message())
            await writer.drain()
            while True:
                message = await wire.read_frame(reader)
                if message is None or message["type"] == wire.MSG_DONE:
                    break
                if message["type"] != wire.MSG_SPEC:
                    raise wire.WireError(
                        f"unexpected {message['type']!r} frame "
                        f"from dispatcher"
                    )
                raw_index = message.get("index")
                if not isinstance(raw_index, int):
                    raise wire.WireError("spec frame missing integer index")
                spec_payload = message.get("spec")
                if not isinstance(spec_payload, dict):
                    raise wire.WireError("spec frame missing spec object")
                spec = wire.spec_from_wire(spec_payload)
                # Kept in the set (and gathered below) so a slow
                # campaign outlives the read loop — REP102 lifetime.
                task = asyncio.create_task(
                    self._run_one(writer, raw_index, spec)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (wire.WireError, ConnectionError, OSError):
            pass  # dispatcher vanished or confused; it requeues for us
        except asyncio.CancelledError:
            # Session torn down from outside: don't wait for in-flight
            # campaigns (the drain below would deadlock on them).
            for task in tasks:
                task.cancel()
            raise
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _run_one(
        self, writer: asyncio.StreamWriter, index: int, spec: CampaignSpec
    ) -> None:
        outcome = await self._execute(spec)
        self.campaigns_run += 1
        try:
            wire.write_frame(writer, wire.outcome_message(index, outcome))
            wire.write_frame(writer, wire.next_message())
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # session died; the dispatcher requeues this spec

    async def _execute(self, spec: CampaignSpec) -> CampaignOutcome:
        loop = asyncio.get_running_loop()
        try:
            executor = self._ensure_executor()
            return await loop.run_in_executor(
                executor, execute_campaign, spec
            )
        except BaseException as exc:  # noqa: BLE001 - crash isolation
            if isinstance(
                exc, (KeyboardInterrupt, SystemExit, asyncio.CancelledError)
            ):
                raise
            # A BrokenProcessPool poisons every later submit; rebuild
            # so the next spec gets a fresh pool.  The failure itself
            # is reported per campaign, run_sweep's isolation shape.
            self._shutdown_executor()
            return CampaignOutcome(
                key=spec.key,
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback_module.format_exc(),
            )

    def _ensure_executor(self) -> Executor:  # guarded-by: <event-loop>
        if self._executor is None:
            self._executor = self._executor_factory(self.jobs)
        return self._executor

    def _shutdown_executor(self) -> None:  # guarded-by: <event-loop>
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


# ----------------------------------------------------------------------
# Synchronous entry points (the CLI and benches call these)
# ----------------------------------------------------------------------


def run_cluster_sweep(
    specs: Sequence[CampaignSpec],
    workers: Sequence[str],
    *,
    spec_timeout_s: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> List[CampaignOutcome]:
    """Dial listening workers and dispatch; spec-ordered outcomes.

    The distributed counterpart of :func:`run_sweep` — same input, same
    output contract, same submit-time duplicate-key rejection.
    """
    addresses = [parse_hostport(address) for address in workers]
    if not addresses:
        raise ValueError("run_cluster_sweep needs at least one worker")

    async def _run() -> List[CampaignOutcome]:
        dispatcher = SweepDispatcher(
            specs, spec_timeout_s=spec_timeout_s, max_attempts=max_attempts
        )
        try:
            for host, port in addresses:
                await dispatcher.dial(host, port)
            return await dispatcher.outcomes()
        finally:
            await dispatcher.aclose()

    return asyncio.run(_run())


def run_listening_sweep(
    specs: Sequence[CampaignSpec],
    listen: str,
    *,
    spec_timeout_s: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    announce: Optional[Callable[[str], None]] = None,
) -> List[CampaignOutcome]:
    """Listen for dialing workers (``repro worker --connect``) instead.

    ``announce`` receives the bound ``"host:port"`` once accepting —
    the CLI prints it so workers know where to dial (port 0 binds an
    ephemeral port).
    """
    host, port = parse_hostport(listen)

    async def _run() -> List[CampaignOutcome]:
        dispatcher = SweepDispatcher(
            specs, spec_timeout_s=spec_timeout_s, max_attempts=max_attempts
        )
        try:
            bound_host, bound_port = await dispatcher.listen(host, port)
            if announce is not None:
                announce(f"{bound_host}:{bound_port}")
            return await dispatcher.outcomes()
        finally:
            await dispatcher.aclose()

    return asyncio.run(_run())


def run_worker_connect(
    address: str, jobs: Optional[int] = None
) -> int:
    """Dial a dispatcher, work until it says ``done``; campaigns run."""
    host, port = parse_hostport(address)

    async def _run() -> int:
        worker = ClusterWorker(jobs=jobs)
        try:
            await worker.connect(host, port)
            return worker.campaigns_run
        finally:
            await worker.aclose()

    return asyncio.run(_run())


def run_worker_listen(
    address: str,
    jobs: Optional[int] = None,
    announce: Optional[Callable[[str], None]] = None,
) -> None:
    """Listen and serve dispatchers until interrupted.

    ``announce`` receives the bound ``"host:port"`` (the CLI prints it;
    the cluster bench parses it to learn ephemeral ports).
    """
    host, port = parse_hostport(address)

    async def _run() -> None:
        worker = ClusterWorker(jobs=jobs)
        try:
            bound_host, bound_port = await worker.listen(host, port)
            if announce is not None:
                announce(f"{bound_host}:{bound_port}")
            await worker.serve_forever()
        finally:
            await worker.aclose()

    asyncio.run(_run())
