"""Process-pool orchestration of independent measurement campaigns.

The paper's workload shape is *many independent deterministic runs*:
43-client fleets for four weeks in two cities, a 172-client taxi
validation, multi-seed replications, ablation sweeps, the figure-bench
suite.  Campaigns never share state — each gets its own engine, its own
seed, its own truth log — so they parallelize across worker *processes*
with no coordination beyond the result hand-back.

Contracts:

* **Per-campaign seeding.**  A :class:`CampaignSpec` carries its own
  seed; :func:`execute_campaign` builds a fresh engine from it, so a
  sweep's campaigns are bit-identical to running each spec alone (and
  to the ``jobs=1`` sequential path — tier-1 enforced).
* **Structured hand-back.**  Workers return a JSON-serializable
  :class:`CampaignOutcome` (truth digest + scalar metrics), never live
  engines or logs — large artefacts go to disk via ``spec.out``.
* **Crash isolation.**  A campaign that raises yields an error outcome
  carrying the exception and traceback; sibling campaigns complete
  unaffected, and a broken worker process is likewise reported per
  campaign rather than poisoning the sweep.
* **Deterministic merge.**  :func:`run_sweep` returns outcomes in
  *spec order* (specs are keyed, keys must be unique), whatever order
  the workers finish in.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, cast

from repro.marketplace.config import CityConfig, manhattan_config, sf_config
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.measurement.fleet import Fleet, MarketplaceWorld
from repro.measurement.placement import place_clients
from repro.parallel.sharding import resolve_workers

#: City name -> config factory, the same names ``repro measure --city``
#: accepts.  Factories take the jitter probability.
CITY_CONFIGS: Dict[str, Callable[[float], CityConfig]] = {
    "manhattan": lambda jitter: manhattan_config(jitter_probability=jitter),
    "sf": lambda jitter: sf_config(jitter_probability=jitter),
}


@dataclass(frozen=True)
class CampaignSpec:
    """One independent campaign in a sweep.

    Plain picklable data — specs cross the process boundary.  ``key``
    must be unique within a sweep; it names the campaign in outcomes
    and fixes the merge order.
    """

    key: str
    city: str
    seed: int
    hours: float
    warmup_hours: float = 0.0
    ping_interval_s: float = 5.0
    jitter: float = 0.25
    max_clients: Optional[int] = None
    #: Save the campaign log here (JSON lines; ``.gz`` compresses).
    #: ``None`` keeps the run digest-only — nothing hits disk.
    out: Optional[str] = None
    #: Engine perf-flag overrides as ``(name, value)`` pairs, e.g.
    #: ``(("use_parallel_ping", False),)``.  Restricted to the engine's
    #: ``use_*`` flags plus ``parallel_workers`` / ``state_shards`` /
    #: ``shard_executor``; anything else is a spec error (reported as a
    #: structured outcome, not a crash).
    engine_flags: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("spec key must be non-empty")


@dataclass(frozen=True)
class CampaignOutcome:
    """What one campaign handed back (JSON-serializable throughout).

    ``ok`` campaigns carry a truth digest (sha256 over the engine's
    canonical IntervalTruth stream — the golden-campaign hash shape)
    and scalar metrics; failed ones carry the error and its traceback.
    ``wall_s`` is per-campaign wall time — measurement metadata for
    straggler-skew reporting, deliberately *outside* the deterministic
    identity (see :meth:`identity`) and optional in the JSON schema so
    pre-existing recorded outcomes stay loadable.
    """

    key: str
    ok: bool
    truth_digest: Optional[str] = None
    metrics: Optional[Dict[str, float]] = None
    out_path: Optional[str] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    wall_s: Optional[float] = None

    def to_json(self) -> Dict[str, object]:
        return asdict(self)

    def identity(self) -> Dict[str, object]:
        """The deterministic fields — everything except ``wall_s``.

        Byte-identity checks (local vs pooled vs cluster-dispatched
        sweeps) compare these: digests, metrics, spec key, failure
        shape.  Wall time legitimately differs between runs and hosts,
        so it is metadata, never identity.
        """
        payload = asdict(self)
        del payload["wall_s"]
        return payload


_ALLOWED_FLAGS = frozenset(
    {
        "use_spatial_index",
        "use_vectorized_step",
        "use_batched_ping",
        "use_parallel_ping",
        "parallel_workers",
        "use_sharded_state",
        "state_shards",
        "shard_executor",
    }
)


def truth_digest(engine: MarketplaceEngine) -> str:
    """sha256 over the engine's canonical IntervalTruth stream.

    The same sorted-key JSON shape the golden-campaign test hashes:
    equal digests mean bit-identical truth logs, which is the currency
    every bit-identity check in this repo trades in.
    """
    payload = [
        {
            "interval_index": t.interval_index,
            "start_s": t.start_s,
            "online_by_type": {
                ct.name: n
                for ct, n in sorted(
                    t.online_by_type.items(), key=lambda kv: kv[0].name
                )
            },
            "distinct_online_uberx": t.distinct_online_uberx,
            "fulfilled_by_area": {
                str(k): v for k, v in sorted(t.fulfilled_by_area.items())
            },
            "requests_by_area": {
                str(k): v for k, v in sorted(t.requests_by_area.items())
            },
            "priced_out": t.priced_out,
            "unfulfilled": t.unfulfilled,
            "mean_idle_uberx_by_area": {
                str(k): v
                for k, v in sorted(t.mean_idle_uberx_by_area.items())
            },
            "multipliers": {
                str(k): v for k, v in sorted(t.multipliers.items())
            },
            "mean_ewt_by_area": {
                str(k): v for k, v in sorted(t.mean_ewt_by_area.items())
            },
        }
        for t in engine.truth
    ]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def execute_campaign(spec: CampaignSpec) -> CampaignOutcome:
    """Run one campaign start to finish; never raises.

    Module-level and spec-in/outcome-out so it pickles cleanly as a
    :class:`~concurrent.futures.ProcessPoolExecutor` work item.  Any
    exception — bad spec, engine error, disk error on save — becomes a
    structured error outcome; crash isolation is this function's job,
    so a sweep's other campaigns never see a sibling's failure.
    """
    started = time.perf_counter()  # repro: noqa=REP002 -- wall_s is measurement metadata (straggler skew), excluded from outcome identity; never feeds simulation state
    try:
        factory = CITY_CONFIGS.get(spec.city)
        if factory is None:
            raise ValueError(
                f"unknown city {spec.city!r} "
                f"(use one of {sorted(CITY_CONFIGS)})"
            )
        flags = dict(spec.engine_flags)
        unknown = sorted(set(flags) - _ALLOWED_FLAGS)
        if unknown:
            raise ValueError(f"unknown engine flags: {unknown}")
        config = factory(spec.jitter)
        engine = MarketplaceEngine(
            config, seed=spec.seed, **cast(Dict[str, Any], flags)
        )
        positions = place_clients(
            config.region, max_clients=spec.max_clients
        )
        fleet = Fleet(
            positions,
            car_types=[CarType.UBERX],
            ping_interval_s=spec.ping_interval_s,
        )
        log = fleet.run(
            MarketplaceWorld(engine),
            duration_s=spec.hours * 3600.0,
            city=spec.city,
            warmup_s=spec.warmup_hours * 3600.0,
        )
        if spec.out is not None:
            log.save(spec.out)
        metrics: Dict[str, float] = {
            "rounds": float(len(log.rounds)),
            "clients": float(len(log.client_positions)),
            "truth_intervals": float(len(engine.truth)),
            "trips_completed": float(len(engine.completed_trips)),
        }
        digest = truth_digest(engine)
        engine.close()
        return CampaignOutcome(
            key=spec.key,
            ok=True,
            truth_digest=digest,
            metrics=metrics,
            out_path=spec.out,
            wall_s=time.perf_counter() - started,  # repro: noqa=REP002 -- wall_s is measurement metadata (straggler skew), excluded from outcome identity; never feeds simulation state
        )
    except BaseException as exc:  # noqa: BLE001 - isolation is the contract
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return CampaignOutcome(
            key=spec.key,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
            wall_s=time.perf_counter() - started,  # repro: noqa=REP002 -- wall_s is measurement metadata (straggler skew), excluded from outcome identity; never feeds simulation state
        )


def ensure_unique_keys(specs: Sequence[CampaignSpec]) -> None:
    """Reject duplicate campaign keys with a clear error at submit time.

    Keys name outcomes and fix the merge order; a duplicate would
    silently alias cache files and merge slots.  Shared by
    :func:`run_sweep` and the cluster dispatcher so both entry points
    enforce the same contract before any work is assigned.
    """
    keys = [spec.key for spec in specs]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate campaign keys: {dupes}")


def run_sweep(
    specs: Sequence[CampaignSpec],
    jobs: Optional[int] = None,
) -> List[CampaignOutcome]:
    """Execute independent campaigns, one outcome per spec, spec order.

    ``jobs=None`` resolves like the shard pool's worker count
    (``min(4, cpu_count)``); ``jobs=1`` — or a single spec — runs
    sequentially in-process, which is also the bit-identity reference
    the parallel path must match.  Worker crashes that kill the process
    itself (so :func:`execute_campaign` couldn't catch them) surface as
    error outcomes for the campaigns that were lost — as do failures of
    ``submit`` itself — while completed siblings keep their results:
    every spec yields exactly one outcome, no matter where the failure
    struck.  The merge is by spec position — completion order can never
    reorder or drop a campaign.
    """
    specs = list(specs)
    ensure_unique_keys(specs)
    if not specs:
        return []
    effective_jobs = min(resolve_workers(jobs), len(specs))
    if effective_jobs <= 1:
        return [execute_campaign(spec) for spec in specs]
    outcomes: Dict[str, CampaignOutcome] = {}
    with ProcessPoolExecutor(max_workers=effective_jobs) as executor:
        # Guarded submission: ``executor.submit`` itself can raise (a
        # pool already broken by a dead worker, interpreter shutdown).
        # An unguarded comprehension would let that escape with every
        # not-yet-submitted spec silently dropped — no outcome at all,
        # violating the crash-isolation contract above.  Each failed
        # submit becomes that spec's structured error outcome instead,
        # and the remaining specs still get their turn.
        futures: Dict[Future[CampaignOutcome], CampaignSpec] = {}
        for spec in specs:
            try:
                futures[executor.submit(execute_campaign, spec)] = spec
            except BaseException as exc:  # noqa: BLE001 - see above
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                outcomes[spec.key] = CampaignOutcome(
                    key=spec.key,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback_module.format_exc(),
                )
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                spec = futures[future]
                try:
                    outcomes[spec.key] = future.result()
                except BaseException as exc:  # BrokenProcessPool et al.
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    outcomes[spec.key] = CampaignOutcome(
                        key=spec.key,
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback_module.format_exc(),
                    )
    return [outcomes[spec.key] for spec in specs]
