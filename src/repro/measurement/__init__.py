"""The measurement apparatus (§3) — the paper's methodology, as code.

A *fleet* of emulated app clients (43 in the paper) is placed on a grid
covering the measurement region, each pinging the service every 5 seconds
and logging responses.  The same fleet code measures the marketplace
simulator and the taxi-trace replayer, because both hide behind
:class:`repro.api.ping.PingServer`.

* :mod:`repro.measurement.client` — one emulated Client app;
* :mod:`repro.measurement.fleet` — fleet orchestration and campaign runs;
* :mod:`repro.measurement.records` — the observation log model;
* :mod:`repro.measurement.calibrate` — the §3.4 calibration experiments
  (visibility radius, determinism, surge non-impact);
* :mod:`repro.measurement.placement` — grid placement from the calibrated
  radius.
"""

from repro.measurement.records import (
    CampaignLog,
    ClientSample,
    RoundRecord,
)
from repro.measurement.client import MeasurementClient
from repro.measurement.fleet import (
    Fleet,
    MarketplaceWorld,
    TaxiWorld,
    World,
)
from repro.measurement.campaign import CampaignPlan, CampaignResult
from repro.measurement.placement import place_clients
from repro.measurement.scheduler import ProbePlan, RequestScheduler
from repro.measurement.calibrate import (
    CalibrationReport,
    check_determinism,
    check_surge_impact,
    visibility_radius,
    visibility_radius_profile,
)

__all__ = [
    "CampaignLog",
    "ClientSample",
    "RoundRecord",
    "MeasurementClient",
    "Fleet",
    "MarketplaceWorld",
    "TaxiWorld",
    "World",
    "place_clients",
    "CampaignPlan",
    "CampaignResult",
    "ProbePlan",
    "RequestScheduler",
    "CalibrationReport",
    "check_determinism",
    "check_surge_impact",
    "visibility_radius",
    "visibility_radius_profile",
]
