"""Turnkey measurement campaigns: the paper's §3 as one call.

:class:`CampaignPlan` bundles the full workflow the paper runs before
and during data collection — calibration, placement, fleet construction,
warm-up, collection, persistence — so a user goes from a city config to
an analyzable log in one step::

    from repro.marketplace import manhattan_config
    from repro.measurement.campaign import CampaignPlan

    plan = CampaignPlan.for_city(manhattan_config(), hours=6.0)
    result = plan.execute(seed=42)
    result.log.save("manhattan.jsonl.gz")
    print(result.describe())

`calibrate=True` additionally runs the §3.4 pre-flight experiments
(visibility radius at the region centre, determinism, surge non-impact)
and records their outcomes; the radius found is used for placement when
``use_calibrated_radius`` is set, exactly as the paper derived its
200 m / 350 m spacings from measurement rather than assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.geo.latlon import LatLon
from repro.marketplace.config import CityConfig
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.measurement.calibrate import (
    CalibrationReport,
    check_determinism,
    visibility_radius,
)
from repro.measurement.fleet import Fleet, MarketplaceWorld
from repro.measurement.placement import place_clients
from repro.measurement.records import CampaignLog


@dataclass(frozen=True)
class CampaignResult:
    """Everything a completed campaign produced."""

    log: CampaignLog
    engine: MarketplaceEngine
    client_positions: Tuple[LatLon, ...]
    calibrated_radius_m: Optional[float]
    determinism: Optional[CalibrationReport]

    def describe(self) -> str:
        parts = [
            f"{self.log.city}: {len(self.log.rounds)} rounds from "
            f"{len(self.client_positions)} clients"
        ]
        if self.calibrated_radius_m is not None:
            parts.append(
                f"calibrated radius {self.calibrated_radius_m:.0f} m"
            )
        if self.determinism is not None:
            parts.append(
                "determinism "
                + ("ok" if self.determinism.passed else "FAILED")
            )
        return "; ".join(parts)


@dataclass(frozen=True)
class CampaignPlan:
    """A declarative description of one measurement campaign."""

    config: CityConfig
    duration_s: float
    warmup_s: float = 4 * 3600.0
    ping_interval_s: float = 5.0
    car_types: Optional[Tuple[CarType, ...]] = (CarType.UBERX,)
    calibrate: bool = False
    use_calibrated_radius: bool = False
    max_clients: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.warmup_s < 0:
            raise ValueError("warm-up cannot be negative")
        if self.use_calibrated_radius and not self.calibrate:
            raise ValueError(
                "use_calibrated_radius requires calibrate=True"
            )

    @classmethod
    def for_city(
        cls,
        config: CityConfig,
        hours: float,
        warmup_hours: float = 4.0,
        **kwargs,
    ) -> "CampaignPlan":
        """The common case: measure *hours* after a warm-up."""
        return cls(
            config=config,
            duration_s=hours * 3600.0,
            warmup_s=warmup_hours * 3600.0,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def execute(self, seed: int = 0) -> CampaignResult:
        """Run the campaign end to end on a fresh engine."""
        engine = MarketplaceEngine(self.config, seed=seed)
        world = MarketplaceWorld(engine)
        region = self.config.region

        radius: Optional[float] = None
        determinism: Optional[CalibrationReport] = None
        if self.calibrate:
            # Pre-flight, like the paper's Dec 2013 - Feb 2014 phase.
            if self.warmup_s > 0:
                world.advance(self.warmup_s)
            center = region.bounding_box.center
            radius = visibility_radius(world, center)
            determinism = check_determinism(
                world, center, n_clients=8, rounds=12
            )

        placement_radius = (
            radius
            if (self.use_calibrated_radius and radius is not None)
            else region.client_radius_m
        )
        positions = place_clients(
            region, radius_m=placement_radius,
            max_clients=self.max_clients,
        )
        fleet = Fleet(
            positions,
            car_types=self.car_types,
            ping_interval_s=self.ping_interval_s,
        )
        log = fleet.run(
            world,
            duration_s=self.duration_s,
            city=region.name,
            warmup_s=0.0 if self.calibrate else self.warmup_s,
        )
        return CampaignResult(
            log=log,
            engine=engine,
            client_positions=tuple(positions),
            calibrated_radius_m=radius,
            determinism=determinism,
        )
