"""Client placement from the calibrated visibility radius.

"Once we know the visibility radius in SF and Manhattan, we can determine
the placement of our 43 clients." (§3.4)  The paper chose 200 m for
midtown Manhattan and 350 m for downtown SF, spacing clients so their
visibility circles blanket the region — "a conscientious trade-off
between obtaining complete coverage of supply/demand and covering a large
overall geographic area."
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geo.latlon import LatLon
from repro.geo.regions import CityRegion
from repro.geo.grid import GridSpec, _cover


def place_clients(
    region: CityRegion,
    radius_m: Optional[float] = None,
    spacing_factor: float = 2.0,
    max_clients: Optional[int] = None,
) -> Tuple[LatLon, ...]:
    """Grid positions for a measurement fleet covering *region*.

    ``spacing_factor`` scales the inter-client spacing relative to the
    radius: 2.0 (tangent circles, the paper's economical choice — 43
    accounts were all they had), sqrt(2) for gap-free square packing.

    ``max_clients`` caps the fleet size by uniform subsampling; raising a
    too-small grid is not attempted (fewer clients = undercoverage, which
    the validation experiment will reveal, by design).
    """
    if radius_m is None:
        radius_m = region.client_radius_m
    if radius_m <= 0:
        raise ValueError("radius must be positive")
    if spacing_factor <= 0:
        raise ValueError("spacing_factor must be positive")
    spacing = radius_m * spacing_factor
    spec: GridSpec = _cover(
        region.boundary,
        radius_m,
        spacing_m=spacing,
        row_offset_fraction=0.0,
        row_spacing_m=spacing,
        include_margin=False,  # clients sit inside the region (Fig 3)
    )
    points = list(spec.points)
    if max_clients is not None and len(points) > max_clients:
        stride = len(points) / max_clients
        points = [points[int(i * stride)] for i in range(max_clients)]
    return tuple(points)
