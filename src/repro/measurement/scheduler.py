"""API request budgeting across measurement accounts.

The REST API allows 1 000 requests/hour per account (§3.2).  The paper's
wide-area experiments (surge-area discovery over "Manhattan and SF over
the course of eight days", §5.3) therefore had to spread queries over
the 43 accounts.  :class:`RequestScheduler` plans that spreading:

* :meth:`plan` — given a probe workload (points × rounds × queries per
  point) and a round period, compute how many accounts are needed and
  assign each query an account, round-robin by available budget;
* :meth:`account_for` — at run time, pick the least-loaded account that
  still has budget in the current window, tracking spend.

The scheduler works in simulated time and composes with
:class:`repro.api.ratelimit.RateLimiter` — the limiter *enforces*, the
scheduler *avoids* ever hitting it.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ProbePlan:
    """A feasible assignment of a probe workload to accounts."""

    accounts_needed: int
    queries_per_round: int
    rounds_per_hour: float
    queries_per_account_per_hour: float

    def describe(self) -> str:
        return (
            f"{self.queries_per_round} queries/round at "
            f"{self.rounds_per_hour:.1f} rounds/h -> "
            f"{self.accounts_needed} accounts "
            f"({self.queries_per_account_per_hour:.0f} req/h each)"
        )


class RequestScheduler:
    """Plans and tracks per-account API spend under the hourly cap.

    **Thread safety.**  Budget accounting (:meth:`account_for`,
    :meth:`total_spent`) is guarded by a lock: the parallel layer runs
    round-serving shards on engine worker threads and whole campaigns
    on worker processes, and while neither currently calls into a
    scheduler off the campaign's own thread (see :meth:`Fleet.run
    <repro.measurement.fleet.Fleet.run>`), spend tracking is exactly
    the kind of read-modify-write state a future threaded probe driver
    would corrupt silently — the lock makes the invariant structural
    instead of conventional.  Lock-free reads of planning methods
    (:meth:`plan`, :meth:`make_accounts`) stay lock-free: they touch no
    mutable state.
    """

    def __init__(
        self,
        limit_per_hour: int = 1000,
        window_s: float = 3600.0,
        safety_margin: float = 0.9,
    ) -> None:
        if limit_per_hour <= 0:
            raise ValueError("limit must be positive")
        if not 0.0 < safety_margin <= 1.0:
            raise ValueError("safety margin must be in (0, 1]")
        self.limit_per_hour = limit_per_hour
        self.window_s = window_s
        self.safety_margin = safety_margin
        self._spend: Dict[str, List[float]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def effective_limit(self) -> int:
        # Clamped to 1: truncation would zero out small limits (e.g.
        # limit 1 × margin 0.9), making account_for reject every
        # account and plan divide by zero.
        return max(1, int(self.limit_per_hour * self.safety_margin))

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        queries_per_round: int,
        round_period_s: float,
    ) -> ProbePlan:
        """How many accounts does this workload need?

        Raises :class:`ValueError` for unsatisfiable workloads (a single
        round alone cannot exceed accounts × limit — the caller must
        shrink the probe grid or slow the cadence, exactly the trade-off
        §3.4 discusses).
        """
        if queries_per_round <= 0:
            raise ValueError("need at least one query per round")
        if round_period_s <= 0:
            raise ValueError("round period must be positive")
        rounds_per_hour = self.window_s / round_period_s
        hourly_queries = queries_per_round * rounds_per_hour
        accounts = max(1, math.ceil(hourly_queries / self.effective_limit))
        return ProbePlan(
            accounts_needed=accounts,
            queries_per_round=queries_per_round,
            rounds_per_hour=rounds_per_hour,
            queries_per_account_per_hour=hourly_queries / accounts,
        )

    def make_accounts(self, plan: ProbePlan, prefix: str = "probe") -> List[str]:
        return [f"{prefix}{i:03d}" for i in range(plan.accounts_needed)]

    # ------------------------------------------------------------------
    # Runtime assignment
    # ------------------------------------------------------------------
    def _live_spend(self, account: str, now: float) -> int:  # guarded-by: _lock
        history = self._spend.get(account, [])
        cutoff = now - self.window_s
        # Compact expired entries opportunistically.
        live = [t for t in history if t > cutoff]
        self._spend[account] = live
        return len(live)

    def account_for(
        self, accounts: Sequence[str], now: float
    ) -> Optional[str]:
        """The least-loaded account with remaining budget, or ``None``.

        Records the request against the returned account.
        """
        if not accounts:
            raise ValueError("no accounts supplied")
        with self._lock:
            best: Optional[str] = None
            best_spend = None
            for account in accounts:
                spend = self._live_spend(account, now)
                if spend >= self.effective_limit:
                    continue
                if best_spend is None or spend < best_spend:
                    best = account
                    best_spend = spend
            if best is None:
                return None
            self._spend.setdefault(best, []).append(now)
            return best

    def total_spent(self, now: float) -> int:
        with self._lock:
            return sum(
                self._live_spend(account, now) for account in self._spend
            )
