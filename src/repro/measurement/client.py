"""A single emulated measurement client.

"We wrote a script that emulates the exact behavior of the Client app.
Our script logs-in to Uber, sends pingClient messages every 5 seconds,
and records the responses.  By controlling the latitude and longitude
sent by the script, we can collect data from arbitrary locations." (§3.3)

Each client owns an account ID (the paper created 43 accounts) and a
geolocation it reports.  The location is mutable — the calibration
experiments "walk" clients outward (§3.4), and the avoidance strategy
moves the pickup pin (§6).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.geo.latlon import LatLon
from repro.api.models import PingReply
from repro.api.ping import PingServer
from repro.marketplace.types import CarType
from repro.measurement.records import ClientSample


class MeasurementClient:
    """One emulated Client app instance."""

    def __init__(
        self,
        client_id: str,
        location: LatLon,
        car_types: Optional[Sequence[CarType]] = None,
    ) -> None:
        if not client_id:
            raise ValueError("client_id cannot be empty")
        self.client_id = client_id
        self.location = location
        self.car_types = None if car_types is None else tuple(car_types)
        self.pings_sent = 0

    def ping(self, server: PingServer) -> PingReply:
        """Send one pingClient message and return the raw reply."""
        self.pings_sent += 1
        return server.ping(self.client_id, self.location, self.car_types)

    def observe(
        self, server: PingServer
    ) -> Tuple[Dict[CarType, ClientSample], Dict[str, Tuple[float, float]]]:
        """Ping and digest the reply into log-ready samples.

        Returns per-type samples plus the positions of every car seen, for
        merging into the fleet's round record.
        """
        return self._digest(self.ping(server))

    def absorb(
        self, reply: PingReply
    ) -> Tuple[Dict[CarType, ClientSample], Dict[str, Tuple[float, float]]]:
        """Digest a reply served out-of-band (a batched round).

        Identical to :meth:`observe` except the reply arrives from
        ``PingServer.serve_round`` instead of an individual ping; the
        client still accounts it as one ping sent.
        """
        self.pings_sent += 1
        return self._digest(reply)

    def _digest(
        self, reply: PingReply
    ) -> Tuple[Dict[CarType, ClientSample], Dict[str, Tuple[float, float]]]:
        samples: Dict[CarType, ClientSample] = {}
        cars: Dict[str, Tuple[float, float]] = {}
        for status in reply.statuses:
            samples[status.car_type] = ClientSample(
                multiplier=status.surge_multiplier,
                ewt_minutes=status.ewt_minutes,
                car_ids=tuple(c.car_id for c in status.cars),
            )
            for car in status.cars:
                cars[car.car_id] = (car.location.lat, car.location.lon)
        return samples, cars

    def walk_to(self, location: LatLon) -> None:
        """Report a new geolocation from now on."""
        self.location = location

    def walk_by(self, north_m: float, east_m: float) -> None:
        """Displace the reported geolocation by metres north/east."""
        self.location = self.location.offset(north_m, east_m)
