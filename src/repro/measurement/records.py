"""Observation log model.

A campaign produces one :class:`RoundRecord` per ping round: every
client's per-type sample (multiplier, EWT, which cars it saw) plus a
merged map of every distinct car sighted that round.  The merge mirrors
how the paper aggregates its 43 response streams before analysis — supply
is "the total number of unique cars observed across all measurement
points" (§3.3) — while per-client multiplier streams stay separate
because jitter strikes per client (§5.2).

Logs serialize to JSON-lines so campaigns can be generated once (they are
expensive) and re-analysed many times, like the paper's 996 GB archive.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.geo.latlon import LatLon
from repro.marketplace.types import CarType


@dataclass(frozen=True)
class ClientSample:
    """What one client recorded for one car type in one round."""

    multiplier: float
    ewt_minutes: Optional[float]
    car_ids: Tuple[str, ...]


@dataclass
class RoundRecord:
    """All observations from one ping round (one timestamp)."""

    t: float
    #: (client_id, car_type) -> sample
    samples: Dict[Tuple[str, CarType], ClientSample]
    #: car_id -> last-known position this round (merged across clients)
    cars: Dict[str, Tuple[float, float]]

    def multiplier(self, client_id: str, car_type: CarType) -> Optional[float]:
        sample = self.samples.get((client_id, car_type))
        return None if sample is None else sample.multiplier


@dataclass
class CampaignLog:
    """A full measurement campaign: rounds plus fleet metadata."""

    city: str
    client_positions: Dict[str, LatLon]
    ping_interval_s: float
    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def client_ids(self) -> List[str]:
        return sorted(self.client_positions)

    @property
    def duration_s(self) -> float:
        if len(self.rounds) < 2:
            return 0.0
        return self.rounds[-1].t - self.rounds[0].t

    def car_types(self) -> List[CarType]:
        types = set()
        for record in self.rounds:
            for (_, car_type) in record.samples:
                types.add(car_type)
        return sorted(types, key=lambda t: t.value)

    def multiplier_series(
        self, client_id: str, car_type: CarType
    ) -> List[Tuple[float, float]]:
        """(t, multiplier) stream for one client, skipping missing rounds."""
        series = []
        for record in self.rounds:
            sample = record.samples.get((client_id, car_type))
            if sample is not None:
                series.append((record.t, sample.multiplier))
        return series

    def ewt_series(
        self, client_id: str, car_type: CarType
    ) -> List[Tuple[float, Optional[float]]]:
        series = []
        for record in self.rounds:
            sample = record.samples.get((client_id, car_type))
            if sample is not None:
                series.append((record.t, sample.ewt_minutes))
        return series

    # ------------------------------------------------------------------
    # Persistence (JSON lines: one header line, then one line per round;
    # a ``.gz`` suffix gzip-compresses transparently — campaign logs
    # shrink ~10x, which matters at the paper's near-terabyte scale)
    # ------------------------------------------------------------------
    @staticmethod
    def _open(path: Union[str, Path], mode: str) -> TextIO:
        if str(path).endswith(".gz"):
            return gzip.open(path, mode + "t")
        return open(path, mode)

    def save(self, path: Union[str, Path]) -> None:
        with self._open(path, "w") as f:
            header = {
                "city": self.city,
                "ping_interval_s": self.ping_interval_s,
                "clients": {
                    cid: [p.lat, p.lon]
                    for cid, p in self.client_positions.items()
                },
            }
            f.write(json.dumps(header) + "\n")
            for record in self.rounds:
                row = {
                    "t": record.t,
                    "samples": [
                        [cid, ct.value, s.multiplier, s.ewt_minutes,
                         list(s.car_ids)]
                        for (cid, ct), s in record.samples.items()
                    ],
                    "cars": {
                        car_id: [lat, lon]
                        for car_id, (lat, lon) in record.cars.items()
                    },
                }
                f.write(json.dumps(row) + "\n")

    @classmethod
    def load(
        cls, path: Union[str, Path], strict: bool = True
    ) -> "CampaignLog":
        """Load a campaign log written by :meth:`save`.

        With ``strict`` (default), any malformed line raises
        :class:`ValueError` naming the offending line — silent data loss
        would corrupt every downstream figure.  With ``strict=False``,
        damaged *round* lines are skipped (a truncated final line is the
        common artefact of an interrupted campaign) and the log loads
        with whatever rounds survive; a damaged header is always fatal.
        """
        with cls._open(path, "r") as f:
            header_line = f.readline()
            try:
                header = json.loads(header_line)
                log = cls(
                    city=header["city"],
                    client_positions={
                        cid: LatLon(lat, lon)
                        for cid, (lat, lon) in header["clients"].items()
                    },
                    ping_interval_s=header["ping_interval_s"],
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}: not a campaign log (bad header): {exc}"
                ) from exc
            for line_no, line in enumerate(f, start=2):
                try:
                    row = json.loads(line)
                    samples = {
                        (cid, CarType(ct)): ClientSample(
                            multiplier=mult,
                            ewt_minutes=ewt,
                            car_ids=tuple(ids),
                        )
                        for cid, ct, mult, ewt, ids in row["samples"]
                    }
                    cars = {
                        car_id: (lat, lon)
                        for car_id, (lat, lon) in row["cars"].items()
                    }
                    record = RoundRecord(
                        t=row["t"], samples=samples, cars=cars
                    )
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError) as exc:
                    if strict:
                        raise ValueError(
                            f"{path}: corrupt round at line {line_no}: "
                            f"{exc}"
                        ) from exc
                    continue
                log.rounds.append(record)
        return log
