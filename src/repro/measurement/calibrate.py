"""Calibration experiments (§3.4).

Three experiments precede any data collection:

1. **Determinism** — place many clients at the same geolocation; all must
   receive exactly the same vehicles, multipliers, and EWTs.  (Run it
   against a jitter-free world, as the paper did in late 2013 / early
   2014 — with the April-2015 bug active, multipliers differ per client,
   which is precisely how the bug was later noticed.)
2. **Surge non-impact** — 43 clients parked in a quiet residential spot at
   4am must record multiplier 1 throughout: the measurement apparatus
   itself must not induce surge.
3. **Visibility radius** — four clients start together and walk 20 m
   NE/NW/SE/SW every 5 s until they no longer share a single observed
   car; the radius is ``r = sum(D_c) / (4 * sqrt(2)) ~= 0.1768 * sum(D_c)``
   (a 45-45-90 triangle argument with D the hypotenuse).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geo.latlon import LatLon
from repro.marketplace.types import CarType
from repro.measurement.client import MeasurementClient
from repro.measurement.fleet import World

#: The paper's constant: 1 / (4 * sqrt(2)).
RADIUS_COEFFICIENT = 0.1768

#: Each calibration step moves a client 20 m diagonally (§3.4).
_STEP_M = 20.0
_DIAG = _STEP_M / math.sqrt(2.0)
_DIRECTIONS = (
    (+_DIAG, +_DIAG),   # NE
    (+_DIAG, -_DIAG),   # NW
    (-_DIAG, +_DIAG),   # SE
    (-_DIAG, -_DIAG),   # SW
)


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of a determinism or surge-impact check."""

    passed: bool
    rounds: int
    detail: str = ""


def check_determinism(
    world: World,
    location: LatLon,
    n_clients: int = 43,
    rounds: int = 60,
    car_type: CarType = CarType.UBERX,
) -> CalibrationReport:
    """Do co-located clients all see the same world?

    Compares car-ID sets, EWTs, and surge multipliers across *n_clients*
    clients pinging from the identical coordinate.
    """
    clients = [
        MeasurementClient(f"cal{i:02d}", location, [car_type])
        for i in range(n_clients)
    ]
    for round_no in range(rounds):
        observations = []
        for client in clients:
            samples, _ = client.observe(world.server)
            sample = samples.get(car_type)
            observations.append(
                None
                if sample is None
                else (
                    frozenset(sample.car_ids),
                    sample.ewt_minutes,
                    sample.multiplier,
                )
            )
        first = observations[0]
        for i, obs in enumerate(observations[1:], start=1):
            if obs != first:
                return CalibrationReport(
                    passed=False,
                    rounds=round_no + 1,
                    detail=(
                        f"client {i} diverged from client 0 in round "
                        f"{round_no}: {obs!r} != {first!r}"
                    ),
                )
        world.advance(5.0)
    return CalibrationReport(passed=True, rounds=rounds)


def check_surge_impact(
    world: World,
    location: LatLon,
    n_clients: int = 43,
    duration_s: float = 3600.0,
    car_type: CarType = CarType.UBERX,
) -> CalibrationReport:
    """Does the presence of many clients induce surge?  It must not.

    Park the full fleet at *location* (pick a quiet hour) and verify the
    multiplier stays 1 for the entire window.
    """
    clients = [
        MeasurementClient(f"cal{i:02d}", location, [car_type])
        for i in range(n_clients)
    ]
    rounds = 0
    end = world.now + duration_s
    while world.now < end:
        for client in clients:
            samples, _ = client.observe(world.server)
            sample = samples.get(car_type)
            if sample is not None and sample.multiplier > 1.0:
                return CalibrationReport(
                    passed=False,
                    rounds=rounds,
                    detail=(
                        f"multiplier {sample.multiplier} observed by "
                        f"{client.client_id} at t={world.now:.0f}"
                    ),
                )
        rounds += 1
        world.advance(5.0)
    return CalibrationReport(passed=True, rounds=rounds)


def visibility_radius(
    world: World,
    start: LatLon,
    car_type: CarType = CarType.UBERX,
    max_steps: int = 200,
) -> Optional[float]:
    """One §3.4 walk-outward experiment; returns the radius in metres.

    Four clients walk apart diagonally until they share no observed car;
    ``None`` when the walk never started (no cars visible at all) or the
    sets never separated within *max_steps*.
    """
    clients = [
        MeasurementClient(f"walk{i}", start, [car_type]) for i in range(4)
    ]
    for _ in range(max_steps):
        observed: List[frozenset] = []
        for client in clients:
            samples, _ = client.observe(world.server)
            sample = samples.get(car_type)
            observed.append(
                frozenset() if sample is None else frozenset(sample.car_ids)
            )
        if not any(observed):
            return None
        common = observed[0]
        for obs in observed[1:]:
            common &= obs
        if not common:
            total = sum(c.location.distance_m(start) for c in clients)
            return RADIUS_COEFFICIENT * total
        for client, (north, east) in zip(clients, _DIRECTIONS):
            client.walk_by(north, east)
        world.advance(5.0)
    return None


def visibility_radius_profile(
    world: World,
    location: LatLon,
    sample_every_s: float = 3600.0,
    duration_s: float = 86_400.0,
    car_type: CarType = CarType.UBERX,
) -> List[Tuple[float, Optional[float]]]:
    """Visibility radius through a day (Fig 2).

    Returns ``(sim_seconds, radius_m)`` pairs, one per sample hour; radius
    is ``None`` where no cars were visible (deep night in a quiet world).
    """
    results: List[Tuple[float, Optional[float]]] = []
    end = world.now + duration_s
    while world.now < end:
        t = world.now
        results.append(
            (t, visibility_radius(world, location, car_type=car_type))
        )
        elapsed = world.now - t
        if elapsed < sample_every_s:
            world.advance(sample_every_s - elapsed)
    return results
