"""Fleet orchestration: run a measurement campaign against a world.

A *world* is the thing being measured: it owns simulated time and a ping
server.  :class:`MarketplaceWorld` wraps the Uber-like engine,
:class:`TaxiWorld` the trace replayer — the fleet code is identical for
both, which is the whole point of the paper's validation design (§3.5).

The paper pings every 5 seconds.  Long campaigns here may widen the
interval (e.g. 30 s) to trade fidelity for runtime; every analysis that
needs 5-second resolution (jitter) runs shorter campaigns at full rate.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Optional, Sequence, Tuple

from repro.geo.latlon import LatLon
from repro.api.ping import PingEndpoint, PingServer
from repro.marketplace.engine import MarketplaceEngine
from repro.marketplace.types import CarType
from repro.measurement.client import MeasurementClient
from repro.measurement.records import CampaignLog, RoundRecord
from repro.taxi.replay import TaxiReplayServer


class World(abc.ABC):
    """Simulated time plus a ping server to measure."""

    @property
    @abc.abstractmethod
    def server(self) -> PingServer:
        """The service endpoint clients ping."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current simulated time in seconds."""

    @abc.abstractmethod
    def advance(self, dt: float) -> None:
        """Run the world forward *dt* seconds."""


class MarketplaceWorld(World):
    """The Uber-like marketplace as a measurable world."""

    def __init__(self, engine: MarketplaceEngine, nearest_k: int = 8) -> None:
        self.engine = engine
        self._server = PingEndpoint(engine, nearest_k=nearest_k)

    @property
    def server(self) -> PingServer:
        return self._server

    @property
    def now(self) -> float:
        return self.engine.clock.now

    def advance(self, dt: float) -> None:
        self.engine.run(dt)


class TaxiWorld(World):
    """The taxi-trace replayer as a measurable world."""

    def __init__(self, replay: TaxiReplayServer) -> None:
        self.replay = replay

    @property
    def server(self) -> PingServer:
        return self.replay

    @property
    def now(self) -> float:
        return self.replay.now

    def advance(self, dt: float) -> None:
        self.replay.advance(dt)


class Fleet:
    """A set of measurement clients run in lock-step.

    Parameters
    ----------
    positions:
        One measurement point per client; IDs are assigned ``c00``,
        ``c01``, ... in position order.
    car_types:
        Types each client records.  ``None`` records everything the
        service offers (what the real app does); restricting to
        ``[CarType.UBERX]`` makes week-scale campaigns much faster and
        changes nothing for UberX-only analyses.
    ping_interval_s:
        Seconds between ping rounds (5 s in the paper).
    """

    def __init__(
        self,
        positions: Sequence[LatLon],
        car_types: Optional[Sequence[CarType]] = None,
        ping_interval_s: float = 5.0,
    ) -> None:
        if not positions:
            raise ValueError("a fleet needs at least one client")
        if ping_interval_s <= 0:
            raise ValueError("ping interval must be positive")
        self.clients = [
            MeasurementClient(f"c{i:02d}", pos, car_types)
            for i, pos in enumerate(positions)
        ]
        self.ping_interval_s = ping_interval_s

    @property
    def positions(self) -> Dict[str, LatLon]:
        return {c.client_id: c.location for c in self.clients}

    def measure_round(self, server: PingServer) -> RoundRecord:
        """One synchronized ping round across all clients.

        Served through :meth:`PingServer.serve_round`, so a server with
        a batched round path answers the whole fleet in one vectorized
        pass; the default implementation pings per client.  Either way
        the replies — and hence the round record — are identical.
        """
        replies = server.serve_round(
            [(c.client_id, c.location, c.car_types) for c in self.clients]
        )
        samples = {}
        cars: Dict[str, Tuple[float, float]] = {}
        for client, reply in zip(self.clients, replies):
            client_samples, client_cars = client.absorb(reply)
            for car_type, sample in client_samples.items():
                samples[(client.client_id, car_type)] = sample
            cars.update(client_cars)
        return RoundRecord(
            t=server.current_time(), samples=samples, cars=cars
        )

    def run(
        self,
        world: World,
        duration_s: float,
        city: str = "unknown",
        warmup_s: float = 0.0,
    ) -> CampaignLog:
        """Run a campaign: advance the world, ping, repeat.

        ``warmup_s`` lets the world settle (supply ramp-up, first surge
        intervals) before logging starts — the equivalent of the paper's
        data-cleaning of partial first days (§4.1).

        **Threading contract: single-threaded per campaign.**  One
        campaign = one thread driving this loop.  The parallel layer
        parallelizes *below* it (``use_parallel_ping`` shards the
        distance kernels inside ``serve_round``, invisible here) and
        *above* it (:func:`repro.parallel.run_sweep` runs whole
        campaigns in separate processes, each with its own Fleet) —
        never across it.  Campaign-level mutable state (the log, client
        sample memories, any attached
        :class:`~repro.measurement.scheduler.RequestScheduler`) is
        therefore only ever touched from the campaign's own thread;
        the scheduler additionally locks its budget accounting in case
        a future probe driver breaks this convention.

        The round count is fixed up front as an integer and each advance
        targets ``start + round_index * interval`` absolutely, so
        accumulated float error can neither add nor drop a round: the
        old ``now += interval`` loop emitted e.g. 61 rounds for a
        (6 s, 0.1 s) campaign starting at t=0 but 60 starting at t=600,
        purely from representation error.  (When the interval is shorter
        than the world's internal tick the world may overshoot a target
        time; the zero-clamped advance then skips ahead, same as the old
        loop did.)
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if warmup_s > 0:
            world.advance(warmup_s)
        log = CampaignLog(
            city=city,
            client_positions=dict(self.positions),
            ping_interval_s=self.ping_interval_s,
        )
        interval = self.ping_interval_s
        total_rounds = max(1, math.ceil(duration_s / interval - 1e-9))
        start = world.now
        for k in range(total_rounds):
            log.rounds.append(self.measure_round(world.server))
            world.advance(max(0.0, start + (k + 1) * interval - world.now))
        return log
