"""Repo-specific static analysis (the determinism linter).

The engine's validity claim — same seed, any flag combination, bit-identical
truth logs / trip ledgers / ping replies — rests on conventions that plain
Python will happily let you violate: an unseeded ``random.random()``, a
wall-clock read inside replayed code, iteration order leaking from a ``set``
into an RNG-consuming loop, or a ``math.hypot`` that numpy cannot reproduce
bit-for-bit.  PRs 1-2 enforced those contracts at runtime with differential
tests; this package enforces them at parse time, before a six-hour campaign
gets the chance to diverge.

Entry points:

* ``repro lint src/`` (CLI subcommand),
* ``python -m repro.devtools.lint src/``,
* :func:`repro.devtools.lint.run_lint` (library API; what the tier-1 gate
  in ``tests/test_static_analysis.py`` calls).

Rules are catalogued in ``docs/static_analysis.md``; suppressions are
inline ``# repro: noqa=REPxxx -- justification`` comments and a missing
justification is itself a finding (REP000).
"""

from typing import Any

__all__ = [
    "ALL_RULES",
    "CODE_SUMMARIES",
    "Finding",
    "LintResult",
    "run_lint",
]


def __getattr__(name: str) -> Any:
    """Lazy re-exports (PEP 562), so ``python -m repro.devtools.lint``
    does not import the submodule twice via the package init."""
    if name in ("Finding", "LintResult", "run_lint"):
        from repro.devtools import lint

        return getattr(lint, name)
    if name in ("ALL_RULES", "CODE_SUMMARIES"):
        from repro.devtools import rules

        return getattr(rules, name)
    raise AttributeError(name)
