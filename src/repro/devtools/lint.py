"""The determinism linter: file discovery, suppressions, reporting.

Run it three ways::

    repro lint src/                       # CLI subcommand
    python -m repro.devtools.lint src/    # module entry point
    run_lint(["src"])                     # library API (the tier-1 gate)

Suppressions are inline comments on the reported line::

    x = math.hypot(a, b)  # repro: noqa=REP004 -- circular stats, no numpy mirror

The justification after ``--`` is mandatory: a bare ``# repro:
noqa=REP004`` does *not* suppress and additionally reports REP000, so
every silenced finding carries a written reason in the source.  A
suppression that matches no finding also reports REP000 (stale noqa).
Multiple codes may be listed comma-separated.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.devtools.rules import (
    ALL_RULES,
    META_CODE,
    ModuleContext,
    ProjectContext,
    Rule,
)

#: Files whose text constitutes the flag-matrix equivalence evidence for
#: REP006, relative to the project root (the directory with pyproject.toml).
FLAG_MATRIX_FILES = (
    "tests/test_perf_regression.py",
    "benchmarks/bench_perf_engine.py",
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*noqa\s*=\s*"
    r"(?P<codes>REP\d{3}(?:\s*,\s*REP\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis"}


@dataclass(frozen=True)
class Finding:
    """One lint finding, after suppression handling."""

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False
    justification: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.code} {self.message}"
        if self.suppressed:
            text += f"  [suppressed: {self.justification}]"
        return text

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that are not justified-suppressed (these gate CI)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]


@dataclass
class _Suppression:
    codes: List[str]
    justification: str
    line: int
    used: bool = False


def _parse_suppressions(source: str) -> Dict[int, _Suppression]:
    """Map line number -> suppression for every noqa comment."""
    out: Dict[int, _Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = [
                c.strip() for c in match.group("codes").split(",")
            ]
            out[tok.start[0]] = _Suppression(
                codes=codes,
                justification=(match.group("why") or "").strip(),
                line=tok.start[0],
            )
    except tokenize.TokenizeError:
        pass  # the ast parse will report the file as unparseable
    return out


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Every .py file under *paths*, sorted for stable output."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = set(sub.parts)
                if parts & _SKIP_DIR_NAMES:
                    continue
                if any(p.endswith(".egg-info") for p in sub.parts):
                    continue
                files.append(sub)
    return sorted(set(files))


def find_flag_matrix_text(start: Path) -> Optional[str]:
    """Concatenated flag-matrix test text for the project containing
    *start*, found by walking up to the nearest pyproject.toml."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in [probe, *probe.parents]:
        if (candidate / "pyproject.toml").is_file():
            chunks = []
            for rel in FLAG_MATRIX_FILES:
                matrix_file = candidate / rel
                if matrix_file.is_file():
                    chunks.append(
                        matrix_file.read_text(encoding="utf-8")
                    )
            return "\n".join(chunks) if chunks else None
    return None


def lint_file(
    path: Path,
    project: ProjectContext,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
) -> List[Finding]:
    """Lint one file; suppression handling included."""
    display = display_path if display_path is not None else str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=META_CODE,
                message=f"could not parse file: {exc.msg}",
            )
        ]

    module = ModuleContext(
        display_path=display,
        path_parts=path.resolve().parts,
        tree=tree,
        source=source,
        project=project,
    )
    active_rules = (
        list(rules) if rules is not None else [r() for r in ALL_RULES]
    )
    suppressions = _parse_suppressions(source)
    findings: List[Finding] = []
    for rule in active_rules:
        for raw in rule.check(module):
            sup = suppressions.get(raw.line)
            if sup is not None and rule.code in sup.codes:
                sup.used = True
                if sup.justification:
                    findings.append(
                        Finding(
                            path=display,
                            line=raw.line,
                            col=raw.col,
                            code=rule.code,
                            message=raw.message,
                            suppressed=True,
                            justification=sup.justification,
                        )
                    )
                    continue
                findings.append(
                    Finding(
                        path=display,
                        line=sup.line,
                        col=0,
                        code=META_CODE,
                        message=(
                            f"suppression of {rule.code} lacks a "
                            "justification; write `# repro: "
                            f"noqa={rule.code} -- <reason>`"
                        ),
                    )
                )
            findings.append(
                Finding(
                    path=display,
                    line=raw.line,
                    col=raw.col,
                    code=rule.code,
                    message=raw.message,
                )
            )
    for sup in suppressions.values():
        if not sup.used:
            codes = ",".join(sup.codes)
            findings.append(
                Finding(
                    path=display,
                    line=sup.line,
                    col=0,
                    code=META_CODE,
                    message=(
                        f"suppression of {codes} matches no finding on "
                        "this line; remove the stale noqa"
                    ),
                )
            )
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def run_lint(
    paths: Sequence[object],
    flag_matrix_text: Optional[str] = "auto",
) -> LintResult:
    """Lint every .py file under *paths*.

    *flag_matrix_text* is ``"auto"`` (discover the project's matrix test
    files by walking up to pyproject.toml), ``None`` (REP006 skips its
    matrix check), or explicit text.
    """
    roots = [Path(p) for p in paths]
    files = iter_python_files(roots)
    result = LintResult()
    for path in files:
        if flag_matrix_text == "auto":
            matrix = find_flag_matrix_text(path)
        else:
            matrix = flag_matrix_text  # type: ignore[assignment]
        project = ProjectContext(flag_matrix_text=matrix)
        result.findings.extend(lint_file(path, project))
        result.files_checked += 1
    return result


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    lines = [f.render() for f in result.active]
    if show_suppressed:
        lines.extend(f.render() for f in result.suppressed)
    lines.append(
        f"{result.files_checked} files checked: "
        f"{len(result.active)} findings, "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.active],
        "suppressed": [f.as_dict() for f in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Determinism linter: statically enforce the engine's "
            "bit-identity contracts (REP001-REP006)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a JSON report instead of text",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list justified-suppressed findings in text output",
    )
    args = parser.parse_args(argv)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"repro lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    result = run_lint(args.paths)
    if args.as_json:
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return 1 if result.active else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
