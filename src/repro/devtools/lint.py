"""The lint driver: file discovery, suppressions, reporting.

Two analysis passes share this driver: the determinism rules
(REP001-REP006, ``repro.devtools.rules``) and the concurrency/async
hazard rules (REP101-REP105, ``repro.devtools.concurrency``).  Run it
three ways::

    repro lint src/                       # CLI subcommand (both passes)
    python -m repro.devtools.lint src/    # module entry point
    run_lint(["src"])                     # library API (the tier-1 gate)

plus ``python -m repro.devtools.concurrency`` / ``make
lint-concurrency`` for the concurrency pass alone.  Reports come as
text, ``--format json``, or ``--format sarif`` (SARIF 2.1.0, uploaded
by CI so findings annotate PRs inline); ``--explain REPxxx`` prints a
rule's catalogue entry from ``docs/static_analysis.md``.

Suppressions are inline comments on the reported line::

    x = math.hypot(a, b)  # repro: noqa=REP004 -- circular stats, no numpy mirror

The justification after ``--`` is mandatory: a bare ``# repro:
noqa=REP004`` does *not* suppress and additionally reports REP000, so
every silenced finding carries a written reason in the source.  A
suppression that matches no finding also reports REP000 (stale noqa).
Multiple codes may be listed comma-separated.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from repro.devtools.concurrency import (
    CONCURRENCY_CODE_SUMMARIES,
    CONCURRENCY_RULES,
)
from repro.devtools.rules import (
    ALL_RULES,
    CODE_SUMMARIES,
    META_CODE,
    ModuleContext,
    ProjectContext,
    Rule,
)

#: Both analysis passes: determinism (REP001-REP006) + concurrency
#: (REP101-REP105).  `repro lint` runs everything; the standalone
#: concurrency entry point (`make lint-concurrency`) passes
#: CONCURRENCY_RULES alone.
ALL_LINT_RULES: List[Type[Rule]] = list(ALL_RULES) + list(
    CONCURRENCY_RULES
)

#: code -> one-line summary across both passes (REP000 included).
ALL_CODE_SUMMARIES: Dict[str, str] = dict(CODE_SUMMARIES)
ALL_CODE_SUMMARIES.update(CONCURRENCY_CODE_SUMMARIES)

#: Files whose text constitutes the flag-matrix equivalence evidence for
#: REP006, relative to the project root (the directory with pyproject.toml).
FLAG_MATRIX_FILES = (
    "tests/test_perf_regression.py",
    "benchmarks/bench_perf_engine.py",
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*noqa\s*=\s*"
    r"(?P<codes>REP\d{3}(?:\s*,\s*REP\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis"}


@dataclass(frozen=True)
class Finding:
    """One lint finding, after suppression handling."""

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False
    justification: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.code} {self.message}"
        if self.suppressed:
            text += f"  [suppressed: {self.justification}]"
        return text

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that are not justified-suppressed (these gate CI)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]


@dataclass
class _Suppression:
    codes: List[str]
    justification: str
    line: int
    #: Codes that actually matched a finding — tracked per code so a
    #: comma-list like ``noqa=REP004,REP002`` where only REP004 fires
    #: still reports the stale REP002 by name.
    used_codes: Set[str] = field(default_factory=set)


def _parse_suppressions(source: str) -> Dict[int, _Suppression]:
    """Map line number -> suppression for every noqa comment."""
    out: Dict[int, _Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = [
                c.strip() for c in match.group("codes").split(",")
            ]
            out[tok.start[0]] = _Suppression(
                codes=codes,
                justification=(match.group("why") or "").strip(),
                line=tok.start[0],
            )
    except tokenize.TokenizeError:
        pass  # the ast parse will report the file as unparseable
    return out


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Every .py file under *paths*, sorted for stable output."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = set(sub.parts)
                if parts & _SKIP_DIR_NAMES:
                    continue
                if any(p.endswith(".egg-info") for p in sub.parts):
                    continue
                files.append(sub)
    return sorted(set(files))


def find_flag_matrix_text(start: Path) -> Optional[str]:
    """Concatenated flag-matrix test text for the project containing
    *start*, found by walking up to the nearest pyproject.toml."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in [probe, *probe.parents]:
        if (candidate / "pyproject.toml").is_file():
            chunks = []
            for rel in FLAG_MATRIX_FILES:
                matrix_file = candidate / rel
                if matrix_file.is_file():
                    chunks.append(
                        matrix_file.read_text(encoding="utf-8")
                    )
            return "\n".join(chunks) if chunks else None
    return None


def lint_file(
    path: Path,
    project: ProjectContext,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
) -> List[Finding]:
    """Lint one file; suppression handling included."""
    display = display_path if display_path is not None else str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=META_CODE,
                message=f"could not parse file: {exc.msg}",
            )
        ]

    module = ModuleContext(
        display_path=display,
        path_parts=path.resolve().parts,
        tree=tree,
        source=source,
        project=project,
    )
    active_rules = (
        list(rules)
        if rules is not None
        else [r() for r in ALL_LINT_RULES]
    )
    active_codes = {rule.code for rule in active_rules}
    suppressions = _parse_suppressions(source)
    findings: List[Finding] = []
    for rule in active_rules:
        for raw in rule.check(module):
            sup = suppressions.get(raw.line)
            if sup is not None and rule.code in sup.codes:
                sup.used_codes.add(rule.code)
                if sup.justification:
                    findings.append(
                        Finding(
                            path=display,
                            line=raw.line,
                            col=raw.col,
                            code=rule.code,
                            message=raw.message,
                            suppressed=True,
                            justification=sup.justification,
                        )
                    )
                    continue
                findings.append(
                    Finding(
                        path=display,
                        line=sup.line,
                        col=0,
                        code=META_CODE,
                        message=(
                            f"suppression of {rule.code} lacks a "
                            "justification; write `# repro: "
                            f"noqa={rule.code} -- <reason>`"
                        ),
                    )
                )
            findings.append(
                Finding(
                    path=display,
                    line=raw.line,
                    col=raw.col,
                    code=rule.code,
                    message=raw.message,
                )
            )
    for sup in suppressions.values():
        # Only codes the active rule set could have produced count as
        # stale: the concurrency-only pass must not flag a justified
        # REP004 suppression it never evaluated.
        stale = [
            code
            for code in sup.codes
            if code not in sup.used_codes and code in active_codes
        ]
        for code in stale:
            findings.append(
                Finding(
                    path=display,
                    line=sup.line,
                    col=0,
                    code=META_CODE,
                    message=(
                        f"suppression of {code} matches no {code} "
                        "finding on this line; remove the stale noqa "
                        "code"
                    ),
                )
            )
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def run_lint(
    paths: Sequence[object],
    flag_matrix_text: Optional[str] = "auto",
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> LintResult:
    """Lint every .py file under *paths*.

    *flag_matrix_text* is ``"auto"`` (discover the project's matrix test
    files by walking up to pyproject.toml), ``None`` (REP006 skips its
    matrix check), or explicit text.  *rules* selects the rule classes
    to run (default: both passes, ``ALL_LINT_RULES``).
    """
    roots = [Path(p) for p in paths]
    files = iter_python_files(roots)
    rule_classes = ALL_LINT_RULES if rules is None else list(rules)
    result = LintResult()
    for path in files:
        if flag_matrix_text == "auto":
            matrix = find_flag_matrix_text(path)
        else:
            matrix = flag_matrix_text  # type: ignore[assignment]
        project = ProjectContext(flag_matrix_text=matrix)
        instances = [r() for r in rule_classes]
        result.findings.extend(
            lint_file(path, project, rules=instances)
        )
        result.files_checked += 1
    return result


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    lines = [f.render() for f in result.active]
    if show_suppressed:
        lines.extend(f.render() for f in result.suppressed)
    lines.append(
        f"{result.files_checked} files checked: "
        f"{len(result.active)} findings, "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.active],
        "suppressed": [f.as_dict() for f in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report (``repro lint --format sarif``).

    Suppressed findings are emitted at level ``note`` with an
    ``inSource`` suppression object carrying the written justification,
    so code-scanning UIs show them greyed-out instead of losing them.
    """
    rules_meta = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {
                "level": "note" if code == META_CODE else "error"
            },
        }
        for code, summary in sorted(ALL_CODE_SUMMARIES.items())
    ]
    results = []
    for finding in result.findings:
        entry: Dict[str, object] = {
            "ruleId": finding.code,
            "level": "note" if finding.suppressed else "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.suppressed:
            entry["suppressions"] = [
                {
                    "kind": "inSource",
                    "justification": finding.justification,
                }
            ]
        results.append(entry)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "docs/static_analysis.md"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# --explain: rule documentation lookup
# ----------------------------------------------------------------------
def _docs_path() -> Optional[Path]:
    """Locate docs/static_analysis.md: cwd-upwards first (the checkout
    being linted), then relative to this file (installed layout)."""
    candidates = [Path.cwd(), *Path.cwd().parents]
    here = Path(__file__).resolve()
    candidates.extend(here.parents)
    for root in candidates:
        doc = root / "docs" / "static_analysis.md"
        if doc.is_file():
            return doc
    return None


def explain_rule(code: str) -> Optional[str]:
    """The rule's catalogue entry from docs/static_analysis.md, or the
    registry one-liner when the docs are not on disk; ``None`` for an
    unknown code."""
    if code not in ALL_CODE_SUMMARIES:
        return None
    doc = _docs_path()
    if doc is not None:
        text = doc.read_text(encoding="utf-8")
        pattern = re.compile(
            rf"^###\s+{code}\b.*?(?=^###\s+REP\d{{3}}|^##\s|\Z)",
            re.MULTILINE | re.DOTALL,
        )
        match = pattern.search(text)
        if match is not None:
            return match.group(0).rstrip()
    return f"{code}: {ALL_CODE_SUMMARIES[code]}"


def run_cli(
    argv: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
    prog: str = "repro lint",
    description: str = (
        "Static analysis: determinism (REP001-REP006) and "
        "concurrency/async hazards (REP101-REP105)"
    ),
) -> int:
    """Shared CLI driver for both entry points.

    ``python -m repro.devtools.lint`` runs every rule;
    ``python -m repro.devtools.concurrency`` passes
    ``rules=CONCURRENCY_RULES`` to run the concurrency pass alone.
    """
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default=None,
        dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list justified-suppressed findings in text output",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print the documentation entry for a rule code and exit",
    )
    args = parser.parse_args(argv)

    if args.explain:
        entry = explain_rule(args.explain.upper())
        if entry is None:
            known = ", ".join(sorted(ALL_CODE_SUMMARIES))
            print(
                f"{prog}: unknown rule code {args.explain!r} "
                f"(known: {known})",
                file=sys.stderr,
            )
            return 2
        print(entry)
        return 0

    if args.fmt and args.as_json and args.fmt != "json":
        print(
            f"{prog}: --json conflicts with --format {args.fmt}",
            file=sys.stderr,
        )
        return 2
    fmt = args.fmt or ("json" if args.as_json else "text")

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"{prog}: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    result = run_lint(args.paths, rules=rules)
    if fmt == "json":
        report = render_json(result)
    elif fmt == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(
            result, show_suppressed=args.show_suppressed
        )
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 1 if result.active else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_cli(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
