"""The determinism rules (REP001-REP006).

Each rule is a class with a ``code``, a one-line ``summary``, and a
``check(module)`` generator yielding raw findings.  Rules are pure AST
walks over one module plus a little cross-file project context (the
flag-matrix test text for REP006); they never import the code under
analysis, so linting a file can never execute it.

The rules are deliberately tuned to *this* codebase's determinism
contract — the sixteen-way ``use_spatial_index`` ×
``use_vectorized_step`` × ``use_batched_ping`` × ``use_parallel_ping``
bit-identity matrix enforced by ``tests/test_perf_regression.py`` — not
to Python in general.  Heuristic boundaries (e.g. REP003 only recognises
RNG receivers whose name contains ``rng``) are documented in
``docs/static_analysis.md`` next to each rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Meta-code: lint integrity itself (unparseable file, suppression with no
#: justification, suppression that matches no finding).  Emitted by the
#: driver in ``repro.devtools.lint``, not by a rule class.
META_CODE = "REP000"


@dataclass(frozen=True)
class RawFinding:
    """A rule hit before suppression handling: location + message."""

    line: int
    col: int
    message: str


@dataclass
class ProjectContext:
    """Cross-file facts a rule may consult.

    ``flag_matrix_text`` is the concatenated source of the flag-matrix
    equivalence tests (``tests/test_perf_regression.py`` and
    ``benchmarks/bench_perf_engine.py``), or ``None`` when linting a tree
    that has no such files (fixtures, tmp dirs) — REP006 then skips its
    matrix-membership check but keeps the dead-flag check.
    """

    flag_matrix_text: Optional[str] = None


@dataclass
class ModuleContext:
    """One parsed module handed to every rule."""

    display_path: str
    path_parts: Tuple[str, ...]
    tree: ast.Module
    source: str
    project: ProjectContext


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def attr_tokens(node: ast.AST) -> List[str]:
    """Dotted-chain identifiers of an attribute expression, base first.

    ``self.rng.random`` -> ``["self", "rng", "random"]``.  A non-name
    base (call result, subscript) contributes no token.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Names the given top-level module is imported as (``np`` etc.)."""
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module or alias.name.startswith(
                    module + "."
                ):
                    found.add((alias.asname or alias.name).split(".")[0])
    return found


def imported_names(tree: ast.Module, module: str) -> Dict[str, str]:
    """``from module import a as b`` -> ``{"b": "a"}``."""
    found: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == module and node.level == 0:
                for alias in node.names:
                    found[alias.asname or alias.name] = alias.name
    return found


def _iter_own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class Rule:
    """Base class: subclasses set the class attributes and ``check``."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes every check a generator


# ----------------------------------------------------------------------
# REP001 — unseeded randomness
# ----------------------------------------------------------------------
#: numpy RNG constructors that are fine *when given an explicit seed*.
_NP_SEEDED_CTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "Philox",
    "MT19937",
}


class UnseededRandomness(Rule):
    code = "REP001"
    name = "unseeded-randomness"
    summary = (
        "randomness must flow through explicitly seeded random.Random "
        "instances, never module-level random.* or np.random global state"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        tree = module.tree
        random_aliases = module_aliases(tree, "random")
        numpy_aliases = module_aliases(tree, "numpy")
        from_random = imported_names(tree, "random")
        # Names bound to the Random class itself (constructor calls are
        # checked for a seed argument below).
        random_ctor_names = {
            local
            for local, orig in from_random.items()
            if orig == "Random"
        }

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"`from random import {alias.name}` binds "
                            "global-RNG state; import the module and use "
                            "a seeded random.Random instance",
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            chain = attr_tokens(func)
            # random.<fn>(...) on the module object.
            if (
                len(chain) == 2
                and chain[0] in random_aliases
                and isinstance(func, ast.Attribute)
            ):
                attr = chain[1]
                if attr == "Random":
                    if not node.args and not node.keywords:
                        yield RawFinding(
                            node.lineno,
                            node.col_offset,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                elif attr == "SystemRandom":
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        "random.SystemRandom is OS entropy and can "
                        "never replay; use a seeded random.Random",
                    )
                else:
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"random.{attr}() draws from the global RNG; "
                        "draw from a seeded random.Random threaded in "
                        "from the engine",
                    )
            # Random() via `from random import Random`.
            if (
                isinstance(func, ast.Name)
                and func.id in random_ctor_names
                and not node.args
                and not node.keywords
            ):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            # np.random.<fn>(...).
            if (
                len(chain) >= 3
                and chain[0] in numpy_aliases
                and chain[1] == "random"
            ):
                attr = chain[2]
                if attr in _NP_SEEDED_CTORS:
                    if not node.args and not node.keywords:
                        yield RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"np.random.{attr}() without an explicit "
                            "seed is nondeterministic",
                        )
                else:
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"np.random.{attr} uses numpy's global RNG "
                        "state; construct a seeded generator (or draw "
                        "through the engine's random.Random)",
                    )


# ----------------------------------------------------------------------
# REP002 — wall-clock reads in replayable code
# ----------------------------------------------------------------------
_CLOCK_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
#: Clock reads only when called with no argument (with an argument they
#: are pure formatting of a supplied timestamp).
_CLOCK_FNS_NOARG = {"localtime", "gmtime", "ctime"}
_DATETIME_NOW = {"now", "utcnow", "today"}


class WallClockRead(Rule):
    code = "REP002"
    name = "wall-clock-read"
    summary = (
        "simulator/marketplace/measurement/analysis code replays from "
        "SimClock; real-time reads (time.time, datetime.now, "
        "perf_counter) belong only in benchmarks/"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        if "benchmarks" in module.path_parts:
            return
        tree = module.tree
        time_aliases = module_aliases(tree, "time")
        from_time = imported_names(tree, "time")
        clock_names = {
            local
            for local, orig in from_time.items()
            if orig in _CLOCK_FNS | _CLOCK_FNS_NOARG
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FNS | _CLOCK_FNS_NOARG:
                        yield RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"`from time import {alias.name}` imports a "
                            "wall-clock read into replayable code; take "
                            "`now` from SimClock instead",
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            chain = attr_tokens(func)
            if len(chain) == 2 and chain[0] in time_aliases:
                if chain[1] in _CLOCK_FNS or (
                    chain[1] in _CLOCK_FNS_NOARG and not node.args
                ):
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"time.{chain[1]}() reads the wall clock; "
                        "replayable code must take `now` from SimClock "
                        "(benchmarks/ are exempt)",
                    )
            if isinstance(func, ast.Name) and func.id in clock_names:
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"{func.id}() reads the wall clock; replayable "
                    "code must take `now` from SimClock",
                )
            if (
                len(chain) >= 2
                and chain[-1] in _DATETIME_NOW
                and any(t in ("datetime", "date") for t in chain[:-1])
            ):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"datetime {chain[-1]}() reads the wall clock; "
                    "derive timestamps from the simulated clock",
                )


# ----------------------------------------------------------------------
# REP003 — unordered iteration where order feeds the RNG or the logs
# ----------------------------------------------------------------------
_LOG_TOKENS = ("truth", "trip", "ledger", "log")


def _is_unordered_iterable(node: ast.AST) -> Optional[str]:
    """Name the unordered construct being iterated, or ``None``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys()"
    return None


class UnorderedIterationWithRNG(Rule):
    code = "REP003"
    name = "unordered-iteration"
    summary = (
        "functions that draw from an RNG or append to truth/trip logs "
        "must not iterate sets or .keys() views unseeded by sorted(...): "
        "iteration order becomes draw order becomes divergent campaigns"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            own = list(_iter_own_nodes(fn))
            draws_rng = False
            appends_log = False
            for node in own:
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                receiver = attr_tokens(node.func)[:-1]
                if any(
                    t == "rng" or t.endswith("rng") for t in receiver
                ):
                    draws_rng = True
                if node.func.attr == "append" and any(
                    any(tok in t.lower() for tok in _LOG_TOKENS)
                    for t in receiver
                    if t != "self"
                ):
                    appends_log = True
            if not (draws_rng or appends_log):
                continue
            why = (
                "draws from an RNG"
                if draws_rng
                else "appends to a truth/trip log"
            )
            iters: List[ast.AST] = []
            for node in own:
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, ast.comprehension):
                    iters.append(node.iter)
            for it in iters:
                what = _is_unordered_iterable(it)
                if what is not None:
                    yield RawFinding(
                        it.lineno,
                        it.col_offset,
                        f"iterating {what} in `{fn.name}`, which {why}: "
                        "wrap the iterable in sorted(...) so iteration "
                        "order is reproducible",
                    )


# ----------------------------------------------------------------------
# REP004 — bit-identity-hazard math
# ----------------------------------------------------------------------
class BitIdentityHazardMath(Rule):
    code = "REP004"
    name = "bit-identity-math"
    summary = (
        "math.hypot / math.fsum (and **0.5 next to np.sqrt) do not "
        "reproduce bit-for-bit under numpy; distance code mirrored by an "
        "array path must use the shared sqrt-form helper"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        tree = module.tree
        math_aliases = module_aliases(tree, "math")
        from_math = imported_names(tree, "math")
        hazard_names = {
            local
            for local, orig in from_math.items()
            if orig in ("hypot", "fsum")
        }
        numpy_aliases = module_aliases(tree, "numpy")
        from_numpy = imported_names(tree, "numpy")
        has_np_sqrt = any(orig == "sqrt" for orig in from_numpy.values())
        if not has_np_sqrt:
            for node in ast.walk(tree):
                chain = attr_tokens(node) if isinstance(
                    node, ast.Attribute
                ) else []
                if (
                    len(chain) == 2
                    and chain[0] in numpy_aliases
                    and chain[1] == "sqrt"
                ):
                    has_np_sqrt = True
                    break

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "math":
                for alias in node.names:
                    if alias.name in ("hypot", "fsum"):
                        yield RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"`from math import {alias.name}` imports a "
                            "bit-identity hazard; use the sqrt-form "
                            "helper (repro.geo.latlon.planar_distance)",
                        )
            if isinstance(node, ast.Call):
                func = node.func
                chain = attr_tokens(func)
                if (
                    len(chain) == 2
                    and chain[0] in math_aliases
                    and chain[1] in ("hypot", "fsum")
                ):
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"math.{chain[1]} is not reproduced bit-for-bit "
                        "by numpy's vectorized ops; use the shared "
                        "sqrt-form helper "
                        "(repro.geo.latlon.planar_distance) so scalar "
                        "and array paths stay identical",
                    )
                if isinstance(func, ast.Name) and func.id in hazard_names:
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"{func.id}() is a bit-identity hazard; use the "
                        "shared sqrt-form helper",
                    )
            if (
                has_np_sqrt
                and isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Pow)
                and isinstance(node.right, ast.Constant)
                and node.right.value == 0.5
            ):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    "`** 0.5` in a module that also uses np.sqrt mixes "
                    "two square-root formulations; pick math.sqrt/"
                    "np.sqrt consistently so both paths round alike",
                )


# ----------------------------------------------------------------------
# REP005 — mutable defaults and import-time RNG/clock capture
# ----------------------------------------------------------------------
def _contains_capture(
    node: ast.AST,
    random_aliases: Set[str],
    time_aliases: Set[str],
    numpy_aliases: Set[str],
) -> Optional[str]:
    """Describe an RNG/clock capture inside *node*, or ``None``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        chain = attr_tokens(sub.func)
        if len(chain) >= 2 and chain[0] in random_aliases:
            return f"random.{chain[1]}"
        if len(chain) >= 3 and chain[0] in numpy_aliases and (
            chain[1] == "random"
        ):
            return f"np.random.{chain[2]}"
        if (
            len(chain) == 2
            and chain[0] in time_aliases
            and chain[1] in (_CLOCK_FNS | _CLOCK_FNS_NOARG)
        ):
            return f"time.{chain[1]}"
        if (
            len(chain) >= 2
            and chain[-1] in _DATETIME_NOW
            and any(t in ("datetime", "date") for t in chain[:-1])
        ):
            return f"datetime {chain[-1]}()"
    return None


class MutableDefaultOrImportTimeCapture(Rule):
    code = "REP005"
    name = "mutable-default-import-capture"
    summary = (
        "mutable default arguments alias state across calls; defaults "
        "or module-level assignments that call an RNG or the clock "
        "capture one value at import time — both break replay"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        tree = module.tree
        random_aliases = module_aliases(tree, "random")
        time_aliases = module_aliases(tree, "time")
        numpy_aliases = module_aliases(tree, "numpy")

        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                ):
                    yield RawFinding(
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in `{fn.name}`: one "
                        "object is shared across every call; default to "
                        "None and construct inside",
                    )
                    continue
                capture = _contains_capture(
                    default, random_aliases, time_aliases, numpy_aliases
                )
                if capture is not None:
                    yield RawFinding(
                        default.lineno,
                        default.col_offset,
                        f"default argument of `{fn.name}` calls "
                        f"{capture}: evaluated once at import time, the "
                        "value is frozen for the process and invisible "
                        "to replay",
                    )

        # Module-level (and class-attribute) RNG/clock capture.
        bodies: List[Sequence[ast.stmt]] = [tree.body]
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                bodies.append(node.body)
        for body in bodies:
            for stmt in body:
                if not isinstance(
                    stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)
                ):
                    continue
                value = stmt.value
                if value is None:
                    continue
                capture = _contains_capture(
                    value, random_aliases, time_aliases, numpy_aliases
                )
                if capture is not None:
                    yield RawFinding(
                        stmt.lineno,
                        stmt.col_offset,
                        f"module-import-time capture of {capture}: "
                        "shared RNG/clock state created at import "
                        "cannot be replayed per-run; construct it "
                        "inside the engine with an explicit seed",
                    )


# ----------------------------------------------------------------------
# REP006 — flag parity with the bit-identity matrix
# ----------------------------------------------------------------------
class FlagParity(Rule):
    code = "REP006"
    name = "flag-parity"
    summary = (
        "every marketplace `use_*` engine flag must actually branch "
        "behaviour (no dead flags) and appear in the flag-matrix "
        "equivalence tests that prove both branches bit-identical"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        if "marketplace" not in module.path_parts:
            return
        tree = module.tree

        # Collect declared flags: __init__ parameters and dataclass
        # fields named use_*.
        flags: List[Tuple[str, int, int]] = []
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for item in cls.body:
                if (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and item.target.id.startswith("use_")
                ):
                    flags.append(
                        (item.target.id, item.lineno, item.col_offset)
                    )
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "__init__"
                ):
                    for arg in item.args.args + item.args.kwonlyargs:
                        if arg.arg.startswith("use_"):
                            flags.append(
                                (arg.arg, arg.lineno, arg.col_offset)
                            )
        if not flags:
            return

        # Everywhere the module branches on (or delegates) a name.
        conditional: Set[str] = set()
        delegated: Set[str] = set()

        def note(expr: ast.AST) -> None:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name):
                    conditional.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    conditional.add(sub.attr)

        for node in ast.walk(tree):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                note(node.test)
            elif isinstance(node, ast.BoolOp):
                note(node)
            elif isinstance(node, ast.UnaryOp) and isinstance(
                node.op, ast.Not
            ):
                note(node)
            elif isinstance(node, ast.comprehension):
                for cond in node.ifs:
                    note(cond)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is not None:
                        delegated.add(kw.arg)

        matrix = module.project.flag_matrix_text
        seen: Set[str] = set()
        for flag, line, col in flags:
            if flag in seen:
                continue
            seen.add(flag)
            if flag not in conditional and flag not in delegated:
                yield RawFinding(
                    line,
                    col,
                    f"engine flag `{flag}` is accepted but never "
                    "branched on or delegated: a dead flag means one "
                    "code path silently always runs",
                )
            if matrix is not None and flag not in matrix:
                yield RawFinding(
                    line,
                    col,
                    f"engine flag `{flag}` is missing from the "
                    "flag-matrix equivalence tests "
                    "(tests/test_perf_regression.py / "
                    "benchmarks/bench_perf_engine.py): both settings "
                    "must be proven bit-identical",
                )


#: Every rule class, in code order.
ALL_RULES: List[Type[Rule]] = [
    UnseededRandomness,
    WallClockRead,
    UnorderedIterationWithRNG,
    BitIdentityHazardMath,
    MutableDefaultOrImportTimeCapture,
    FlagParity,
]

#: code -> one-line summary, including the driver-level meta code.
CODE_SUMMARIES: Dict[str, str] = {
    META_CODE: (
        "lint integrity: unparseable file, suppression without a "
        "justification, or suppression that matches no finding"
    ),
}
CODE_SUMMARIES.update({rule.code: rule.summary for rule in ALL_RULES})
