"""``python -m repro.devtools`` — alias for the determinism linter."""

import sys

from repro.devtools.lint import main

if __name__ == "__main__":  # pragma: no cover - thin alias
    sys.exit(main())
