"""The concurrency & async hazard rules (REP101-REP105).

A second analysis pass over the same driver as the determinism rules
(``repro.devtools.lint``): same suppression grammar, same REP000
meta-rule, same reporters.  Every rule here is motivated by a
concurrency bug this repo actually shipped and later fixed by hand:

* REP101 — the ``RateLimiter.check``/``remaining`` split (PR 6) and the
  racy ``RequestScheduler`` budget accounting (PR 5): shared attributes
  read outside the lock that guards their writes.  Enforced through the
  opt-in ``# guarded-by: <lock>`` annotation grammar (see
  ``repro.devtools.scopes``).
* REP102 — the GC-stranded ``RoundAccumulator`` drain task (PR 7): the
  event loop keeps only *weak* references to tasks, so a
  ``create_task()`` result that is neither stored nor awaited can be
  collected mid-flight.
* REP103 — blocking primitives inside ``async def`` in the service
  layer: one ``time.sleep`` stalls every connection on the loop.
* REP104 — the ``_move_rows`` disjoint-write contract: functions
  dispatched to ``ShardPool``/executor threads may write shared numpy
  arrays only through indices derived from their own parameters, so
  concurrent shards can never overlap.
* REP105 — executor futures whose exceptions are silently dropped: a
  ``submit()`` result that nobody ever ``.result()``s or awaits
  swallows worker tracebacks whole.

Like the REP00x rules these are pure AST walks tuned to *this*
codebase; heuristic boundaries are documented per-rule in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.devtools.rules import (
    ModuleContext,
    RawFinding,
    Rule,
    attr_tokens,
    imported_names,
    module_aliases,
)
from repro.devtools.scopes import (
    EVENT_LOOP_GUARD,
    AnyFunctionDef,
    _own_nodes,
    attribute_aliases,
    collect_class_scopes,
    nodes_with_guards,
    param_derived,
    param_names,
    worker_functions,
)

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


# ----------------------------------------------------------------------
# REP101 — guarded-by lock discipline
# ----------------------------------------------------------------------
class GuardedAttributeDiscipline(Rule):
    code = "REP101"
    name = "guarded-attribute-discipline"
    summary = (
        "attributes declared `# guarded-by: <lock>` may only be touched "
        "inside `with self.<lock>:` (or from async methods, for the "
        "`<event-loop>` guard) outside __init__; methods annotated "
        "`# guarded-by:` must be called with the lock already held"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        for scope in collect_class_scopes(module.tree, module.source):
            for method_name, method in scope.methods.items():
                if method_name == "__init__":
                    continue
                method_guard = scope.method_guards.get(method_name)
                initial = (
                    frozenset({method_guard})
                    if method_guard is not None
                    else frozenset()
                )
                # `<event-loop>` confinement: satisfied by being an
                # async method (or by the caller-side annotation).
                loop_confined = (
                    isinstance(method, ast.AsyncFunctionDef)
                    or method_guard == EVENT_LOOP_GUARD
                )
                for node, held in nodes_with_guards(method, initial):
                    if isinstance(node, ast.Attribute):
                        tokens = attr_tokens(node)
                        if len(tokens) != 2 or tokens[0] != "self":
                            continue
                        info = scope.guarded_attrs.get(tokens[1])
                        if info is None:
                            continue
                        guard, decl_line = info
                        if guard == EVENT_LOOP_GUARD:
                            if not loop_confined:
                                yield RawFinding(
                                    node.lineno,
                                    node.col_offset,
                                    f"`self.{tokens[1]}` is declared "
                                    f"`# guarded-by: {EVENT_LOOP_GUARD}` "
                                    f"(line {decl_line}) but "
                                    f"`{scope.name}.{method_name}` is "
                                    "not `async def`: a sync method can "
                                    "run on any thread, off the loop "
                                    "that owns this state",
                                )
                        elif guard not in held:
                            yield RawFinding(
                                node.lineno,
                                node.col_offset,
                                f"`self.{tokens[1]}` is declared "
                                f"`# guarded-by: {guard}` (line "
                                f"{decl_line}) but is accessed outside "
                                f"`with self.{guard}:` in "
                                f"`{scope.name}.{method_name}`; hold "
                                "the lock, or annotate the method "
                                f"`# guarded-by: {guard}` if callers "
                                "hold it",
                            )
                    elif isinstance(node, ast.Call):
                        tokens = attr_tokens(node.func)
                        if len(tokens) != 2 or tokens[0] != "self":
                            continue
                        callee = tokens[1]
                        required = scope.method_guards.get(callee)
                        if required is None or callee == method_name:
                            continue
                        if required == EVENT_LOOP_GUARD:
                            ok = loop_confined
                        else:
                            ok = required in held
                        if not ok:
                            yield RawFinding(
                                node.lineno,
                                node.col_offset,
                                f"`self.{callee}()` is annotated "
                                f"`# guarded-by: {required}` (caller "
                                "must hold it) but "
                                f"`{scope.name}.{method_name}` calls it "
                                "without",
                            )


# ----------------------------------------------------------------------
# Shared machinery: "is this call result kept anywhere?" (REP102/REP105)
# ----------------------------------------------------------------------
def _iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, List[ast.stmt], Set[str]]]:
    """Yield ``(scope_node, own_statements, names_loaded_in_scope)``.

    The module itself is one scope; every ``def`` is another.  Loaded
    names are collected over the *full* scope including nested defs, so
    a future handed to a closure counts as kept.
    """
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_DEFS):
            scopes.append(node)
    for scope in scopes:
        stmts = [
            n for n in _own_nodes(scope) if isinstance(n, ast.stmt)
        ]
        loads: Set[str] = set()
        walk_root = scope
        for sub in ast.walk(walk_root):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, ast.Load
            ):
                loads.add(sub.id)
        yield scope, stmts, loads


def _unkept_calls(
    tree: ast.Module,
    matches: "_CallMatcher",
) -> Iterator[Tuple[ast.Call, str]]:
    """Calls whose result is provably dropped.

    Two shapes fire: a bare expression statement, and an assignment to
    a plain local name that is never loaded again anywhere in the
    enclosing scope.  Storing on ``self``/an attribute, awaiting,
    returning, or passing the result along all count as kept.
    """
    for _, stmts, loads in _iter_scopes(tree):
        for stmt in stmts:
            if isinstance(stmt, ast.Expr):
                call = stmt.value
                if isinstance(call, ast.Call):
                    desc = matches(call)
                    if desc is not None:
                        yield call, desc
            elif isinstance(stmt, ast.Assign):
                if len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                desc = matches(stmt.value)
                if desc is not None and target.id not in loads:
                    yield stmt.value, desc


class _CallMatcher:
    """Callable: describe a matching call, or return ``None``."""

    def __call__(self, call: ast.Call) -> Optional[str]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# REP102 — weakly-referenced asyncio tasks
# ----------------------------------------------------------------------
_SPAWNERS = {"create_task", "ensure_future"}


class _TaskSpawnMatcher(_CallMatcher):
    def __init__(self, tree: ast.Module) -> None:
        self.from_asyncio = {
            local
            for local, orig in imported_names(tree, "asyncio").items()
            if orig in _SPAWNERS
        }

    def __call__(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SPAWNERS:
            tokens = attr_tokens(func)
            return ".".join(tokens) if tokens else func.attr
        if isinstance(func, ast.Name) and func.id in self.from_asyncio:
            return func.id
        return None


class WeakTaskReference(Rule):
    code = "REP102"
    name = "weak-task-reference"
    summary = (
        "asyncio.create_task / ensure_future results must be stored on "
        "self/module state, awaited, or otherwise kept: the event loop "
        "holds only weak task references, so a dropped handle can be "
        "garbage-collected mid-flight"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        matcher = _TaskSpawnMatcher(module.tree)
        for call, desc in _unkept_calls(module.tree, matcher):
            yield RawFinding(
                call.lineno,
                call.col_offset,
                f"task from `{desc}(...)` is neither stored nor "
                "awaited; the event loop keeps only a weak reference, "
                "so the task can be garbage-collected mid-flight — "
                "keep a strong reference (e.g. `self._task = ...`) and "
                "clear it when done",
            )


# ----------------------------------------------------------------------
# REP103 — blocking calls inside async service code
# ----------------------------------------------------------------------
_SUBPROCESS_FNS = {"run", "call", "check_call", "check_output", "Popen"}
_OS_BLOCKING = {"system", "popen"}


class BlockingCallInAsync(Rule):
    code = "REP103"
    name = "blocking-call-in-async"
    summary = (
        "async service code must not call blocking primitives "
        "(time.sleep, socket.*, open(), subprocess, os.system, "
        "urlopen): one stalled coroutine stalls every connection "
        "sharing the event loop"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        if "service" not in module.path_parts:
            return
        tree = module.tree
        time_aliases = module_aliases(tree, "time")
        sleep_names = {
            local
            for local, orig in imported_names(tree, "time").items()
            if orig == "sleep"
        }
        socket_aliases = module_aliases(tree, "socket")
        socket_names = set(imported_names(tree, "socket"))
        subprocess_aliases = module_aliases(tree, "subprocess")
        subprocess_names = {
            local
            for local, orig in imported_names(tree, "subprocess").items()
            if orig in _SUBPROCESS_FNS
        }
        os_aliases = module_aliases(tree, "os")
        urlopen_names = {
            local
            for local, orig in imported_names(
                tree, "urllib.request"
            ).items()
            if orig == "urlopen"
        }

        def describe(call: ast.Call) -> Optional[str]:
            func = call.func
            chain = attr_tokens(func)
            if len(chain) == 2 and chain[0] in time_aliases and (
                chain[1] == "sleep"
            ):
                return "time.sleep()"
            if len(chain) == 2 and chain[0] in socket_aliases:
                return f"socket.{chain[1]}()"
            if len(chain) == 2 and chain[0] in subprocess_aliases:
                return f"subprocess.{chain[1]}()"
            if (
                len(chain) == 2
                and chain[0] in os_aliases
                and chain[1] in _OS_BLOCKING
            ):
                return f"os.{chain[1]}()"
            if len(chain) >= 2 and chain[-1] == "urlopen" and (
                "urllib" in chain or "request" in chain
            ):
                return "urllib.request.urlopen()"
            if isinstance(func, ast.Name):
                if func.id in sleep_names:
                    return "time.sleep()"
                if func.id in socket_names:
                    return f"socket.{func.id}()"
                if func.id in subprocess_names:
                    return f"subprocess.{func.id}()"
                if func.id in urlopen_names:
                    return "urlopen()"
                if func.id == "open":
                    return "open()"
            return None

        for fn in ast.walk(tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _own_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                desc = describe(node)
                if desc is not None:
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"blocking call {desc} inside `async def "
                        f"{fn.name}` stalls the event loop for every "
                        "connection; use the asyncio equivalent "
                        "(asyncio.sleep, open_connection, to_thread) "
                        "or move the work to a sync helper dispatched "
                        "via run_in_executor",
                    )


# ----------------------------------------------------------------------
# REP104 — shard-write disjointness
# ----------------------------------------------------------------------
#: In-place mutators on shared containers/arrays a worker must not call.
_MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "add",
    "update",
    "clear",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "setdefault",
    "sort",
    "fill",
    "resize",
}


class ShardWriteDisjointness(Rule):
    code = "REP104"
    name = "shard-write-disjointness"
    summary = (
        "functions dispatched to ShardPool/executor threads may write "
        "shared arrays only through indices derived from their own "
        "parameters (the _move_rows disjoint-write contract); "
        "whole-array writes, attribute rebinding, and container "
        "mutation from workers race with other shards"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        for fn in worker_functions(module.tree):
            yield from self._check_worker(fn)

    def _check_worker(self, fn: AnyFunctionDef) -> Iterator[RawFinding]:
        derived = param_derived(fn)
        aliases = attribute_aliases(fn)
        own = list(_own_nodes(fn))
        bound = set(param_names(fn)) | {"self", "cls"}
        for node in own:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name) and isinstance(
                            sub.ctx, ast.Store
                        ):
                            bound.add(sub.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for sub in ast.walk(item.optional_vars):
                            if isinstance(sub, ast.Name):
                                bound.add(sub.id)

        def shared_desc(base: ast.expr) -> Optional[str]:
            """Describe *base* if it points at shared memory."""
            if isinstance(base, ast.Attribute):
                tokens = attr_tokens(base)
                return ".".join(tokens) if tokens else "<attribute>"
            if isinstance(base, ast.Name):
                if base.id in aliases:
                    return base.id
                if base.id not in bound:
                    return base.id  # captured global/closure name
            return None

        def index_is_derived(index: ast.expr) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id in derived
                for sub in ast.walk(index)
            )

        for node in own:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_store(
                        fn, target, shared_desc, index_is_derived
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in _MUTATORS:
                    continue
                desc = shared_desc(node.func.value)
                if desc is not None:
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"worker `{fn.name}` mutates shared "
                        f"`{desc}.{node.func.attr}(...)`: in-place "
                        "container mutation from executor threads "
                        "races with other shards; return results and "
                        "merge on the dispatching thread",
                    )

    def _check_store(
        self,
        fn: AnyFunctionDef,
        target: ast.expr,
        shared_desc: Callable[[ast.expr], Optional[str]],
        index_is_derived: Callable[[ast.expr], bool],
    ) -> Iterator[RawFinding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_store(
                    fn, element, shared_desc, index_is_derived
                )
            return
        if isinstance(target, ast.Subscript):
            desc = shared_desc(target.value)
            if desc is None:
                return
            if not index_is_derived(target.slice):
                yield RawFinding(
                    target.lineno,
                    target.col_offset,
                    f"worker `{fn.name}` writes shared array "
                    f"`{desc}[...]` with an index not derived from its "
                    "parameters: concurrent shards may write "
                    "overlapping rows (the _move_rows disjoint-write "
                    "contract requires param-derived row slices)",
                )
        elif isinstance(target, ast.Attribute):
            tokens = attr_tokens(target)
            desc = ".".join(tokens) if tokens else "<attribute>"
            yield RawFinding(
                target.lineno,
                target.col_offset,
                f"worker `{fn.name}` rebinds shared attribute "
                f"`{desc}`: executor threads share the instance, so "
                "attribute stores race with every other shard; write "
                "into param-derived row slices or merge on the "
                "dispatching thread",
            )


# ----------------------------------------------------------------------
# REP105 — silently dropped future exceptions
# ----------------------------------------------------------------------
class _FutureMatcher(_CallMatcher):
    def __call__(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "run_in_executor":
            tokens = attr_tokens(func)
            return ".".join(tokens) if tokens else func.attr
        if func.attr == "submit":
            receiver = attr_tokens(func)[:-1]
            if any(
                "executor" in t.lower() or "pool" in t.lower()
                for t in receiver
            ):
                return ".".join(receiver + ["submit"])
        return None


class DroppedFutureException(Rule):
    code = "REP105"
    name = "dropped-future-exception"
    summary = (
        "executor.submit / run_in_executor futures must be kept and "
        "consumed (.result(), await, or add_done_callback): a "
        "discarded future swallows the worker's exception, so a "
        "crashed shard looks like a healthy one"
    )

    def check(self, module: ModuleContext) -> Iterator[RawFinding]:
        matcher = _FutureMatcher()
        for call, desc in _unkept_calls(module.tree, matcher):
            yield RawFinding(
                call.lineno,
                call.col_offset,
                f"future from `{desc}(...)` is discarded: if the "
                "worker raises, the exception is silently dropped — "
                "keep the future and call .result()/await it, or "
                "attach add_done_callback",
            )


#: Every concurrency rule class, in code order.
CONCURRENCY_RULES: List[Type[Rule]] = [
    GuardedAttributeDiscipline,
    WeakTaskReference,
    BlockingCallInAsync,
    ShardWriteDisjointness,
    DroppedFutureException,
]

#: code -> one-line summary for the REP1xx series.
CONCURRENCY_CODE_SUMMARIES: Dict[str, str] = {
    rule.code: rule.summary for rule in CONCURRENCY_RULES
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point: the concurrency pass alone.

    ``make lint-concurrency`` runs this; ``repro lint`` /
    ``python -m repro.devtools.lint`` runs both passes.
    """
    from repro.devtools import lint

    return lint.run_cli(
        argv,
        rules=CONCURRENCY_RULES,
        prog="repro lint-concurrency",
        description=(
            "Concurrency & async hazard analyzer: lock discipline, "
            "task lifetime, and shard-write safety (REP101-REP105)"
        ),
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(main())
